"""Command-line interface: ``python -m repro <command>``.

Commands regenerate the paper's artifacts from the terminal:

* ``figures``    — censuses behind Figures 1/4/6/7;
* ``classify``   — the Figure-2 classification of the adversary zoo;
* ``landscape``  — the exhaustive n=3 adversary landscape (E15);
* ``fact``       — the FACT set-consensus table (E11);
* ``algorithm1`` — fuzz Algorithm 1 under α-model schedules (E8);
* ``crossover``  — the ε-agreement depth crossover (E14);
* ``inspect``    — classify one adversary given as live sets
  (``--json`` emits the service response schema);
* ``batch``      — zoo classification + E11 through the compute engine;
* ``serve``      — run the resident query service (``repro.service``);
* ``fleet``      — launch a sharded fleet (``repro.fleet``): a
  consistent-hash router with admission control, N shard subprocesses
  and cert-verifying edge replicas;
* ``loadgen``    — drive a deterministic multi-client load mix against
  a running service/router and report rps + latency quantiles;
* ``query``      — issue queries against a running service;
* ``certify``    — one certified FACT query, written as a portable
  certificate JSON file (``repro.certify``);
* ``check``      — validate certificate files with the independent
  checker (imports only ``repro.certify.checker``);
* ``sim``        — explore one executable protocol under generated
  fault plans (``repro.sim``);
* ``oracle``     — differential oracle: simulator verdicts versus
  FACT / resilience-regime references, with replayable
  disagreement artifacts;
* ``sweep``      — run or resume a checkpointed landscape sweep
  (``repro.sweep``): ``--grid`` names a preset or a grid JSON file,
  progress persists after every completed cell, ``--resume`` continues
  a killed run, ``--limit`` bounds one slice;
* ``trace``      — summarize a JSONL trace file (``repro.obs``).

``classify``, ``landscape``, ``fact`` and ``algorithm1`` accept
``--jobs N`` / ``--cache-dir PATH`` / ``--no-cache``; with the defaults
(``--jobs 1``, no cache) they bypass the engine entirely and run the
legacy in-process code, so default invocations stay byte-identical.

Any command accepts span tracing via ``--trace FILE.jsonl`` (where the
engine options are available) or the ``REPRO_TRACE`` environment
variable: the command runs with the :mod:`repro.obs` tracer enabled and
the finished spans are appended to the file on exit, ready for
``repro trace FILE.jsonl``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .adversaries import (
    Adversary,
    agreement_function_of,
    build_catalogue,
    csize,
    fairness_counterexample,
    figure5b_adversary,
    is_fair,
    k_concurrency_alpha,
    setcon,
    t_resilience_alpha,
)
from .analysis import (
    banner,
    complex_census,
    render_mapping,
    render_table,
)
from .core import (
    concurrency_census,
    contention_complex,
    full_affine_task,
    r_affine,
    r_k_obstruction_free,
    r_t_resilient,
)
from .topology import chr_complex


def _build_engine(args: argparse.Namespace, default_cache: bool = False):
    """An :class:`repro.engine.Engine` configured from CLI options."""
    from .engine import ArtifactCache, Engine, NullCache
    from .solver import DEFAULT_KERNEL

    cache_dir = getattr(args, "cache_dir", None)
    want_cache = (
        cache_dir is not None or default_cache
    ) and not getattr(args, "no_cache", False)
    # --shared-cache opts in to the mmap cross-process read layer; the
    # None default defers to the REPRO_SHARED_CACHE environment switch.
    shared = True if getattr(args, "shared_cache", False) else None
    cache = (
        ArtifactCache(cache_dir, shared=shared) if want_cache else NullCache()
    )
    return Engine(
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        kernel=getattr(args, "kernel", None) or DEFAULT_KERNEL,
    )


def _engine_from_args(args: argparse.Namespace):
    """An engine when the user opted in, else ``None`` (legacy path).

    An explicit ``--kernel`` is an opt-in too: kernel selection lives in
    the engine, so asking for one routes the command through it.
    """
    if (
        getattr(args, "jobs", 1) == 1
        and getattr(args, "cache_dir", None) is None
        and getattr(args, "kernel", None) is None
    ):
        return None
    return _build_engine(args)


def _cmd_figures(args: argparse.Namespace) -> int:
    print(banner("Figure 1 — subdivisions"))
    for depth in (1, 2):
        census = complex_census(chr_complex(3, depth))
        print(render_mapping(f"Chr^{depth} s:", census))
    print(banner("Figure 4c — Cont2"))
    print(render_mapping("census:", {"f_vector": contention_complex(3).f_vector()}))
    print(banner("Figure 6 — concurrency censuses"))
    chr1 = chr_complex(3, 1)
    print(render_mapping("1-OF:", concurrency_census(chr1, k_concurrency_alpha(3, 1))))
    print(
        render_mapping(
            "fig5b:",
            concurrency_census(
                chr1, agreement_function_of(figure5b_adversary())
            ),
        )
    )
    print(banner("Figure 7 — affine tasks"))
    rows = [
        ("R_A(1-OF)", len(r_affine(k_concurrency_alpha(3, 1)).complex.facets)),
        ("R_A(1-res)", len(r_affine(t_resilience_alpha(3, 1)).complex.facets)),
        (
            "R_A(fig5b)",
            len(
                r_affine(
                    agreement_function_of(figure5b_adversary())
                ).complex.facets
            ),
        ),
        ("R_1-OF (Def 6)", len(r_k_obstruction_free(3, 1).complex.facets)),
        ("R_1-res (SHG16)", len(r_t_resilient(3, 1).complex.facets)),
    ]
    print(render_table(["task", "facets"], rows))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    print(banner(f"Figure 2 — classification (n = {args.n})"))
    catalogue = build_catalogue(args.n)
    engine = _engine_from_args(args)
    rows = []
    if engine is not None:
        classified = engine.classify_many(
            [entry.adversary for entry in catalogue]
        )
        for entry, record in zip(catalogue, classified):
            rows.append(
                [
                    entry.name,
                    "yes" if record.superset_closed else "no",
                    "yes" if record.symmetric else "no",
                    "yes" if record.fair else "NO",
                    record.power,
                    csize(entry.adversary),
                ]
            )
    else:
        for entry in catalogue:
            adversary = entry.adversary
            rows.append(
                [
                    entry.name,
                    "yes" if adversary.is_superset_closed() else "no",
                    "yes" if adversary.is_symmetric() else "no",
                    "yes" if is_fair(adversary) else "NO",
                    setcon(adversary),
                    csize(adversary),
                ]
            )
    print(render_table(["adversary", "ssc", "sym", "fair", "setcon", "csize"], rows))
    if engine is not None:
        engine.close()
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    from .analysis.landscape import classify_all, summarize

    print(banner("E15 — the complete n=3 adversary landscape"))
    engine = _engine_from_args(args)
    summary = summarize(classify_all(3, engine=engine), engine=engine)
    print(
        render_mapping(
            "summary:",
            {
                "adversaries": summary.total,
                "fair": summary.fair,
                "superset-closed": summary.superset_closed,
                "symmetric": summary.symmetric,
                "setcon histogram": summary.power_histogram,
                "distinct alphas (fair)": summary.distinct_alphas_fair,
                "distinct affine tasks": summary.distinct_affine_tasks,
            },
        )
    )
    if engine is not None:
        engine.close()
    return 0


def _cmd_fact(args: argparse.Namespace) -> int:
    from .tasks import minimal_set_consensus

    print(banner("E11 — FACT set-consensus table"))
    cases = [
        ("wait-free (Chr s)", full_affine_task(3, 1)),
        ("R_A(1-OF)", r_affine(k_concurrency_alpha(3, 1))),
        ("R_A(2-OF)", r_affine(k_concurrency_alpha(3, 2))),
        ("R_A(1-res)", r_affine(t_resilience_alpha(3, 1))),
        ("R_A(fig5b)", r_affine(agreement_function_of(figure5b_adversary()))),
    ]
    engine = _engine_from_args(args)
    if engine is not None:
        answers = engine.minimal_set_consensus_many(
            [task for _, task in cases]
        )
        rows = [(name, k) for (name, _), k in zip(cases, answers)]
    else:
        rows = [(name, minimal_set_consensus(task)) for name, task in cases]
    print(render_table(["affine task", "min k-set consensus"], rows))
    if engine is not None:
        engine.close()
    return 0


def _cmd_algorithm1(args: argparse.Namespace) -> int:
    from .runtime import fuzz_algorithm1

    print(banner(f"E8 — Algorithm 1, {args.runs} fuzzed α-model runs"))
    alpha = t_resilience_alpha(3, 1)
    task = r_affine(alpha)
    engine = _engine_from_args(args)
    if engine is not None:
        # Per-case seeds: reproducible, worker-count independent — but a
        # different schedule stream than the legacy single-RNG fuzzer.
        cases = engine.fuzz_many(
            alpha, task, runs=args.runs, seed=args.seed
        )
        steps = [steps_taken for _, steps_taken in cases]
        violations = sum(1 for ok, _ in cases if not ok)
        run_count = len(cases)
    else:
        outcomes = fuzz_algorithm1(
            alpha, task, runs=args.runs, seed=args.seed
        )
        steps = [outcome.result.steps_taken for outcome in outcomes]
        violations = 0
        run_count = len(outcomes)
    if engine is not None:
        engine.close()
    print(
        render_mapping(
            "1-resilient model:",
            {
                "runs": run_count,
                "safety violations": violations,
                "min/median/max steps": (
                    min(steps),
                    sorted(steps)[len(steps) // 2],
                    max(steps),
                ),
            },
        )
    )
    return 0


def _cmd_crossover(args: argparse.Namespace) -> int:
    from .tasks.approximate_agreement import solvable_at_depth

    print(banner("E14 — ε-agreement depth crossover"))
    rows = []
    for m in (1, 2, 3):
        rows.append(
            [f"eps=3^-{m}"]
            + [
                "yes" if solvable_at_depth(m, depth) else "no"
                for depth in (1, 2, 3)
            ]
        )
    print(render_table(["task \\ depth", "l=1", "l=2", "l=3"], rows))
    return 0


def _inspect_census(adversary: Adversary):
    """The ``R_A`` complex census for a fair, powered adversary, or None.

    Includes the compact-representation comparison from
    :mod:`repro.sweep.compact` so interned-vs-naive sizes are visible
    straight from the CLI.
    """
    if not is_fair(adversary) or setcon(adversary) < 1:
        return None
    from .sweep.compact import compact_census

    task = r_affine(agreement_function_of(adversary))
    return compact_census(task.complex)


def _cmd_inspect(args: argparse.Namespace) -> int:
    live_sets = json.loads(args.live_sets)
    adversary = Adversary(args.n, [set(live) for live in live_sets])
    if getattr(args, "json", False):
        # Machine-readable path: one ``classify`` job through the
        # engine, emitted in the service's wire schema (protocol v1),
        # so scripted callers parse one format for CLI and service.
        # The complex census rides along as an additive top-level key
        # (``value`` stays byte-for-byte the service schema).
        from .engine import Engine, JobSpec, serialize
        from .service.protocol import encode_message, response_for_result

        (result,) = Engine().run_jobs([JobSpec("classify", (adversary,))])
        value_text = serialize(result.value) if result.ok else None
        message = response_for_result(0, result, value_text)
        message["census"] = _inspect_census(adversary) if result.ok else None
        print(encode_message(message))
        return 0 if result.ok else 1
    print(banner(f"inspecting {adversary!r}"))
    fair = is_fair(adversary)
    info = {
        "superset-closed": adversary.is_superset_closed(),
        "symmetric": adversary.is_symmetric(),
        "fair": fair,
        "setcon": setcon(adversary),
        "csize": csize(adversary),
    }
    print(render_mapping("classification:", info))
    if not fair:
        print(f"fairness counterexample: {fairness_counterexample(adversary)}")
    elif setcon(adversary) >= 1:
        alpha = agreement_function_of(adversary)
        task = r_affine(alpha)
        print(render_mapping("affine task R_A:", complex_census(task.complex)))
        census = _inspect_census(adversary)
        print(
            render_mapping(
                "interned form:",
                {
                    "f_vector": census["f_vector"],
                    "naive bytes": census["naive_bytes"],
                    "interned bytes": census["interned_bytes"],
                    "compression": f'{census["compression_ratio"]}x',
                },
            )
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run or resume a checkpointed landscape sweep (``repro.sweep``).

    Progress persists after every completed cell, so a killed run picks
    up where it stopped with ``--resume`` — and the final artifact is
    byte-identical to an uninterrupted run's.  Exit 0 means the grid is
    complete; a ``--limit`` slice that leaves cells pending exits 2.
    """
    from .sweep import SweepDriver, load_grid

    try:
        grid = load_grid(args.grid)
    except ValueError as exc:
        raise SystemExit(f"repro sweep: {exc}")
    engine = _build_engine(args)
    driver = SweepDriver(grid, args.checkpoint_dir, engine=engine)
    try:
        status = driver.run(resume=args.resume, limit=args.limit)
    except ValueError as exc:
        driver.close()
        raise SystemExit(f"repro sweep: {exc}")
    if args.escalate and status["complete"]:
        escalated = driver.escalate(args.escalate)
        status = {**status, "escalated": escalated}
        if escalated:
            status["artifact"] = driver.assemble_artifact()
    shown = {
        "grid": status["grid"],
        "digest": status["grid_digest"][:12],
        "cells": status["cells"],
        "resumed from checkpoint": status["resumed"],
        "computed now": status["computed"],
        "complete": status["complete"],
    }
    if "escalated" in status:
        shown["escalated"] = status["escalated"]
    print(render_mapping("sweep:", shown))
    if status["complete"]:
        summary = status["artifact"]["summary"]
        print(
            render_mapping(
                "landscape:",
                {
                    "adversaries": summary["adversaries"],
                    "fair cells": summary["fair_cells"],
                    "verdicts": summary["verdicts"],
                    "distinct alphas (fair)": summary["distinct_alphas_fair"],
                    "solve nodes": summary["solve_nodes_total"],
                },
            )
        )
        if args.output is not None:
            data = driver.write_artifact(args.output)
            print(f"wrote {args.output} ({len(data)} bytes)")
        driver.close()
        return 0
    remaining = status["cells"] - status["done"]
    print(f"{remaining} cell(s) pending; rerun with --resume to continue")
    driver.close()
    return 2


#: ``repro batch`` sections, keyed by the engine job kind they exercise.
_BATCH_SECTIONS = ("classify", "solve", "simulate", "oracle")


def _batch_sections(args: argparse.Namespace) -> List[str]:
    """Resolve ``--only`` into batch sections; bad kinds exit cleanly."""
    from .engine.jobs import JOB_KINDS

    requested = list(dict.fromkeys(getattr(args, "only", None) or []))
    for kind in requested:
        if kind not in JOB_KINDS:
            raise SystemExit(
                f"repro batch: unknown job kind {kind!r}; valid kinds: "
                + ", ".join(sorted(JOB_KINDS))
            )
    for kind in requested:
        if kind not in _BATCH_SECTIONS:
            raise SystemExit(
                f"repro batch: job kind {kind!r} has no batch section; "
                "batch sections: " + ", ".join(_BATCH_SECTIONS)
            )
    # Default = the historical batch (zoo + E11); sim/oracle opt in.
    return requested or ["classify", "solve"]


def _cmd_batch(args: argparse.Namespace) -> int:
    """Zoo classification + the E11 FACT table as one engine session.

    Unlike the other commands, ``batch`` always runs through the engine
    and caches by default (to ``--cache-dir``, ``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro-engine``); a warm second invocation does no
    expensive computation at all.  ``--only`` restricts the run to the
    sections for specific job kinds (e.g. ``--only simulate oracle``).
    """
    from .solver import SolveRequest
    from .tasks.set_consensus import set_consensus_task

    sections = _batch_sections(args)
    engine = _build_engine(args, default_cache=True)
    cache_note = (
        str(engine.cache.root) if engine.cache.persistent else "disabled"
    )
    print(
        banner(
            f"engine batch — jobs={engine.jobs}, cache={cache_note}, "
            f"kernel={engine.kernel}"
        )
    )

    exit_code = 0
    if "classify" in sections:
        catalogue = build_catalogue(3)
        classified = engine.classify_many(
            [entry.adversary for entry in catalogue]
        )
        rows = [
            [
                entry.name,
                "yes" if record.superset_closed else "no",
                "yes" if record.symmetric else "no",
                "yes" if record.fair else "NO",
                record.power,
            ]
            for entry, record in zip(catalogue, classified)
        ]
        print(
            render_table(["adversary", "ssc", "sym", "fair", "setcon"], rows)
        )

    if "solve" in sections:
        cases = [
            ("wait-free (Chr s)", full_affine_task(3, 1)),
            ("R_A(1-OF)", r_affine(k_concurrency_alpha(3, 1))),
            ("R_A(2-OF)", r_affine(k_concurrency_alpha(3, 2))),
            ("R_A(1-res)", r_affine(t_resilience_alpha(3, 1))),
            (
                "R_A(fig5b)",
                r_affine(agreement_function_of(figure5b_adversary())),
            ),
        ]
        queries = [
            SolveRequest(
                affine=task,
                task=set_consensus_task(task.n, k),
                kernel=engine.kernel,
            )
            for _, task in cases
            for k in range(1, 4)
        ]
        winners: Optional[List[str]] = None
        if getattr(args, "portfolio", False):
            raced = engine.portfolio_many(queries)
            solved = [(mapping, nodes) for mapping, nodes, _ in raced]
            winners = [kernel for _, _, kernel in raced]
        else:
            solved = engine.solve_many(queries)
        headers = ["affine task", "min k-set consensus", "search nodes"]
        if winners is not None:
            headers.append("winning kernels")
        fact_rows = []
        for row, (name, _) in enumerate(cases):
            answers = solved[row * 3 : row * 3 + 3]
            min_k = next(
                k for k, (mapping, _) in enumerate(answers, start=1)
                if mapping is not None
            )
            nodes = sum(nodes for _, nodes in answers)
            fact_row = [name, min_k, nodes]
            if winners is not None:
                fact_row.append(
                    ",".join(sorted(set(winners[row * 3 : row * 3 + 3])))
                )
            fact_rows.append(tuple(fact_row))
        print(render_table(headers, fact_rows))

    if "simulate" in sections:
        from .sim import standard_grid

        grid = standard_grid()
        reports = engine.simulate_many(case.payload() for case in grid)
        sim_rows = [
            [
                case.name,
                report["plans"],
                report["schedules"],
                report["blocked_runs"],
                "pass" if report["pass"] else "VIOLATION",
            ]
            for case, report in zip(grid, reports)
        ]
        print(
            render_table(
                ["sim case", "plans", "schedules", "blocked", "verdict"],
                sim_rows,
            )
        )

    if "oracle" in sections:
        from .sim import standard_grid

        grid = standard_grid()
        reports = engine.oracle_many(case.payload() for case in grid)
        oracle_rows = []
        for case, report in zip(grid, reports):
            reference = report["reference"]
            agree = report["agree"]
            if not agree:
                exit_code = 1
            oracle_rows.append(
                [
                    case.name,
                    reference["method"],
                    "yes" if reference["solvable"] else "no",
                    "pass" if report["sim"]["pass"] else "VIOLATION",
                    "yes" if agree else "DISAGREE",
                ]
            )
        print(
            render_table(
                ["oracle case", "reference", "solvable", "sim", "agree"],
                oracle_rows,
            )
        )

    stats = engine.stats()
    print(
        render_mapping(
            "engine:",
            {
                "jobs": engine.jobs,
                "cache hits": stats["hits"],
                "cache misses": stats["misses"],
            },
        )
    )
    engine.close()
    return exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the resident query service until SIGTERM/SIGINT, then drain."""
    import asyncio
    import signal as signal_module

    from .service import MemCache, ServiceServer

    engine = _build_engine(args, default_cache=True)
    cache_note = (
        str(engine.cache.root) if engine.cache.persistent else "disabled"
    )
    engine.cache = MemCache(
        backing=engine.cache, max_entries=args.memcache_size
    )

    async def _serve() -> None:
        server = ServiceServer(
            engine,
            host=args.host,
            port=args.port,
            window=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            max_connections=args.max_connections,
            max_inflight=args.max_inflight,
            request_timeout=args.request_timeout,
            drain_grace=args.drain_grace,
        )
        await server.start()
        # The smoke tests and deployment wrappers parse this line for
        # the bound port, so keep its shape stable.
        print(
            f"repro service listening on {server.host}:{server.port} "
            f"(jobs={engine.jobs}, disk-cache={cache_note}, "
            f"memcache={args.memcache_size})",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await server.wait_stopped()
        print(server.metrics.render_text(), end="", flush=True)
        print("repro service drained cleanly", flush=True)

    asyncio.run(_serve())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Launch router + shard subprocesses + edge replicas; drain on
    SIGTERM front-to-back."""
    import asyncio

    from .fleet import AdmissionController, FleetSupervisor

    supervisor = FleetSupervisor(
        shards=args.shards,
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        replica_port=args.replica_port,
        shard_options={
            "memcache_size": args.memcache_size,
            "jobs": args.jobs,
            "no_cache": args.no_cache or args.cache_dir is None,
            "cache_dir": args.cache_dir,
            "window_ms": args.window_ms,
            # Shards sharing one --cache-dir read warm artifacts from
            # one mmap segment instead of deserializing per process.
            "shared_cache": getattr(args, "shared_cache", False),
        },
        router_options={
            "admission": AdmissionController(
                max_inflight=args.max_inflight,
                rate=args.rate,
                burst=args.burst,
            ),
            "drain_grace": args.drain_grace,
        },
        replica_options={"drain_grace": args.drain_grace},
    )
    asyncio.run(supervisor.run())
    print("repro fleet drained cleanly", flush=True)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a deterministic load mix at a service/router endpoint."""
    from .fleet import (
        chr_mix,
        classify_mix,
        fixed_service_time_mix,
        run_load,
    )

    if args.mix == "sleep":
        queries = fixed_service_time_mix(
            args.count, args.sleep_ms / 1000.0, salt=args.salt
        )
    elif args.mix == "classify":
        queries = classify_mix(args.count, n=args.n, seed=args.seed)
    elif args.mix == "chr":
        queries = chr_mix()
    else:  # mixed
        queries = (
            classify_mix(max(1, args.count // 2), n=args.n, seed=args.seed)
            + chr_mix()
            + fixed_service_time_mix(
                max(1, args.count // 4),
                args.sleep_ms / 1000.0,
                salt=args.salt,
            )
        )
    report = run_load(
        args.host,
        args.port,
        queries,
        clients=args.clients,
        cycles=args.cycles,
        timeout=args.timeout,
        tenant=args.tenant,
        priority=args.priority,
    )
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(render_mapping("loadgen:", report.to_dict()))
    return 0 if report.errors == 0 else 1


def _cmd_query(args: argparse.Namespace) -> int:
    """One query against a running service; ``--json`` emits raw wire."""
    from .service import ServiceClient

    def _adversary():
        if args.live_sets is None:
            raise SystemExit(f"query {args.what} requires live sets JSON")
        return Adversary(
            args.n, [set(live) for live in json.loads(args.live_sets)]
        )

    def _emit(response: dict) -> None:
        print(json.dumps(response, sort_keys=True))

    with ServiceClient(
        host=args.host, port=args.port, timeout=args.timeout
    ) as client:
        if args.what == "ping":
            client.ping()
            print("pong")
            return 0
        if args.what == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.what == "metrics":
            print(client.metrics_text(), end="")
            return 0
        if args.what == "chr":
            response = client.query_response("chr", (args.n, args.depth))
            if args.json:
                _emit(response)
            else:
                built = client._decode_value(response)
                print(render_mapping("census:", complex_census(built)))
            return 0
        if args.what == "classify":
            response = client.query_response("classify", (_adversary(),))
            if args.json:
                _emit(response)
            else:
                fair, ssc, sym, power, _alpha = client._decode_value(response)
                print(
                    render_mapping(
                        "classification:",
                        {
                            "superset-closed": ssc,
                            "symmetric": sym,
                            "fair": fair,
                            "setcon": power,
                        },
                    )
                )
            return 0
        if args.what in ("simulate", "oracle"):
            adversary = (
                Adversary(
                    args.n,
                    [set(live) for live in json.loads(args.live_sets)],
                )
                if args.live_sets is not None
                else None
            )
            response = client.query_response(
                args.what,
                (
                    args.protocol,
                    adversary,
                    args.n,
                    args.t,
                    args.k,
                    args.schedules,
                    args.seed,
                ),
            )
            if args.json:
                _emit(response)
                return 0
            report = client._decode_value(response)
            if args.what == "simulate":
                print(
                    render_mapping(
                        f"sim {args.protocol}:",
                        {
                            "fault plans": report["plans"],
                            "schedules": report["schedules"],
                            "violations": report["violations"],
                            "verdict": (
                                "pass" if report["pass"] else "VIOLATION"
                            ),
                            "cache hit": response["cache_hit"],
                        },
                    )
                )
            else:
                reference = report["reference"]
                print(
                    render_mapping(
                        f"oracle {args.protocol}:",
                        {
                            "reference": reference["method"],
                            "solvable": reference["solvable"],
                            "sim pass": report["sim"]["pass"],
                            "agree": report["agree"],
                            "cache hit": response["cache_hit"],
                        },
                    )
                )
            return 0
        # The remaining kinds consume R_A; build it server-side (and
        # cached there) from the adversary's agreement function.
        alpha = agreement_function_of(_adversary())
        from .core.ra import DEFAULT_VARIANT

        affine = client.query("r_affine", (alpha, DEFAULT_VARIANT))
        if args.what == "r_affine":
            response = client.query_response(
                "r_affine", (alpha, DEFAULT_VARIANT)
            )
            if args.json:
                _emit(response)
            else:
                print(
                    render_mapping(
                        "affine task R_A:", complex_census(affine.complex)
                    )
                )
            return 0
        if args.what == "solve":
            from .tasks.set_consensus import set_consensus_task

            task = set_consensus_task(args.n, args.k)
            response = client.query_response(
                "solve", (affine, task, args.budget, None)
            )
            if args.json:
                _emit(response)
            else:
                mapping, nodes = client._decode_value(response)
                print(
                    render_mapping(
                        f"{args.k}-set consensus in R_A:",
                        {
                            "solvable": mapping is not None,
                            "nodes explored": nodes,
                            "cache hit": response["cache_hit"],
                        },
                    )
                )
            return 0
        if args.what == "certify":
            from .certify import write_cert
            from .tasks.set_consensus import set_consensus_task

            task = set_consensus_task(args.n, args.k)
            response = client.query_response(
                "certify", (affine, task, args.budget)
            )
            cert = client._decode_value(response)
            if args.output is not None:
                write_cert(args.output, cert)
            if args.json:
                _emit(response)
            else:
                print(
                    render_mapping(
                        f"certificate for {args.k}-set consensus in R_A:",
                        {
                            "kind": cert["kind"],
                            "cache hit": response["cache_hit"],
                            "written to": args.output or "(not written)",
                        },
                    )
                )
            return 0
        if args.what == "fuzz":
            response = client.query_response(
                "fuzz", (alpha, affine, args.seed)
            )
            if args.json:
                _emit(response)
            else:
                in_task, steps = client._decode_value(response)
                print(
                    render_mapping(
                        "algorithm 1 run:",
                        {"output in R_A": in_task, "steps": steps},
                    )
                )
            return 0
    raise SystemExit(f"unknown query {args.what!r}")


def _certify_affine(args: argparse.Namespace):
    """The affine task a ``certify`` invocation is about."""
    if getattr(args, "wait_free", False):
        return full_affine_task(args.n, args.depth)
    if args.live_sets is None:
        raise SystemExit(
            "certify requires live sets JSON (or --wait-free)"
        )
    adversary = Adversary(
        args.n, [set(live) for live in json.loads(args.live_sets)]
    )
    return r_affine(agreement_function_of(adversary))


def _cmd_certify(args: argparse.Namespace) -> int:
    """One certified FACT query; the certificate is the deliverable.

    The verdict is in the certificate's ``kind``: ``solvable`` /
    ``unsolvable`` carry a complete witness; a ``budget`` stub is
    resumable, not a verdict, and exits non-zero so scripts notice.
    """
    from .certify import cert_to_bytes, write_cert
    from .tasks.set_consensus import set_consensus_task

    affine = _certify_affine(args)
    task = set_consensus_task(args.n, args.k)
    engine = _build_engine(args)
    cert = engine.certify(affine, task, args.budget)
    engine.close()
    if args.output is not None:
        write_cert(args.output, cert)
        print(
            f"wrote {args.output}: kind={cert['kind']} "
            f"({affine.name} / {task.name})"
        )
    else:
        sys.stdout.write(cert_to_bytes(cert).decode("utf-8"))
    return 0 if cert["kind"] in ("solvable", "unsolvable") else 2


def _cmd_check(args: argparse.Namespace) -> int:
    """Validate certificate files; exit 0 iff every file is valid.

    Deliberately trusts nothing but :mod:`repro.certify.checker` — the
    files are read as raw bytes and every claim in them is re-derived by
    the independent checker.
    """
    from .certify import checker

    all_valid = True
    for path in args.certs:
        try:
            with open(path, "rb") as handle:
                report = checker.check_bytes(handle.read())
        except OSError as exc:
            print(f"{path}: unreadable ({exc})", file=sys.stderr)
            all_valid = False
            continue
        all_valid = all_valid and report.valid
        if args.json:
            print(
                json.dumps(
                    {"path": path, **report.to_dict()}, sort_keys=True
                )
            )
        else:
            status = "OK" if report.valid else "INVALID"
            detail = f" ({report.detail})" if report.detail else ""
            print(
                f"{path}: {status} kind={report.kind} "
                f"verdict={report.verdict} reason={report.reason}{detail}"
            )
    return 0 if all_valid else 1


def _sim_adversary(args: argparse.Namespace):
    """The adversary a sim/oracle invocation names, or ``None``."""
    if getattr(args, "live_sets", None) is None:
        return None
    return Adversary(
        args.n, [set(live) for live in json.loads(args.live_sets)]
    )


def _cmd_sim(args: argparse.Namespace) -> int:
    """Explore one protocol instance under generated fault plans.

    Exit 0 means no explored schedule violated the protocol spec —
    exactly the simulator half of the differential oracle, so a
    violating exit 1 on a solvable instance is a bug report.
    """
    from .sim import write_artifact

    engine = _build_engine(args, default_cache=True)
    report = engine.simulate(
        args.protocol,
        _sim_adversary(args),
        n=args.n,
        t=args.t,
        k=args.k,
        schedules=args.schedules,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(report, sort_keys=True))
    else:
        print(
            banner(
                f"sim {args.protocol} — n={report['n']}, t={report['t']}, "
                f"k={report['k']}"
            )
        )
        print(
            render_mapping(
                "exploration:",
                {
                    "fault plans": report["plans"],
                    "schedules": report["schedules"],
                    "deliveries": report["deliveries"],
                    "blocked runs": report["blocked_runs"],
                    "violations": report["violations"],
                    "verdict": "pass" if report["pass"] else "VIOLATION",
                },
            )
        )
        violation = report["first_violation"]
        if violation is not None:
            for line in violation["violations"]:
                print(f"violation: {line}")
    if report["first_violation"] is not None and args.artifact is not None:
        write_artifact(args.artifact, report["first_violation"])
        print(f"wrote replay artifact to {args.artifact}", file=sys.stderr)
    engine.close()
    return 0 if report["pass"] else 1


def _cmd_oracle(args: argparse.Namespace) -> int:
    """Differential oracle: simulator verdicts versus FACT / regime.

    Without arguments this re-checks the whole committed grid; exit 0
    iff every case agrees.  ``--replay`` re-executes a disagreement
    artifact event for event and exits 0 iff the recorded outcome is
    reproduced exactly.
    """
    from .sim import (
        grid_case,
        load_artifact,
        replay,
        standard_grid,
        write_artifact,
    )

    if args.replay is not None:
        artifact = load_artifact(args.replay)
        outcome = replay(artifact)
        reproduced = (
            outcome["decisions"] == artifact["decisions"]
            and outcome["blocked"] == artifact["blocked"]
            and outcome["violations"] == artifact["violations"]
        )
        if args.json:
            print(
                json.dumps(
                    {"reproduced": reproduced, **outcome}, sort_keys=True
                )
            )
        else:
            print(
                render_mapping(
                    f"replay of {args.replay}:",
                    {
                        "protocol": artifact["protocol"],
                        "decisions": outcome["decisions"],
                        "blocked": outcome["blocked"],
                        "violations": len(outcome["violations"]),
                        "reproduced": "yes" if reproduced else "NO",
                    },
                )
            )
        return 0 if reproduced else 1

    if args.list:
        for case in standard_grid():
            print(
                f"{case.name}: {case.protocol} n={case.n} t={case.t} "
                f"k={case.k}"
            )
        return 0

    try:
        cases = (
            [grid_case(name) for name in args.case]
            if args.case
            else standard_grid()
        )
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    engine = _build_engine(args, default_cache=True)
    reports = engine.oracle_many(case.payload() for case in cases)
    disagreements = 0
    if args.json:
        for case, report in zip(cases, reports):
            print(json.dumps({"case": case.name, **report}, sort_keys=True))
    else:
        rows = []
        for case, report in zip(cases, reports):
            reference = report["reference"]
            rows.append(
                [
                    case.name,
                    reference["method"],
                    "yes" if reference["solvable"] else "no",
                    "pass" if report["sim"]["pass"] else "VIOLATION",
                    "yes" if report["agree"] else "DISAGREE",
                ]
            )
        print(
            render_table(
                ["oracle case", "reference", "solvable", "sim", "agree"],
                rows,
            )
        )
    for case, report in zip(cases, reports):
        if report["agree"]:
            continue
        disagreements += 1
        if report["artifact"] is not None and args.artifact_dir is not None:
            os.makedirs(args.artifact_dir, exist_ok=True)
            path = os.path.join(
                args.artifact_dir, f"disagreement-{case.name}.json"
            )
            write_artifact(path, report["artifact"])
            print(f"wrote replay artifact to {path}", file=sys.stderr)
    engine.close()
    if disagreements:
        print(
            f"oracle: {disagreements} of {len(cases)} cases DISAGREE",
            file=sys.stderr,
        )
        return 1
    return 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    from .solver import KERNELS

    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes (1 = legacy in-process path)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent artifact cache directory",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache",
    )
    parser.add_argument(
        "--shared-cache",
        action="store_true",
        help="mirror warm artifacts into a shared mmap segment so every "
        "process on this cache directory deserializes them once "
        "(env fallback: REPRO_SHARED_CACHE=1)",
    )
    parser.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="solve kernel for FACT queries (implies the engine path)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="JSONL",
        help="enable span tracing and append finished spans to this "
        "JSONL file (env fallback: REPRO_TRACE)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Affine tasks for fair adversaries — paper artifacts from the CLI.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figures", help="censuses behind Figures 1/4/6/7")

    classify = sub.add_parser("classify", help="Figure-2 classification")
    classify.add_argument("--n", type=int, default=3)
    _add_engine_options(classify)

    landscape = sub.add_parser(
        "landscape", help="the exhaustive n=3 landscape (E15)"
    )
    _add_engine_options(landscape)

    fact = sub.add_parser("fact", help="the FACT set-consensus table (E11)")
    _add_engine_options(fact)

    algorithm1 = sub.add_parser(
        "algorithm1", help="fuzz Algorithm 1 in the α-model (E8)"
    )
    algorithm1.add_argument("--runs", type=int, default=30)
    algorithm1.add_argument("--seed", type=int, default=0)
    _add_engine_options(algorithm1)

    batch = sub.add_parser(
        "batch",
        help="zoo classification + E11 through the compute engine",
    )
    batch.add_argument(
        "--only",
        nargs="+",
        metavar="KIND",
        default=None,
        help="run only the sections for these job kinds "
        "(e.g. --only simulate oracle)",
    )
    batch.add_argument(
        "--portfolio",
        action="store_true",
        help="race each FACT query across the kernel portfolio "
        "(bitset, fc, symmetry); with --jobs > 1 the lanes run on "
        "distinct workers and losers are cancelled",
    )
    _add_engine_options(batch)

    from .sim.library import PROTOCOL_NAMES

    sim = sub.add_parser(
        "sim", help="explore one executable protocol (repro.sim)"
    )
    sim.add_argument("protocol", choices=PROTOCOL_NAMES)
    sim.add_argument(
        "live_sets",
        nargs="?",
        default=None,
        help='adversary live sets JSON (crash-model protocols), '
        'e.g. "[[0],[0,1]]"',
    )
    sim.add_argument("--n", type=int, default=3)
    sim.add_argument(
        "--t", type=int, default=0, help="Byzantine fault budget"
    )
    sim.add_argument(
        "--k", type=int, default=1, help="set-consensus k (hitting-set)"
    )
    sim.add_argument(
        "--schedules",
        type=int,
        default=4,
        help="random schedules per fault plan (targeted ones always run)",
    )
    sim.add_argument("--seed", type=int, default=7)
    sim.add_argument(
        "--json", action="store_true", help="print the raw report object"
    )
    sim.add_argument(
        "--artifact",
        default=None,
        help="write the first violating schedule here as a replay artifact",
    )
    _add_engine_options(sim)

    oracle = sub.add_parser(
        "oracle",
        help="differential oracle: simulator versus FACT verdicts",
    )
    oracle.add_argument(
        "case",
        nargs="*",
        help="grid case names (default: the whole committed grid)",
    )
    oracle.add_argument(
        "--list",
        action="store_true",
        help="list the committed grid cases and exit",
    )
    oracle.add_argument(
        "--json", action="store_true", help="one JSON report per case"
    )
    oracle.add_argument(
        "--artifact-dir",
        default=None,
        help="write disagreement replay artifacts into this directory",
    )
    oracle.add_argument(
        "--replay",
        default=None,
        metavar="ARTIFACT",
        help="re-execute a recorded disagreement artifact instead",
    )
    _add_engine_options(oracle)

    sub.add_parser("crossover", help="ε-agreement depth crossover (E14)")

    inspect = sub.add_parser("inspect", help="classify one adversary")
    inspect.add_argument(
        "live_sets",
        help='JSON list of live sets, e.g. "[[1],[0,2]]"',
    )
    inspect.add_argument("--n", type=int, default=3)
    inspect.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output in the service response schema",
    )

    serve = sub.add_parser(
        "serve", help="run the resident query service (repro.service)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7341, help="0 binds an ephemeral port"
    )
    serve.add_argument(
        "--memcache-size",
        type=_positive_int,
        default=256,
        help="entries in the in-memory LRU tier",
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="micro-batching window in milliseconds",
    )
    serve.add_argument("--max-batch", type=_positive_int, default=64)
    serve.add_argument("--max-connections", type=_positive_int, default=64)
    serve.add_argument("--max-inflight", type=_positive_int, default=256)
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        help="default per-request deadline in seconds",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds in-flight requests get to finish on shutdown",
    )
    _add_engine_options(serve)

    fleet = sub.add_parser(
        "fleet",
        help="launch a sharded fleet: router + shards + edge replicas "
        "(repro.fleet)",
    )
    fleet.add_argument("--shards", type=_positive_int, default=2)
    fleet.add_argument(
        "--replicas",
        type=int,
        default=1,
        help="cert-verifying edge replicas (0 = none)",
    )
    fleet.add_argument("--host", default="127.0.0.1")
    fleet.add_argument(
        "--port", type=int, default=0, help="router port (0 = ephemeral)"
    )
    fleet.add_argument(
        "--replica-port",
        type=int,
        default=0,
        help="first replica port (0 = ephemeral; replicas count up)",
    )
    fleet.add_argument(
        "--memcache-size",
        type=_positive_int,
        default=256,
        help="per-shard in-memory LRU entries",
    )
    fleet.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes per shard",
    )
    fleet.add_argument(
        "--cache-dir",
        default=None,
        help="per-shard persistent artifact cache (default: none)",
    )
    fleet.add_argument(
        "--no-cache", action="store_true", help="disable shard disk caches"
    )
    fleet.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="shard micro-batching window in milliseconds",
    )
    fleet.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=256,
        help="router admission capacity (lane caps are fractions of it)",
    )
    fleet.add_argument(
        "--rate",
        type=float,
        default=200.0,
        help="per-tenant token refill rate (queries/second)",
    )
    fleet.add_argument(
        "--burst",
        type=float,
        default=400.0,
        help="per-tenant token bucket depth",
    )
    fleet.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        help="seconds in-flight work gets to finish on shutdown",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="drive a deterministic load mix against a running "
        "service/router",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--clients", type=_positive_int, default=8)
    loadgen.add_argument("--cycles", type=_positive_int, default=1)
    loadgen.add_argument(
        "--mix",
        choices=["sleep", "classify", "chr", "mixed"],
        default="mixed",
    )
    loadgen.add_argument(
        "--count",
        type=_positive_int,
        default=32,
        help="distinct queries in the mix",
    )
    loadgen.add_argument(
        "--sleep-ms",
        type=float,
        default=20.0,
        help="service time of each sleep query",
    )
    loadgen.add_argument("--n", type=int, default=4, help="classify mix n")
    loadgen.add_argument(
        "--seed", type=int, default=2024, help="classify mix sampler seed"
    )
    loadgen.add_argument(
        "--salt", default="loadgen", help="cache-busting salt for sleep mix"
    )
    loadgen.add_argument("--timeout", type=float, default=120.0)
    loadgen.add_argument("--tenant", default=None)
    loadgen.add_argument(
        "--priority",
        choices=["interactive", "batch", "sweep"],
        default=None,
    )
    loadgen.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    query = sub.add_parser(
        "query", help="issue one query against a running service"
    )
    query.add_argument(
        "what",
        choices=[
            "ping",
            "stats",
            "metrics",
            "chr",
            "classify",
            "r_affine",
            "solve",
            "certify",
            "fuzz",
            "simulate",
            "oracle",
        ],
    )
    query.add_argument(
        "live_sets",
        nargs="?",
        default=None,
        help="JSON live sets (classify / r_affine / solve / certify / fuzz)",
    )
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7341)
    query.add_argument("--timeout", type=float, default=60.0)
    query.add_argument("--n", type=int, default=3)
    query.add_argument("--depth", type=int, default=1, help="chr depth m")
    query.add_argument(
        "--k", type=int, default=2, help="set-consensus k for solve"
    )
    query.add_argument("--budget", type=int, default=None)
    query.add_argument("--seed", type=int, default=0, help="fuzz case seed")
    query.add_argument(
        "--protocol",
        choices=PROTOCOL_NAMES,
        default="hitting-set-consensus",
        help="sim protocol (query simulate / oracle)",
    )
    query.add_argument(
        "--t",
        type=int,
        default=0,
        help="Byzantine fault budget (query simulate / oracle)",
    )
    query.add_argument(
        "--schedules",
        type=int,
        default=4,
        help="random schedules per fault plan (query simulate / oracle)",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="print the raw wire response instead of a rendering",
    )
    query.add_argument(
        "--output",
        default=None,
        help="write a fetched certificate to this file (query certify)",
    )

    certify = sub.add_parser(
        "certify",
        help="one certified FACT query -> a portable certificate file",
    )
    certify.add_argument(
        "live_sets",
        nargs="?",
        default=None,
        help='JSON list of live sets, e.g. "[[1],[0,2]]"',
    )
    certify.add_argument(
        "--wait-free",
        action="store_true",
        help="certify against the wait-free task Chr^depth s instead",
    )
    certify.add_argument("--n", type=int, default=3)
    certify.add_argument(
        "--depth", type=int, default=1, help="subdivision depth (--wait-free)"
    )
    certify.add_argument(
        "--k", type=int, default=2, help="set-consensus k to certify"
    )
    certify.add_argument(
        "--budget",
        type=int,
        default=None,
        help="node budget; overruns yield a resumable stub (exit 2)",
    )
    certify.add_argument(
        "--output", default=None, help="certificate file (default: stdout)"
    )
    _add_engine_options(certify)

    check = sub.add_parser(
        "check",
        help="validate certificate files with the independent checker",
    )
    check.add_argument(
        "certs", nargs="+", help="certificate JSON files to validate"
    )
    check.add_argument(
        "--json",
        action="store_true",
        help="one JSON report object per line instead of a rendering",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run or resume a checkpointed landscape sweep (repro.sweep)",
    )
    sweep.add_argument(
        "--grid",
        required=True,
        help="grid preset name (e.g. n3-smoke, n4-sampled) or a grid "
        "JSON file",
    )
    sweep.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory for the grid document and per-cell resume stubs",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue from existing checkpoints instead of refusing",
    )
    sweep.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        help="compute at most this many new cells, then exit 2",
    )
    sweep.add_argument(
        "--escalate",
        type=_positive_int,
        default=None,
        help="after completion, re-run budget cells at budget * 2^LEVEL",
    )
    sweep.add_argument(
        "--output",
        default=None,
        help="write the landscape artifact here once the grid completes",
    )
    _add_engine_options(sweep)

    export = sub.add_parser(
        "export", help="dump all figure data as JSON"
    )
    export.add_argument("--output", default=None, help="file path (default: stdout)")

    from .obs.summary import SORT_KEYS

    trace = sub.add_parser(
        "trace", help="summarize a JSONL trace file (repro.obs)"
    )
    trace.add_argument(
        "trace_file", help="trace written by --trace / REPRO_TRACE"
    )
    trace.add_argument(
        "--sort",
        choices=SORT_KEYS,
        default="total_s",
        help="order the per-span-kind table by this column",
    )
    trace.add_argument(
        "--limit",
        type=int,
        default=0,
        help="show at most this many span kinds (0 = all)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as one JSON object instead of a table",
    )
    return parser


def _cmd_export(args: argparse.Namespace) -> int:
    from .analysis.figure_data import export_json

    payload = export_json(args.output)
    if args.output is None:
        print(payload)
    else:
        print(f"wrote {args.output}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a JSONL trace: per-span-kind latency breakdown."""
    from . import obs

    try:
        spans = obs.load_spans(args.trace_file)
    except OSError as exc:
        raise SystemExit(f"cannot read {args.trace_file}: {exc}")
    summary = obs.summarize(spans)
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        print(obs.render_summary(summary, sort=args.sort, limit=args.limit))
    return 0


_HANDLERS = {
    "batch": _cmd_batch,
    "export": _cmd_export,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "loadgen": _cmd_loadgen,
    "query": _cmd_query,
    "figures": _cmd_figures,
    "classify": _cmd_classify,
    "landscape": _cmd_landscape,
    "fact": _cmd_fact,
    "algorithm1": _cmd_algorithm1,
    "crossover": _cmd_crossover,
    "inspect": _cmd_inspect,
    "certify": _cmd_certify,
    "check": _cmd_check,
    "sim": _cmd_sim,
    "oracle": _cmd_oracle,
    "sweep": _cmd_sweep,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro trace ... | head`): stop
        # quietly instead of dumping a traceback.  Redirect stdout to
        # devnull so the interpreter's exit-time flush can't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None) or os.environ.get(
        "REPRO_TRACE"
    )
    if args.command == "trace" or not trace_path:
        return _HANDLERS[args.command](args)
    # Traced run: every span the command produces — including spans
    # shipped back from worker processes — lands in one JSONL file.
    from . import obs

    tracer = obs.enable()
    try:
        return _HANDLERS[args.command](args)
    finally:
        count = obs.export_jsonl(trace_path, tracer.drain())
        obs.disable()
        print(f"trace: wrote {count} spans to {trace_path}", file=sys.stderr)
        if count == 0:
            # Tracing never reroutes the computation, so the legacy
            # direct paths (no engine opt-in) produce no spans.
            print(
                "trace: 0 spans means the command ran on the legacy "
                "direct path; add an engine opt-in (--jobs, "
                "--cache-dir, --no-cache with batch, or --kernel) "
                "to trace it.",
                file=sys.stderr,
            )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

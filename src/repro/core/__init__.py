"""The paper's contribution: affine tasks for fair adversaries.

Implements Section 4 (views, contention, critical simplices,
concurrency maps, the affine task ``R_A``), the published special cases
``R_{k-OF}`` and ``R_{t-res}``, and the structural lemmas of Section 5
as executable checks.
"""

from .views import (
    view1,
    view2,
    view2_colors,
    views,
    witnessed_participation,
)
from .contention import (
    are_contending,
    contention_complex,
    contention_simplices,
    is_contention_simplex,
    max_contention_dim,
)
from .critical import (
    CriticalStructure,
    critical_members,
    critical_simplices,
    critical_view,
    is_critical,
)
from .concurrency import (
    concurrency_census,
    concurrency_level,
    concurrency_map,
)
from .affine import (
    AffineTask,
    affine_model_prefixes,
    full_affine_task,
    lift_vertex,
)
from .participation import (
    all_participations,
    check_delta_matches_alpha,
    check_full_runs_where_defined,
    delta_empty_participations,
    participation_profile,
    solo_output_processes,
)
from .rkof import r_k_obstruction_free
from .rtres import r_t_resilient
from .ra import (
    DEFAULT_VARIANT,
    GuardVariant,
    RABuilder,
    r_affine,
    r_affine_of_adversary,
)
from .theorems import (
    check_corollary4,
    check_critical_distribution,
    check_critical_view_uniqueness,
    critical_hitting_number,
    family_hitting_number,
    full_participation_simplices,
    guard_variant_report,
    ra_equals_rkof,
    ra_equals_rtres,
)

__all__ = [
    "view1",
    "view2",
    "view2_colors",
    "views",
    "witnessed_participation",
    "are_contending",
    "contention_complex",
    "contention_simplices",
    "is_contention_simplex",
    "max_contention_dim",
    "CriticalStructure",
    "critical_members",
    "critical_simplices",
    "critical_view",
    "is_critical",
    "concurrency_census",
    "concurrency_level",
    "concurrency_map",
    "AffineTask",
    "affine_model_prefixes",
    "full_affine_task",
    "lift_vertex",
    "all_participations",
    "check_delta_matches_alpha",
    "check_full_runs_where_defined",
    "delta_empty_participations",
    "participation_profile",
    "solo_output_processes",
    "r_k_obstruction_free",
    "r_t_resilient",
    "DEFAULT_VARIANT",
    "GuardVariant",
    "RABuilder",
    "r_affine",
    "r_affine_of_adversary",
    "check_corollary4",
    "check_critical_distribution",
    "check_critical_view_uniqueness",
    "critical_hitting_number",
    "family_hitting_number",
    "full_participation_simplices",
    "guard_variant_report",
    "ra_equals_rkof",
    "ra_equals_rtres",
]

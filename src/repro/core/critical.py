"""Critical simplices (Definition 7, Figure 5).

A simplex ``sigma`` of ``Chr s`` is *critical* for an agreement function
``alpha`` when

1. all its vertices share the same carrier (they took the same first
   snapshot — a concurrency class closing its view), and
2. removing its members strictly drops the agreement power of the view:
   ``alpha(chi(carrier) \\ chi(sigma)) < alpha(chi(carrier))``.

Critical simplices are the "witnesses" of agreement-power increases:
the algorithm lets them through the wait-phase first, and the affine
task exempts simplices that can rely on them from contention limits.

``CS_alpha(sigma)``: critical sub-simplices of ``sigma``;
``CSM_alpha(sigma)``: their member vertices;
``CSV_alpha(sigma)``: the processes they observed
(``carrier(CSM, s)``).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable

from ..adversaries.agreement import AgreementFunction
from ..topology.chromatic import ChrVertex, ProcessId, chi

Simplex = FrozenSet[ChrVertex]


def is_critical(sigma: Iterable[ChrVertex], alpha: AgreementFunction) -> bool:
    """Definition 7 for one simplex of ``Chr s``."""
    vertices = list(sigma)
    if not vertices:
        return False
    carrier = vertices[0].carrier
    if any(v.carrier != carrier for v in vertices):
        return False
    members = chi(vertices)
    return alpha(frozenset(carrier) - members) < alpha(carrier)


def critical_simplices(
    sigma: Iterable[ChrVertex], alpha: AgreementFunction
) -> FrozenSet[Simplex]:
    """``CS_alpha(sigma)``: all critical sub-simplices of ``sigma``.

    Only subsets of a shared-carrier group can be critical, so we
    enumerate subsets per carrier class rather than all ``2^|sigma|``
    subsets.
    """
    groups: Dict[frozenset, list] = {}
    for vertex in sigma:
        groups.setdefault(vertex.carrier, []).append(vertex)
    result = set()
    for carrier, group in groups.items():
        carrier_colors = frozenset(carrier)
        power = alpha(carrier_colors)
        for size in range(1, len(group) + 1):
            for combo in combinations(group, size):
                members = chi(combo)
                if alpha(carrier_colors - members) < power:
                    result.add(frozenset(combo))
    return frozenset(result)


def critical_members(
    sigma: Iterable[ChrVertex], alpha: AgreementFunction
) -> FrozenSet[ChrVertex]:
    """``CSM_alpha(sigma)``: vertices lying in some critical simplex."""
    members = set()
    for simplex in critical_simplices(sigma, alpha):
        members.update(simplex)
    return frozenset(members)


def critical_view(
    sigma: Iterable[ChrVertex], alpha: AgreementFunction
) -> FrozenSet[ProcessId]:
    """``CSV_alpha(sigma) = carrier(CSM_alpha(sigma), s)``.

    The union of first-round snapshots taken by critical-simplex
    members — the processes "observed by" the critical simplices.
    """
    view: FrozenSet[ProcessId] = frozenset()
    for vertex in critical_members(sigma, alpha):
        view = view | vertex.carrier
    return view


class CriticalStructure:
    """Memoized critical-simplex computations for one agreement function.

    Building ``R_A`` queries ``CS``/``CSM``/``CSV``/``Conc`` for many
    overlapping simplices of ``Chr s``; this cache keeps the whole
    construction quadratic rather than exponential in practice.
    """

    def __init__(self, alpha: AgreementFunction):
        self.alpha = alpha
        self._cs: Dict[Simplex, FrozenSet[Simplex]] = {}
        self._csm: Dict[Simplex, FrozenSet[ChrVertex]] = {}
        self._csv: Dict[Simplex, FrozenSet[ProcessId]] = {}

    def cs(self, sigma: Iterable[ChrVertex]) -> FrozenSet[Simplex]:
        sigma = frozenset(sigma)
        if sigma not in self._cs:
            self._cs[sigma] = critical_simplices(sigma, self.alpha)
        return self._cs[sigma]

    def csm(self, sigma: Iterable[ChrVertex]) -> FrozenSet[ChrVertex]:
        sigma = frozenset(sigma)
        if sigma not in self._csm:
            members = set()
            for simplex in self.cs(sigma):
                members.update(simplex)
            self._csm[sigma] = frozenset(members)
        return self._csm[sigma]

    def csv(self, sigma: Iterable[ChrVertex]) -> FrozenSet[ProcessId]:
        sigma = frozenset(sigma)
        if sigma not in self._csv:
            view: FrozenSet[ProcessId] = frozenset()
            for vertex in self.csm(sigma):
                view = view | vertex.carrier
            self._csv[sigma] = view
        return self._csv[sigma]

    def csm_colors(self, sigma: Iterable[ChrVertex]) -> FrozenSet[ProcessId]:
        """``chi(CSM_alpha(sigma))``."""
        return chi(self.csm(sigma))

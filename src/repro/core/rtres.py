"""``R_{t-res}``: the affine task of t-resilience (Saraph et al., DISC'16).

The baseline characterization the paper generalizes: the output complex
consists of the 2-round IS runs in which every process sees at least
``n - t - 1`` *other* processes — i.e. every vertex's carrier in ``s``
(its witnessed participation) has size at least ``n - t``.  The
excluded simplices are exactly those adjacent to the faces of ``s``
with at most ``n - t - 1`` vertices, which is the paper's
"(n-t-1)-skeleton" phrasing (skeleton indexed by vertex count).

Figure 1b shows ``R_{1-res}`` for three processes: the facets touching
the three corners of ``Chr² s`` are removed.
"""

from __future__ import annotations

from typing import Iterable

from ..topology.chromatic import ChromaticComplex, ChrVertex
from ..topology.subdivision import chr_complex
from .affine import AffineTask
from .views import witnessed_participation


def facet_allowed(facet: Iterable[ChrVertex], n: int, t: int) -> bool:
    """Every vertex of the facet witnesses at least ``n - t`` processes."""
    return all(
        len(witnessed_participation(vertex)) >= n - t for vertex in facet
    )


def r_t_resilient(n: int, t: int) -> AffineTask:
    """Build ``R_{t-res}`` as an :class:`~repro.core.affine.AffineTask`."""
    if not 0 <= t < n:
        raise ValueError("need 0 <= t < n")
    chr2 = chr_complex(n, 2)
    kept = [facet for facet in chr2.facets if facet_allowed(facet, n, t)]
    return AffineTask(
        n,
        2,
        ChromaticComplex(kept),
        name=f"R_{t}-res",
    )

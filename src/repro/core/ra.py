"""``R_A``: the affine task of a fair adversary (Definition 9).

A facet ``sigma`` of ``Chr² s`` belongs to ``R_A`` iff every face
``theta ⊆ sigma`` satisfies the predicate ``P(theta, sigma)``: writing
``tau = carrier(theta, Chr s)`` and ``rho = carrier(sigma, Chr s)``,

    ``theta in Cont2`` and ``theta`` cannot rely on critical simplices
    (the *guard*)  ==>  ``dim(theta) < Conc_alpha(tau)``.

Intuitively: any mutually-contending set of processes that is neither
made of critical members nor covered by a critical simplex's view must
be small enough to solve set consensus on its own.

**Guard variants.**  The paper states the guard as the triple
intersection ``chi(theta) ∩ chi(CSM(rho)) ∩ chi(CSV(tau)) = ∅``
(Definition 9) but manipulates it as
``chi(theta) ∩ (chi(CSM(rho)) ∪ chi(CSV(tau))) = ∅`` in the safety
proof (Lemma 6) and in Property 10's proof.  Both are implemented.

Computational disambiguation (experiment E9, ``guard_variant_report``):
under the *union* reading, ``R_A`` coincides exactly with
``R_{t-res}`` for every ``t`` and with ``R_{k-OF}`` for ``k = 1`` and
``k = n``; under the intersection reading most of those identities
fail.  The union reading is therefore the library default.  One genuine
finding survives either way: for ``k = 2, n = 3`` Definition 9 yields a
*strict* sub-complex of Definition 6's ``R_{2-OF}`` (142 of 163
facets) — the paper's "reduces to R_{k-OF}" claim holds at the level of
task computability (both capture 2-concurrency; see experiment E11),
not facet-for-facet.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Literal

from ..adversaries.adversary import Adversary
from ..adversaries.agreement import AgreementFunction, agreement_function_of
from ..topology.chromatic import ChromaticComplex, ChrVertex, chi
from ..topology.simplex import faces
from ..topology.subdivision import carrier, chr_complex
from .affine import AffineTask
from .concurrency import concurrency_level
from .contention import is_contention_simplex
from .critical import CriticalStructure

GuardVariant = Literal["intersection", "union"]

#: The reading of Definition 9's guard adopted as library default after
#: computational disambiguation (experiment E9): the *union* variant —
#: the one the paper's own Lemma 6 and Property 10 proofs use —
#: reproduces ``R_{t-res}`` for every ``t`` and ``R_{k-OF}`` for
#: ``k = 1`` and ``k = n``.
DEFAULT_VARIANT: GuardVariant = "union"


class RABuilder:
    """Builds ``R_A`` for one agreement function, with shared caches."""

    def __init__(
        self,
        alpha: AgreementFunction,
        variant: GuardVariant = DEFAULT_VARIANT,
    ):
        self.alpha = alpha
        self.variant = variant
        self.structure = CriticalStructure(alpha)
        self._conc_cache: Dict[FrozenSet[ChrVertex], int] = {}

    # -- pieces of the predicate ------------------------------------------
    def concurrency(self, tau: FrozenSet[ChrVertex]) -> int:
        if tau not in self._conc_cache:
            self._conc_cache[tau] = concurrency_level(
                tau, self.alpha, self.structure
            )
        return self._conc_cache[tau]

    def guard_blocks_reliance(
        self,
        theta_colors: FrozenSet[int],
        rho: FrozenSet[ChrVertex],
        tau: FrozenSet[ChrVertex],
    ) -> bool:
        """True when ``theta`` cannot rely on critical simplices.

        This is the condition under which the contention bound
        ``dim(theta) < Conc_alpha(tau)`` must hold.
        """
        csm_colors = self.structure.csm_colors(rho)
        csv_colors = self.structure.csv(tau)
        if self.variant == "intersection":
            return not (theta_colors & csm_colors & csv_colors)
        return not (theta_colors & (csm_colors | csv_colors))

    def predicate(
        self, theta: FrozenSet[ChrVertex], rho: FrozenSet[ChrVertex]
    ) -> bool:
        """``P(theta, sigma)`` with ``rho = carrier(sigma, Chr s)``."""
        if not is_contention_simplex(theta):
            return True
        tau = carrier(theta)
        if not self.guard_blocks_reliance(chi(theta), rho, tau):
            return True
        return len(theta) - 1 < self.concurrency(tau)

    def facet_allowed(self, facet: FrozenSet[ChrVertex]) -> bool:
        rho = carrier(facet)
        return all(self.predicate(theta, rho) for theta in faces(facet))

    # -- the task -----------------------------------------------------------
    def build(self, n: int) -> AffineTask:
        chr2 = chr_complex(n, 2)
        kept = [
            facet for facet in chr2.facets if self.facet_allowed(facet)
        ]
        return AffineTask(
            n,
            2,
            ChromaticComplex(kept),
            name=f"R[{self.alpha.name}]",
        )


def r_affine(
    alpha: AgreementFunction,
    variant: GuardVariant = DEFAULT_VARIANT,
) -> AffineTask:
    """``R_A`` from an agreement function (Definition 9)."""
    return RABuilder(alpha, variant).build(alpha.n)


def r_affine_of_adversary(
    adversary: Adversary,
    variant: GuardVariant = DEFAULT_VARIANT,
) -> AffineTask:
    """``R_A`` from an adversary, via ``alpha(P) = setcon(A|P)``.

    The construction is meaningful (captures task computability) for
    *fair* adversaries; for unfair ones the resulting complex is still
    well defined but Theorem 15's equivalence may fail — see the
    fairness checker in :mod:`repro.adversaries.fairness`.
    """
    return r_affine(agreement_function_of(adversary), variant)

"""Participation structure of affine tasks.

An affine task's carrier map ``Δ(P) = L ∩ Chr²(P)`` may be empty for
small participations — the paper notes that processes must then wait
for participation to grow.  For the tasks ``R_A`` this library observes
(and tests, across the whole model zoo) a clean characterization:

    ``Δ(P)`` is non-empty  ⇔  ``α(P) >= 1``,

i.e. ``R_A`` offers outputs for exactly the participations in which the
α-model has runs (Definition 3).  This module provides the profile
computations and the executable invariant.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..adversaries.agreement import AgreementFunction
from ..topology.chromatic import chi
from .affine import AffineTask

ProcessSet = FrozenSet[int]


def all_participations(n: int) -> List[ProcessSet]:
    """Non-empty process subsets, small to large."""
    return [
        frozenset(combo)
        for size in range(1, n + 1)
        for combo in combinations(range(n), size)
    ]


def participation_profile(
    task: AffineTask,
) -> Dict[ProcessSet, Tuple[int, int]]:
    """Per participation ``P``: (#simplices of Δ(P), #full runs of P).

    A *full run* of ``P`` is a facet of ``Δ(P)`` colored exactly ``P``
    — an execution where everyone in ``P`` (and nobody else) outputs.
    """
    profile: Dict[ProcessSet, Tuple[int, int]] = {}
    for participants in all_participations(task.n):
        delta = task.delta(participants)
        full_runs = sum(
            1
            for facet in delta.facets
            if chi(facet) == participants
        )
        profile[participants] = (len(delta.simplices), full_runs)
    return profile


def delta_empty_participations(task: AffineTask) -> List[ProcessSet]:
    """Participations with no outputs at all (processes must wait)."""
    return [
        participants
        for participants in all_participations(task.n)
        if task.delta(participants).complex.is_empty()
    ]


def check_delta_matches_alpha(
    task: AffineTask, alpha: AgreementFunction
) -> Optional[ProcessSet]:
    """The invariant ``Δ(P) != ∅  ⇔  α(P) >= 1``.

    Returns a violating participation, or ``None`` when the invariant
    holds everywhere.
    """
    for participants in all_participations(task.n):
        nonempty = not task.delta(participants).complex.is_empty()
        if nonempty != (alpha(participants) >= 1):
            return participants
    return None


def check_full_runs_where_defined(
    task: AffineTask, alpha: AgreementFunction
) -> Optional[ProcessSet]:
    """Wherever ``α(P) >= 1``, ``Δ(P)`` contains a *full* run of ``P``
    (not just faces) — every member of ``P`` can output.

    Returns a violating participation, or ``None``.
    """
    for participants in all_participations(task.n):
        if alpha(participants) < 1:
            continue
        delta = task.delta(participants)
        if not any(
            chi(facet) == participants for facet in delta.facets
        ):
            return participants
    return None


def solo_output_processes(task: AffineTask) -> ProcessSet:
    """Processes that may output after witnessing only themselves."""
    solos = set()
    for pid in range(task.n):
        if not task.delta(frozenset({pid})).complex.is_empty():
            solos.add(pid)
    return frozenset(solos)

"""Affine tasks and affine models (Section 2).

An affine task is a pure non-empty sub-complex ``L`` of ``Chr^l s``,
read as a generalized simplex agreement: processes start on the
vertices of ``s`` and must output vertices of ``L`` forming a simplex,
respecting carrier inclusion.  Its carrier map is
``Delta(t) = L ∩ Chr^l(t)`` for each face ``t`` of ``s``.

Iterating the task composes subdivided copies of ``L`` inside each of
its own facets, producing ``L^m ⊆ Chr^{l·m} s``; the affine *model*
``L*`` is the (compact, by construction) set of infinite IIS runs all
of whose ``l``-round prefixes stay inside the iterates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List

from ..topology.chromatic import ChromaticComplex, ChrVertex, ProcessId, chi
from ..topology.subdivision import chr_complex, subdivision_restricted_to

Simplex = FrozenSet


class AffineTask:
    """An affine task ``(s, L, Delta)`` with ``L ⊆ Chr^depth s``.

    Parameters
    ----------
    n:
        Number of processes.
    depth:
        The ``l`` with ``L ⊆ Chr^l s``.
    sub_complex:
        The output complex ``L``; must be a pure non-empty
        ``(n-1)``-dimensional sub-complex of ``Chr^depth s`` (validated
        when ``depth <= 2``, where the ambient complex is materialized).
    """

    def __init__(
        self,
        n: int,
        depth: int,
        sub_complex: ChromaticComplex,
        name: str = "L",
        validate: bool = True,
    ):
        self.n = n
        self.depth = depth
        self.complex = sub_complex
        self.name = name
        if validate:
            if sub_complex.complex.is_empty():
                raise ValueError("affine tasks must be non-empty")
            if not sub_complex.is_pure(n - 1):
                raise ValueError(
                    f"affine tasks must be pure of dimension {n - 1}"
                )
            if depth <= 2:
                ambient = chr_complex(n, depth)
                if not sub_complex.complex.is_sub_complex_of(ambient.complex):
                    raise ValueError(
                        f"{name} is not a sub-complex of Chr^{depth} s"
                    )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"AffineTask({self.name}, n={self.n}, depth={self.depth}, "
            f"facets={len(self.complex.facets)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineTask):
            return NotImplemented
        return (
            self.n == other.n
            and self.depth == other.depth
            and self.complex == other.complex
        )

    def __hash__(self) -> int:
        return hash((self.n, self.depth, self.complex))

    # ------------------------------------------------------------------
    def delta(self, face: Iterable[ProcessId]) -> ChromaticComplex:
        """The task's carrier map: ``Delta(t) = L ∩ Chr^depth(t)``.

        May be empty for small faces — participation must then grow
        before outputs are produced (Section 2).
        """
        return subdivision_restricted_to(self.complex, frozenset(face))

    def facets_for_participation(
        self, participants: Iterable[ProcessId]
    ) -> FrozenSet[Simplex]:
        """Facets of ``Delta(participants)`` — full runs of that face."""
        participants = frozenset(participants)
        return frozenset(
            sigma
            for sigma in self.delta(participants).facets
            if chi(sigma) == participants
        )

    def contains_run(self, sigma: Iterable[ChrVertex]) -> bool:
        """Is a simplex (a set of per-process outputs) a valid output?"""
        return frozenset(sigma) in self.complex

    # ------------------------------------------------------------------
    def iterate(self, m: int) -> "AffineTask":
        """``L^m``: the ``m``-fold iteration, a sub-complex of ``Chr^{depth*m} s``.

        Facets of ``L^{k+1}`` are obtained by planting a copy of ``L``
        inside each facet ``sigma`` of ``L^k`` via the chromatic
        isomorphism ``s -> sigma`` lifted through the subdivision
        structure.
        """
        if m < 1:
            raise ValueError("iteration count must be >= 1")
        result = self
        for _ in range(m - 1):
            result = result.compose_with(self)
        return result

    def compose_with(self, inner: "AffineTask") -> "AffineTask":
        """The task "run ``self``, then run ``inner`` on the outputs"."""
        if inner.n != self.n:
            raise ValueError("compose requires matching process counts")
        facets: List[Simplex] = []
        for outer_facet in self.complex.facets:
            mapping = {v.color: v for v in outer_facet}
            if len(mapping) != self.n:
                continue  # only full-participation facets compose
            for inner_facet in inner.complex.facets:
                facets.append(
                    frozenset(lift_vertex(v, mapping) for v in inner_facet)
                )
        return AffineTask(
            self.n,
            self.depth + inner.depth,
            ChromaticComplex(facets),
            name=f"{self.name}∘{inner.name}",
            validate=False,
        )


def lift_vertex(vertex: ChrVertex, mapping: Dict[ProcessId, ChrVertex]) -> ChrVertex:
    """Transport a ``Chr^l s`` vertex along the chromatic iso ``s -> sigma``.

    ``mapping`` sends each base color to the corresponding vertex of the
    target facet ``sigma``; the lift rebuilds carriers structurally, so
    the image lives in ``Chr^l(sigma)`` — a sub-complex of deeper
    iterated subdivisions when ``sigma`` itself is a subdivision facet.
    """
    lifted_carrier = frozenset(
        mapping[member] if isinstance(member, int) else lift_vertex(member, mapping)
        for member in vertex.carrier
    )
    return ChrVertex(vertex.color, lifted_carrier)


def full_affine_task(n: int, depth: int = 1) -> AffineTask:
    """The unrestricted affine task ``Chr^depth s`` (the IS^depth task).

    Its iterations generate the full IIS model — the wait-free case of
    the paper's framework.
    """
    return AffineTask(
        n, depth, chr_complex(n, depth), name=f"Chr^{depth}"
    )


def affine_model_prefixes(
    task: AffineTask, iterations: int
) -> FrozenSet[Simplex]:
    """Facets of ``L^iterations`` — the finite prefixes of the model ``L*``.

    Materializing iterates grows as ``facets(L)^m``; callers should keep
    ``iterations`` small (the compactness analysis in
    :mod:`repro.analysis.compactness` explains why bounded prefixes
    suffice).
    """
    return task.iterate(iterations).complex.facets if iterations > 1 else task.complex.facets

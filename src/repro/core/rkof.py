"""``R_{k-OF}``: the affine task of k-obstruction-freedom (Definition 6).

Gafni, He, Kuznetsov & Rieutord (OPODIS 2016) showed that the
k-obstruction-free (equivalently k-concurrency / k-set-consensus)
model is captured by prohibiting *large contention*:

    ``R_{k-OF} = Pc({sigma in Cont2 : dim(sigma) >= k}, Chr² s)``

— the pure complement of the contention simplices with ``k + 1`` or
more mutually-contending vertices.  Figure 7a of the paper shows
``R_{1-OF}`` for three processes.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..topology.chromatic import ChromaticComplex, ChrVertex
from ..topology.subdivision import chr_complex
from .affine import AffineTask
from .contention import is_contention_simplex


def facet_allowed(facet: Iterable[ChrVertex], k: int) -> bool:
    """No face of the facet is a contention simplex of dimension >= k.

    ``Cont2`` is inclusion-closed, so it suffices to exclude contention
    faces of dimension exactly ``k`` (size ``k + 1``).
    """
    vertices = list(facet)
    return not any(
        is_contention_simplex(combo)
        for combo in combinations(vertices, k + 1)
    )


def r_k_obstruction_free(n: int, k: int) -> AffineTask:
    """Build ``R_{k-OF}`` as an :class:`~repro.core.affine.AffineTask`."""
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")
    chr2 = chr_complex(n, 2)
    kept = [facet for facet in chr2.facets if facet_allowed(facet, k)]
    return AffineTask(
        n,
        2,
        ChromaticComplex(kept),
        name=f"R_{k}-OF",
    )

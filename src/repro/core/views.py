"""First- and second-round views of ``Chr² s`` vertices (Section 4).

For a vertex ``v`` of ``Chr² s``:

* ``View2(v) = carrier(v, Chr s)`` — the set of first-round vertices the
  process saw in the second immediate snapshot;
* ``View1(v) = carrier(v', s)`` where ``v'`` is the process's own vertex
  inside ``View2(v)`` — the process's *first-round* snapshot, a set of
  process ids.

These two views drive the whole construction: contention compares their
orders, critical simplices select distinguished ``View1`` values.
"""

from __future__ import annotations

from typing import FrozenSet

from ..topology.chromatic import ChrVertex, ProcessId
from ..topology.subdivision import own_vertex_in_carrier


def view2(vertex: ChrVertex) -> FrozenSet[ChrVertex]:
    """``View2(v)``: the carrier of ``v`` in ``Chr s`` (second IS output)."""
    if not isinstance(vertex, ChrVertex):
        raise TypeError("View2 is defined on Chr^2 vertices")
    return vertex.carrier


def view1(vertex: ChrVertex) -> FrozenSet[ProcessId]:
    """``View1(v)``: the process's own first-round snapshot (a color set)."""
    if not isinstance(vertex, ChrVertex) or not all(
        isinstance(w, ChrVertex) for w in vertex.carrier
    ):
        raise TypeError("View1 is defined on Chr^2 vertices")
    own = own_vertex_in_carrier(vertex)
    return own.carrier


def views(vertex: ChrVertex) -> tuple:
    """``(View1(v), View2(v))`` as a pair."""
    return view1(vertex), view2(vertex)


def view2_colors(vertex: ChrVertex) -> FrozenSet[ProcessId]:
    """The processes seen in the second round: ``chi(View2(v))``."""
    return frozenset(v.color for v in view2(vertex))


def witnessed_participation(vertex: ChrVertex) -> FrozenSet[ProcessId]:
    """``carrier(v, s)``: all processes seen across both rounds.

    Equal to the union of the ``View1`` of every process in
    ``View2(v)`` — the participating set witnessed by the process.
    """
    return frozenset().union(
        *(member.carrier for member in view2(vertex))
    )

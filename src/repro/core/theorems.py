"""Executable forms of the paper's structural lemmas and identities.

These functions turn the paper's claims into decision procedures used
by tests and benchmarks:

* :func:`ra_equals_rkof` / :func:`ra_equals_rtres` — Definition 9
  specializes to the published affine tasks of the k-obstruction-free
  and t-resilient models (and disambiguates the Definition-9 guard,
  experiment E9);
* :func:`check_critical_distribution` — Lemma 3, the hitting-set lower
  bound on critical simplices;
* :func:`check_corollary4` — Corollary 4, its partial-participation
  generalization;
* :func:`check_critical_view_uniqueness` — Lemma 11, one ``View1`` per
  agreement level among critical simplices.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional

from ..adversaries.agreement import (
    AgreementFunction,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from ..topology.chromatic import ChrVertex, chi
from ..topology.subdivision import carrier, chr_complex
from .critical import CriticalStructure
from .ra import GuardVariant, r_affine
from .rkof import r_k_obstruction_free
from .rtres import r_t_resilient


def ra_equals_rkof(
    n: int, k: int, variant: GuardVariant = "intersection"
) -> bool:
    """Does Definition 9 reproduce ``R_{k-OF}`` (Definition 6)?"""
    alpha = k_concurrency_alpha(n, k)
    return r_affine(alpha, variant).complex == r_k_obstruction_free(n, k).complex


def ra_equals_rtres(
    n: int, t: int, variant: GuardVariant = "intersection"
) -> bool:
    """Does Definition 9 reproduce ``R_{t-res}`` (Saraph et al.)?"""
    alpha = t_resilience_alpha(n, t)
    return r_affine(alpha, variant).complex == r_t_resilient(n, t).complex


def guard_variant_report(n: int) -> dict:
    """Experiment E9: which Definition-9 reading matches the literature.

    Returns per-variant agreement with every ``R_{k-OF}`` and
    ``R_{t-res}`` instance at the given ``n``.
    """
    report: dict = {}
    for variant in ("intersection", "union"):
        entries = {}
        for k in range(1, n + 1):
            entries[f"k-OF k={k}"] = ra_equals_rkof(n, k, variant)
        for t in range(0, n):
            entries[f"t-res t={t}"] = ra_equals_rtres(n, t, variant)
        report[variant] = entries
    return report


# ----------------------------------------------------------------------
# Lemma 3 / Corollary 4: distribution of critical simplices
# ----------------------------------------------------------------------
def family_hitting_number(families: Iterable[FrozenSet[int]]) -> int:
    """Minimal size of a set hitting every member of ``families``.

    ``csize`` of Section 5.3, applied to the *color sets* of critical
    simplices.  Empty family -> 0.
    """
    families = [frozenset(f) for f in families]
    if not families:
        return 0
    universe = sorted(frozenset().union(*families))
    for size in range(0, len(universe) + 1):
        for combo in combinations(universe, size):
            candidate = frozenset(combo)
            if all(candidate & member for member in families):
                return size
    raise AssertionError("the universe hits everything")


def critical_hitting_number(
    sigma: Iterable[ChrVertex],
    alpha: AgreementFunction,
    level: int,
    structure: Optional[CriticalStructure] = None,
) -> int:
    """``csize({theta in CS_alpha(sigma) : alpha(carrier(theta)) >= level})``."""
    structure = structure or CriticalStructure(alpha)
    selected = [
        chi(theta)
        for theta in structure.cs(sigma)
        if alpha(next(iter(theta)).carrier) >= level
    ]
    return family_hitting_number(selected)


def check_critical_distribution(
    sigma: Iterable[ChrVertex],
    alpha: AgreementFunction,
    structure: Optional[CriticalStructure] = None,
) -> bool:
    """Lemma 3 on one simplex of ``Chr s`` with ``chi(sigma) = chi(carrier)``.

    For every level ``l >= 1``:
    ``alpha(chi(sigma)) - l + 1 <= csize({theta in CS : power >= l})``.
    """
    sigma = frozenset(sigma)
    if chi(sigma) != carrier(sigma):
        raise ValueError("Lemma 3 requires chi(sigma) = chi(carrier(sigma, s))")
    structure = structure or CriticalStructure(alpha)
    power = alpha(chi(sigma))
    for level in range(1, power + 1):
        bound = power - level + 1
        if critical_hitting_number(sigma, alpha, level, structure) < bound:
            return False
    return True


def check_corollary4(
    sigma: Iterable[ChrVertex],
    alpha: AgreementFunction,
    structure: Optional[CriticalStructure] = None,
) -> bool:
    """Corollary 4 on an arbitrary simplex of ``Chr s``.

    ``alpha(chi(carrier)) - l - |chi(carrier) \\ chi(sigma)| + 1
      <= csize({theta in CS : power >= l})`` for every ``l >= 1``.
    """
    sigma = frozenset(sigma)
    structure = structure or CriticalStructure(alpha)
    participation = carrier(sigma)
    missing = len(participation - chi(sigma))
    power = alpha(participation)
    for level in range(1, power + 1):
        bound = power - level - missing + 1
        if bound <= 0:
            continue
        if critical_hitting_number(sigma, alpha, level, structure) < bound:
            return False
    return True


def check_critical_view_uniqueness(
    sigma: Iterable[ChrVertex],
    alpha: AgreementFunction,
    structure: Optional[CriticalStructure] = None,
) -> bool:
    """Lemma 11: equal agreement powers force equal critical ``View1``s."""
    structure = structure or CriticalStructure(alpha)
    seen: dict = {}
    for theta in structure.cs(frozenset(sigma)):
        view = next(iter(theta)).carrier
        power = alpha(view)
        if power in seen and seen[power] != view:
            return False
        seen[power] = view
    return True


def full_participation_simplices(n: int) -> List[FrozenSet[ChrVertex]]:
    """Simplices of ``Chr s`` with ``chi(sigma) = chi(carrier(sigma, s))``.

    The hypothesis class of Lemma 3 — IS outputs where all witnessed
    processes produced a view.
    """
    chr1 = chr_complex(n, 1)
    return [
        frozenset(sigma)
        for sigma in chr1.simplices
        if chi(sigma) == carrier(frozenset(sigma))
    ]

"""2-contention simplices ``Cont2`` (Definition 5, Figure 4).

Two vertices of ``Chr² s`` *contend* when their views are ordered in
opposite ways across the two IS rounds: one saw strictly less in the
first round but strictly more in the second.  In run terms (Figure 4a):
the execution order of the two processes is strictly reversed between
the rounds, so each believes it went first and neither can defer to the
other's choice — the configuration that defeats agreement.

``Cont2`` — all simplices whose vertices pairwise contend — is
inclusion-closed, hence a complex.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from ..topology.chromatic import ChromaticComplex, ChrVertex
from ..topology.subdivision import chr_complex
from .views import view1, view2


def are_contending(u: ChrVertex, v: ChrVertex) -> bool:
    """Definition 5's pairwise condition: views strictly reversed."""
    u1, u2 = view1(u), view2(u)
    v1, v2 = view1(v), view2(v)
    return (u1 < v1 and v2 < u2) or (v1 < u1 and u2 < v2)


def is_contention_simplex(sigma: Iterable[ChrVertex]) -> bool:
    """Is ``sigma`` a 2-contention simplex (every two vertices contend)?

    Single vertices qualify vacuously, matching the universally
    quantified Definition 5.
    """
    vertices = list(sigma)
    return all(
        are_contending(u, v) for u, v in combinations(vertices, 2)
    )


def contention_simplices(chr2: ChromaticComplex, min_dim: int = 0):
    """All 2-contention simplices of dimension >= ``min_dim`` in ``chr2``."""
    return frozenset(
        sigma
        for sigma in chr2.simplices
        if len(sigma) >= min_dim + 1 and is_contention_simplex(sigma)
    )


def contention_complex(n: int) -> ChromaticComplex:
    """The 2-contention complex ``Cont2`` inside ``Chr² s`` (Figure 4c)."""
    chr2 = chr_complex(n, 2)
    return ChromaticComplex(contention_simplices(chr2))


def max_contention_dim(sigma: Iterable[ChrVertex]) -> int:
    """The largest dimension of a contention face of ``sigma``.

    Because ``Cont2`` is determined pairwise, this is the size of a
    maximum clique in the contention graph of ``sigma``'s vertices,
    minus one.  ``sigma`` has at most ``n`` vertices so exhaustive
    search is fine.
    """
    vertices = list(sigma)
    best = -1
    for size in range(len(vertices), 0, -1):
        for combo in combinations(vertices, size):
            if is_contention_simplex(combo):
                return size - 1
    return best

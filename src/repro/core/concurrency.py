"""The concurrency map ``Conc_alpha`` (Definition 8, Figure 6).

Each simplex of ``Chr s`` is assigned the highest agreement power
witnessed by a critical simplex it contains:

    ``Conc_alpha(sigma) = max(0 ∪ {alpha(chi(carrier(tau, s))) :
                                   tau in CS_alpha(sigma)})``.

In ``R_A``, contention simplices that cannot rely on critical members
must have dimension strictly below the concurrency level of their
carrier — the affine-task analogue of "at most ``Conc`` processes run
unchecked".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from ..adversaries.agreement import AgreementFunction
from ..topology.chromatic import ChromaticComplex, ChrVertex
from .critical import CriticalStructure

Simplex = FrozenSet[ChrVertex]


def concurrency_level(
    sigma: Iterable[ChrVertex],
    alpha: AgreementFunction,
    structure: CriticalStructure | None = None,
) -> int:
    """``Conc_alpha(sigma)`` for one simplex of ``Chr s``."""
    structure = structure or CriticalStructure(alpha)
    levels = {0}
    for tau in structure.cs(sigma):
        carrier = next(iter(tau)).carrier
        levels.add(alpha(carrier))
    return max(levels)


def concurrency_map(
    chr1: ChromaticComplex, alpha: AgreementFunction
) -> Dict[Simplex, int]:
    """``Conc_alpha`` tabulated over every simplex of ``Chr s``."""
    structure = CriticalStructure(alpha)
    return {
        frozenset(sigma): concurrency_level(sigma, alpha, structure)
        for sigma in chr1.simplices
    }


def concurrency_census(
    chr1: ChromaticComplex, alpha: AgreementFunction
) -> Dict[int, int]:
    """How many simplices of ``Chr s`` sit at each concurrency level.

    This is the numeric content of Figure 6: the figure colors
    simplices black/orange/green by level 0/1/2.
    """
    census: Dict[int, int] = {}
    for level in concurrency_map(chr1, alpha).values():
        census[level] = census.get(level, 0) + 1
    return census

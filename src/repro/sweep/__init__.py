"""Checkpointed landscape sweeps over compressed, interned complexes.

The n >= 4 regime of the paper's landscape (every adversary classified,
every fair one's affine task ``R_A`` solved against the set-consensus
grid) is combinatorially explosive: ``Chr^m s`` facet counts follow the
Fubini numbers and the naive :class:`~repro.topology.complex.
SimplicialComplex` materializes every simplex as nested frozensets.
This package makes large sweeps incremental instead of monolithic:

* :mod:`repro.sweep.compact` — a structure-shared, id-interned complex
  representation (dense vertex ids, per-dimension facet arrays) with a
  lazy, iterator-based ``Chr^m`` subdivision that streams facets
  instead of materializing the full complex, plus round-trip adapters
  to/from the classic complex types;
* :mod:`repro.sweep.cells` — one sweep cell (adversary x task) as a
  pure engine computation: classification, ``R_A`` construction and a
  budgeted FACT solve with engine split-retry escalation;
* :mod:`repro.sweep.driver` — grid specs as frozen dataclasses with
  content-addressed digests, a deterministic adversary sampler for the
  regimes where exhaustive enumeration is impossible, and a resumable
  sweep driver that persists progress after every completed cell so a
  killed sweep continues where it stopped and produces a byte-identical
  artifact.
"""

from .compact import (
    CompactComplex,
    compact_census,
    compact_chr,
    deep_sizeof,
    stream_chr_facets,
)
from .driver import (
    GRID_PRESETS,
    GridSpec,
    SweepDriver,
    load_grid,
    sample_adversaries,
)

__all__ = [
    "CompactComplex",
    "compact_census",
    "compact_chr",
    "deep_sizeof",
    "stream_chr_facets",
    "GRID_PRESETS",
    "GridSpec",
    "SweepDriver",
    "load_grid",
    "sample_adversaries",
]

"""One sweep cell as a pure, cacheable engine computation.

A *cell* is one ``(adversary, k)`` point of a landscape grid: classify
the adversary (fairness, closure properties, agreement power), and —
when it is fair with positive power — build its affine task ``R_A`` and
decide ``k``-set consensus on it under a node budget.  The cell value
is a JSON-safe record, so it travels unchanged through the engine's
content-addressed cache, the sweep driver's checkpoint stubs and the
final landscape artifact.

Budget handling reuses the engine's split-retry machinery verbatim: the
solve runs through a private in-process :class:`~repro.engine.jobs.
Engine` whose ``split_retries`` level comes from the grid, so an
overrun is retried as domain-partitioned sub-searches with geometric
budget escalation before the cell honestly records a ``budget``
outcome.  ``R_A`` constructions are memoized per agreement function
within the worker process — cells of one sweep share a handful of
distinct alphas, and the construction dominates fair-cell cost.

Records are fully deterministic: verdicts and node counts come from
tree-identical kernels, and no wall-clock or environment data is ever
included — this is what makes a resumed sweep's artifact byte-identical
to an uninterrupted run's.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..adversaries.adversary import Adversary
from ..adversaries.agreement import agreement_function_of
from ..adversaries.fairness import is_fair
from ..adversaries.setcon import setcon

__all__ = ["compute_cell", "compute_cell_resume", "cell_payload"]

#: Per-process memo of ``R_A`` constructions, keyed by the agreement
#: function's canonical signature.  Bounded by the number of distinct
#: alphas in a sweep (small) — never by the number of cells.
_RA_MEMO: Dict[Tuple, Any] = {}


def cell_payload(
    adversary: Adversary,
    k: int,
    budget: int,
    kernel: str,
    variant: str,
    split_retries: int,
) -> tuple:
    """The canonical engine payload of one sweep cell."""
    return (adversary, k, budget, kernel, variant, split_retries)


def _ra_for(alpha, variant):
    from ..analysis.landscape import alpha_signature
    from ..core.ra import r_affine

    key = (alpha_signature(alpha), variant)
    task = _RA_MEMO.get(key)
    if task is None:
        task = r_affine(alpha, variant)
        _RA_MEMO[key] = task
    return task


def _solve_outcome(
    affine,
    task,
    budget: int,
    kernel: str,
    split_retries: int,
) -> Dict[str, Any]:
    """Decide ``task`` on ``affine`` with split-retry escalation.

    Returns a JSON-safe outcome: ``verdict`` is ``solvable`` /
    ``unsolvable`` / ``budget`` (the budget case records the nodes spent
    and how many split levels were burned — an honest partial result,
    not an error).
    """
    from ..engine.jobs import Engine, JobSpec
    from ..solver.api import SolveRequest

    request = SolveRequest(
        affine=affine,
        task=task,
        budget=budget,
        kernel=kernel,
    )
    inner = Engine(jobs=1, split_retries=split_retries)
    (result,) = inner.run_jobs([JobSpec("solve", (request,))])
    if result.error == "budget":
        return {
            "verdict": "budget",
            "nodes": result.nodes_explored or 0,
            "splits": result.splits,
            "budget": budget,
        }
    if not result.ok:  # pragma: no cover - inner jobs only fail on bugs
        raise RuntimeError(f"sweep cell solve failed: {result.error}")
    mapping, nodes = result.value
    return {
        "verdict": "solvable" if mapping is not None else "unsolvable",
        "nodes": nodes,
        "splits": result.splits,
        "budget": budget,
    }


def compute_cell(payload: tuple) -> Dict[str, Any]:
    """Classify one adversary and (when fair) solve one grid task."""
    from ..analysis.landscape import alpha_signature
    from ..engine.serialize import digest
    from ..tasks.set_consensus import set_consensus_task

    adversary, k, budget, kernel, variant, split_retries = payload
    fair = is_fair(adversary)
    record: Dict[str, Any] = {
        "n": adversary.n,
        "live_sets": sorted(sorted(live) for live in adversary.live_sets),
        "k": k,
        "fair": fair,
        "superset_closed": adversary.is_superset_closed(),
        "symmetric": adversary.is_symmetric(),
        "power": setcon(adversary),
        "alpha_digest": None,
        "ra": None,
        "solve": None,
    }
    if not fair or record["power"] < 1:
        return record
    alpha = agreement_function_of(adversary)
    record["alpha_digest"] = digest(alpha_signature(alpha))
    affine = _ra_for(alpha, variant)
    record["ra"] = {
        "facets": len(affine.complex.facets),
        "vertices": len(affine.complex.vertices),
        "depth": affine.depth,
    }
    record["solve"] = _solve_outcome(
        affine,
        set_consensus_task(adversary.n, k),
        budget,
        kernel,
        split_retries,
    )
    return record


def compute_cell_resume(payload: tuple) -> Dict[str, Any]:
    """Re-run a ``budget`` cell at an escalated node budget.

    The payload is the original cell payload plus an escalation level;
    the effective budget is ``budget * 2**escalation``, mirroring the
    engine's split-retry doubling.  The record keeps the *original*
    budget in its identity fields but reports the escalated one in the
    solve outcome, so an artifact assembled from escalated cells remains
    self-describing.
    """
    adversary, k, budget, kernel, variant, split_retries, escalation = payload
    if escalation < 1:
        raise ValueError("escalation must be >= 1")
    scaled = budget * (2**escalation)
    record = compute_cell(
        (adversary, k, scaled, kernel, variant, split_retries)
    )
    if record["solve"] is not None:
        record["solve"]["escalated_from"] = budget
        record["solve"]["escalation"] = escalation
    return record

"""Resumable, checkpointed sweep driver over (adversary x task) grids.

A sweep is described by a :class:`GridSpec` — a frozen dataclass whose
content-addressed digest identifies the grid exactly (process count,
adversary source, task axis, budgets, kernel).  The driver expands the
grid into deterministic cells, runs each cell as a ``sweep`` engine job
(cached, parallelizable) and persists a *checkpoint stub* — the
certify-style resume idiom — after **every** completed cell.  Kill the
process at any point, rerun with ``resume=True``, and the sweep picks
up exactly where it stopped: completed cells are loaded from their
stubs, never recomputed, and the final artifact is byte-identical to an
uninterrupted run's.

Checkpoint layout (under the checkpoint directory)::

    grid.json                      the grid document + digest
    cells/<index>-<digest12>.json  one stub per completed cell

Stubs are written atomically (temp file + ``os.replace``), so a crash
mid-write can only ever leave a whole stub or none.  Every stub records
the grid digest and its cell's payload digest; stubs from a different
grid are rejected on resume rather than silently mixed in.

For ``n >= 4`` exhaustive enumeration is impossible (``2^(2^n-1) - 1``
adversaries), so grids can declare a *sampled* adversary source:
:func:`sample_adversaries` draws a deterministic, platform-independent
sample of the space from a seed.
"""

from __future__ import annotations

import json
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .. import obs
from ..adversaries.adversary import Adversary
from .cells import cell_payload

__all__ = [
    "GRID_PRESETS",
    "CellState",
    "GridSpec",
    "SweepDriver",
    "load_grid",
    "sample_adversaries",
]

GRID_FORMAT = "repro.sweep/grid"
CELL_FORMAT = "repro.sweep/cell"
ARTIFACT_FORMAT = "repro.sweep/landscape"
SWEEP_VERSION = 1

#: Valid adversary sources for a grid.
SOURCES = ("exhaustive", "sample", "explicit")

#: Seconds to pause after each checkpointed cell.  A throttle for the
#: kill-and-resume tests (a SIGKILL must land *mid-grid* reliably) and
#: for operators who want a long sweep to yield the machine; records
#: are unaffected, so artifacts stay byte-identical with or without it.
CELL_DELAY_ENV = "REPRO_SWEEP_CELL_DELAY"


# ----------------------------------------------------------------------
# Deterministic sampling of adversary space
# ----------------------------------------------------------------------
def _subset_universe(n: int) -> List[frozenset]:
    """All non-empty subsets of ``range(n)`` in canonical (size, lex) order."""
    return [
        frozenset(combo)
        for size in range(1, n + 1)
        for combo in combinations(range(n), size)
    ]


def _adversary_sort_key(adversary: Adversary) -> tuple:
    return (
        len(adversary.live_sets),
        sorted(sorted(live) for live in adversary.live_sets),
    )


def sample_adversaries(n: int, seed: int, count: int) -> List[Adversary]:
    """A deterministic sample of ``count`` distinct adversaries over ``n``.

    Adversaries are drawn uniformly over the ``2^(2^n - 1) - 1``
    non-empty collections of non-empty live sets via a seeded Mersenne
    Twister (bit masks over the canonical subset order — no dependence
    on hash seeds or platform), de-duplicated, and returned in canonical
    sorted order so grid cell numbering is stable.
    """
    subsets = _subset_universe(n)
    space = (1 << len(subsets)) - 1
    if not 1 <= count <= min(space, 1 << 20):
        raise ValueError(f"count must be in 1..{min(space, 1 << 20)}")
    rng = random.Random(f"repro.sweep:{n}:{seed}")
    chosen: Dict[Tuple[Tuple[int, ...], ...], Adversary] = {}
    while len(chosen) < count:
        mask = rng.getrandbits(len(subsets))
        if mask == 0:
            continue
        live = [s for i, s in enumerate(subsets) if (mask >> i) & 1]
        adversary = Adversary(n, live)
        key = tuple(
            tuple(sorted(s)) for s in sorted(live, key=lambda s: sorted(s))
        )
        chosen.setdefault(key, adversary)
    return sorted(chosen.values(), key=_adversary_sort_key)


# ----------------------------------------------------------------------
# Grid specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridSpec:
    """One landscape sweep, fully determined by its fields.

    ``source`` picks the adversary axis: ``exhaustive`` enumerates the
    whole space (n <= 3 only), ``sample`` draws ``sample_count``
    adversaries from ``seed``, ``explicit`` uses ``live_sets`` (a tuple
    of adversaries, each a tuple of live-set tuples).  ``ks`` is the
    set-consensus task axis; ``budget``/``split_retries`` bound each
    cell's solve; ``kernel``/``variant`` pin the decision procedure.
    """

    name: str
    n: int
    source: str
    ks: Tuple[int, ...]
    budget: int = 20000
    kernel: str = "bitset"
    variant: str = "union"
    split_retries: int = 1
    sample_count: int = 0
    seed: int = 0
    live_sets: Tuple[Tuple[Tuple[int, ...], ...], ...] = field(
        default_factory=tuple
    )

    def __post_init__(self):
        if self.source not in SOURCES:
            raise ValueError(
                f"unknown source {self.source!r}; expected one of {SOURCES}"
            )
        if self.source == "exhaustive" and self.n > 3:
            raise ValueError(
                "exhaustive enumeration is infeasible for n > 3; "
                "use source='sample'"
            )
        if self.source == "sample" and self.sample_count < 1:
            raise ValueError("sampled grids need sample_count >= 1")
        if self.source == "explicit" and not self.live_sets:
            raise ValueError("explicit grids need live_sets")
        if not self.ks or any(
            not 1 <= k <= self.n for k in self.ks
        ):
            raise ValueError("ks must be non-empty values in 1..n")

    # -- identity --------------------------------------------------------
    def digest(self) -> str:
        """The grid's content address (engine digest of its canonical doc)."""
        from ..engine.serialize import digest

        return digest(
            (
                "repro.sweep.grid",
                SWEEP_VERSION,
                self.name,
                self.n,
                self.source,
                self.ks,
                self.budget,
                self.kernel,
                self.variant,
                self.split_retries,
                self.sample_count,
                self.seed,
                self.live_sets,
            )
        )

    # -- documents -------------------------------------------------------
    def to_doc(self) -> Dict[str, Any]:
        return {
            "format": GRID_FORMAT,
            "version": SWEEP_VERSION,
            "name": self.name,
            "n": self.n,
            "source": self.source,
            "ks": list(self.ks),
            "budget": self.budget,
            "kernel": self.kernel,
            "variant": self.variant,
            "split_retries": self.split_retries,
            "sample_count": self.sample_count,
            "seed": self.seed,
            "live_sets": [
                [list(live) for live in adversary]
                for adversary in self.live_sets
            ],
        }

    @classmethod
    def from_doc(cls, doc: Dict[str, Any]) -> "GridSpec":
        if doc.get("format") != GRID_FORMAT:
            raise ValueError(
                f"not a sweep grid document: format={doc.get('format')!r}"
            )
        if doc.get("version") != SWEEP_VERSION:
            raise ValueError(
                f"unsupported grid version {doc.get('version')!r}"
            )
        return cls(
            name=doc["name"],
            n=doc["n"],
            source=doc["source"],
            ks=tuple(doc["ks"]),
            budget=doc.get("budget", 20000),
            kernel=doc.get("kernel", "bitset"),
            variant=doc.get("variant", "union"),
            split_retries=doc.get("split_retries", 1),
            sample_count=doc.get("sample_count", 0),
            seed=doc.get("seed", 0),
            live_sets=tuple(
                tuple(tuple(int(p) for p in live) for live in adversary)
                for adversary in doc.get("live_sets", [])
            ),
        )

    # -- expansion -------------------------------------------------------
    def adversaries(self) -> List[Adversary]:
        """The grid's adversary axis, in canonical order."""
        if self.source == "exhaustive":
            from ..analysis.landscape import all_adversaries

            return sorted(all_adversaries(self.n), key=_adversary_sort_key)
        if self.source == "sample":
            return sample_adversaries(self.n, self.seed, self.sample_count)
        return sorted(
            (Adversary(self.n, live_sets) for live_sets in self.live_sets),
            key=_adversary_sort_key,
        )

    def cells(self) -> List["CellState"]:
        """All cells in deterministic order: adversary-major, then k."""
        expanded = []
        index = 0
        for adversary in self.adversaries():
            for k in self.ks:
                expanded.append(CellState(index=index, adversary=adversary, k=k))
                index += 1
        return expanded


@dataclass
class CellState:
    """One grid cell plus its (optional) completed record."""

    index: int
    adversary: Adversary
    k: int
    record: Optional[Dict[str, Any]] = None

    def payload(self, grid: GridSpec) -> tuple:
        return cell_payload(
            self.adversary,
            self.k,
            grid.budget,
            grid.kernel,
            grid.variant,
            grid.split_retries,
        )


def load_grid(spec: str) -> GridSpec:
    """Resolve ``--grid``: a preset name or a path to a grid JSON file."""
    if spec in GRID_PRESETS:
        return GRID_PRESETS[spec]
    path = Path(spec)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(
            f"unknown grid {spec!r}: not a preset "
            f"({', '.join(sorted(GRID_PRESETS))}) and not a readable file "
            f"({exc})"
        )
    return GridSpec.from_doc(doc)


# ----------------------------------------------------------------------
# Canonical JSON (artifact + stub bytes)
# ----------------------------------------------------------------------
def _canon_bytes(doc: Dict[str, Any]) -> bytes:
    return (
        json.dumps(
            doc, sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )
        + "\n"
    ).encode("utf-8")


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------
class SweepDriver:
    """Run a grid as engine jobs, checkpointing every completed cell.

    Parameters
    ----------
    grid:
        The :class:`GridSpec` to sweep.
    checkpoint_dir:
        Where stubs live.  A fresh sweep requires the directory to hold
        no foreign grid; resuming requires the stored grid digest to
        match (a changed grid never silently reuses stale cells).
    engine:
        An optional :class:`repro.engine.Engine`; the driver installs
        its own progress hook on it while running.  Defaults to a
        sequential engine with no cache — cell values are still
        persisted via checkpoint stubs, and a content-addressed
        :class:`~repro.engine.cache.ArtifactCache` layers on top when
        provided (cells shared between grids then never recompute).
    """

    def __init__(
        self,
        grid: GridSpec,
        checkpoint_dir,
        engine=None,
    ):
        from ..engine.jobs import Engine

        self.grid = grid
        self.grid_digest = grid.digest()
        self.root = Path(checkpoint_dir)
        self.cells_dir = self.root / "cells"
        self.engine = engine if engine is not None else Engine()
        self._payload_digests: Dict[int, str] = {}

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Release the engine's persistent worker pool (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "SweepDriver":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- checkpoint plumbing ---------------------------------------------
    def _grid_path(self) -> Path:
        return self.root / "grid.json"

    def _cell_path(self, index: int, payload_digest: str) -> Path:
        return self.cells_dir / f"{index:05d}-{payload_digest[:12]}.json"

    def _write_grid_doc(self) -> None:
        doc = dict(self.grid.to_doc())
        doc["digest"] = self.grid_digest
        _atomic_write(self._grid_path(), _canon_bytes(doc))

    def _checkpoint_cell(
        self, cell: CellState, payload_digest: str
    ) -> None:
        stub = {
            "format": CELL_FORMAT,
            "version": SWEEP_VERSION,
            "grid_digest": self.grid_digest,
            "index": cell.index,
            "payload_digest": payload_digest,
            "record": cell.record,
        }
        with obs.span("sweep.checkpoint", index=cell.index):
            _atomic_write(
                self._cell_path(cell.index, payload_digest),
                _canon_bytes(stub),
            )

    def _load_stubs(self) -> Dict[int, Dict[str, Any]]:
        """Completed cell records by index, validated against this grid."""
        loaded: Dict[int, Dict[str, Any]] = {}
        if not self.cells_dir.is_dir():
            return loaded
        for path in sorted(self.cells_dir.glob("*.json")):
            try:
                stub = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue  # torn/foreign file: recompute that cell
            if (
                stub.get("format") != CELL_FORMAT
                or stub.get("version") != SWEEP_VERSION
                or stub.get("grid_digest") != self.grid_digest
            ):
                continue
            loaded[stub["index"]] = stub
        return loaded

    def checkpointed_cells(self) -> int:
        """How many cells of *this* grid already have stubs on disk."""
        return len(self._load_stubs())

    # -- running ---------------------------------------------------------
    def run(
        self,
        resume: bool = False,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Run (or continue) the sweep; return a status document.

        With ``limit`` the run stops after at most that many *newly
        computed* cells (checkpointing each), which is how tests and
        operators split a long sweep into bounded slices.  The returned
        document has ``complete`` plus progress counters; when complete
        it also carries the assembled ``artifact``.
        """
        cells = self.grid.cells()
        existing_grid = None
        if self._grid_path().exists():
            try:
                existing_grid = json.loads(
                    self._grid_path().read_text(encoding="utf-8")
                )
            except ValueError:
                existing_grid = None
        if existing_grid is not None and existing_grid.get("digest") != (
            self.grid_digest
        ):
            raise ValueError(
                "checkpoint directory belongs to a different grid "
                f"(found {existing_grid.get('digest')!r:.20}..., expected "
                f"{self.grid_digest[:12]}...); use a fresh directory"
            )
        stubs = self._load_stubs()
        if stubs and not resume:
            raise ValueError(
                f"checkpoint directory already holds {len(stubs)} completed "
                "cell(s) for this grid; pass resume=True (CLI: --resume) to "
                "continue, or use a fresh directory"
            )
        self._write_grid_doc()

        pending: List[CellState] = []
        for cell in cells:
            stub = stubs.get(cell.index)
            if stub is not None:
                cell.record = stub["record"]
            else:
                pending.append(cell)
        if limit is not None:
            pending = pending[: max(limit, 0)]

        computed = self._run_pending(pending)

        done = sum(1 for cell in cells if cell.record is not None)
        status: Dict[str, Any] = {
            "grid": self.grid.name,
            "grid_digest": self.grid_digest,
            "cells": len(cells),
            "resumed": len(stubs),
            "computed": computed,
            "done": done,
            "complete": done == len(cells),
        }
        if status["complete"]:
            status["artifact"] = self.assemble_artifact(cells)
        return status

    def _run_pending(self, pending: List[CellState]) -> int:
        """Execute pending cells, checkpointing as each one completes."""
        from ..engine.jobs import JobSpec
        from ..engine.serialize import digest

        if not pending:
            return 0
        by_index = {cell.index: cell for cell in pending}
        specs = []
        slot_to_cell: List[CellState] = []
        for cell in pending:
            payload = cell.payload(self.grid)
            self._payload_digests[cell.index] = digest(payload)
            specs.append(JobSpec("sweep", payload))
            slot_to_cell.append(cell)

        cell_delay = float(os.environ.get(CELL_DELAY_ENV, "0") or "0")

        def on_result(result) -> None:
            cell = slot_to_cell[result.index]
            if not result.ok:
                return  # surfaced by _value below; nothing to persist
            cell.record = result.value
            with obs.span(
                "sweep.cell",
                index=cell.index,
                k=cell.k,
                cache_hit=result.cache_hit,
            ):
                self._checkpoint_cell(
                    cell, self._payload_digests[cell.index]
                )
            if cell_delay > 0:
                time.sleep(cell_delay)

        with obs.span(
            "sweep.run",
            grid=self.grid.name,
            cells=len(pending),
        ):
            previous_progress = self.engine.progress
            self.engine.progress = on_result
            try:
                results = self.engine.run_jobs(specs)
            finally:
                self.engine.progress = previous_progress
        for result in results:
            if not result.ok:
                cell = by_index[slot_to_cell[result.index].index]
                raise RuntimeError(
                    f"sweep cell {cell.index} (k={cell.k}) failed: "
                    f"{result.error}"
                )
        return len(pending)

    # -- escalation ------------------------------------------------------
    def escalate(self, escalation: int = 1) -> int:
        """Re-run every checkpointed ``budget`` cell at a doubled budget.

        Uses the ``sweep_resume`` engine job kind (content-addressed
        separately from the base cells) and overwrites the escalated
        cells' stubs.  Returns how many cells were escalated.
        """
        from ..engine.jobs import JobSpec
        from ..engine.serialize import digest

        cells = self.grid.cells()
        stubs = self._load_stubs()
        targets: List[CellState] = []
        for cell in cells:
            stub = stubs.get(cell.index)
            if stub is None:
                continue
            record = stub["record"]
            solve = record.get("solve") if isinstance(record, dict) else None
            if solve and solve.get("verdict") == "budget":
                cell.record = record
                targets.append(cell)
        if not targets:
            return 0
        specs = []
        for cell in targets:
            payload = cell.payload(self.grid) + (escalation,)
            self._payload_digests[cell.index] = digest(
                cell.payload(self.grid)
            )
            specs.append(JobSpec("sweep_resume", payload))
        results = self.engine.run_jobs(specs)
        for cell, result in zip(targets, results):
            if not result.ok:
                raise RuntimeError(
                    f"sweep escalation for cell {cell.index} failed: "
                    f"{result.error}"
                )
            cell.record = result.value
            self._checkpoint_cell(cell, self._payload_digests[cell.index])
        return len(targets)

    # -- artifact --------------------------------------------------------
    def assemble_artifact(
        self, cells: Optional[List[CellState]] = None
    ) -> Dict[str, Any]:
        """The canonical landscape artifact for a fully swept grid."""
        if cells is None:
            cells = self.grid.cells()
            stubs = self._load_stubs()
            for cell in cells:
                stub = stubs.get(cell.index)
                if stub is not None:
                    cell.record = stub["record"]
        missing = [cell.index for cell in cells if cell.record is None]
        if missing:
            raise ValueError(
                f"cannot assemble artifact: {len(missing)} cell(s) "
                f"incomplete (first missing index {missing[0]})"
            )
        records = [cell.record for cell in cells]
        return {
            "format": ARTIFACT_FORMAT,
            "version": SWEEP_VERSION,
            "grid": self.grid.to_doc(),
            "grid_digest": self.grid_digest,
            "cells": records,
            "summary": summarize_records(records),
        }

    def write_artifact(self, path) -> bytes:
        """Assemble and write the artifact (canonical bytes); returns them."""
        data = _canon_bytes(self.assemble_artifact())
        _atomic_write(Path(path), data)
        return data


def summarize_records(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate counters over cell records (deterministic, JSON-safe)."""
    records = list(records)
    adversaries = {
        tuple(tuple(live) for live in record["live_sets"])
        for record in records
    }
    verdicts: Dict[str, int] = {
        "solvable": 0,
        "unsolvable": 0,
        "budget": 0,
        "skipped": 0,
    }
    alphas = set()
    nodes_total = 0
    for record in records:
        solve = record.get("solve")
        if solve is None:
            verdicts["skipped"] += 1
        else:
            verdicts[solve["verdict"]] += 1
            nodes_total += solve.get("nodes", 0)
        if record.get("alpha_digest"):
            alphas.add(record["alpha_digest"])
    fair_cells = sum(1 for record in records if record["fair"])
    return {
        "cells": len(records),
        "adversaries": len(adversaries),
        "fair_cells": fair_cells,
        "verdicts": verdicts,
        "distinct_alphas_fair": len(alphas),
        "solve_nodes_total": nodes_total,
    }


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------
#: Named grids: the CI smoke grid (small, fast, exercises fair +
#: unfair + budget paths) and the committed n=4 sampled landscape.
GRID_PRESETS: Dict[str, GridSpec] = {
    "n3-smoke": GridSpec(
        name="n3-smoke",
        n=3,
        source="sample",
        sample_count=6,
        seed=7,
        ks=(1, 2),
        budget=5000,
        split_retries=1,
    ),
    "n4-sampled": GridSpec(
        name="n4-sampled",
        n=4,
        source="sample",
        sample_count=24,
        seed=11,
        ks=(1, 2, 3, 4),
        budget=20000,
        split_retries=1,
    ),
}

"""Structure-shared, id-interned complexes and streaming subdivision.

:class:`~repro.topology.complex.SimplicialComplex` stores every simplex
as a ``frozenset`` of vertex objects and materializes the whole face
poset on demand — for ``Chr^m s`` at 4-5 processes that is tens of
thousands of container objects, each paying hash-table overhead per
member pointer.  :class:`CompactComplex` keeps the same combinatorial
content in three flat pieces:

* a **vertex table**: each distinct vertex object appears exactly once,
  at a dense integer id assigned in :func:`~repro.topology.simplex.
  vertex_key` order (the library-wide structural order, so the layout
  is deterministic across runs, platforms and hash seeds);
* **per-dimension facet arrays**: the facets of dimension ``d`` are one
  ``array('q')`` of ids with stride ``d + 1``, each facet's ids
  ascending and the facets sorted lexicographically — no per-facet
  container objects at all;
* nothing else.  Faces are enumerated on demand from the facet arrays;
  the closure is never stored.

This is the dense-interning idiom of :mod:`repro.solver.interning`
applied to the topology layer: intern once, then work in integers.

:func:`stream_chr_facets` is the second half of the story: the facets
of ``Chr^m K`` are in bijection with ``m``-fold nested ordered set
partitions, so they can be *streamed* depth-first — one facet of the
result live at a time — instead of materializing each intermediate
``Chr^i K`` in full.  ``compact_chr`` folds that stream straight into a
:class:`CompactComplex`.
"""

from __future__ import annotations

import sys
from array import array
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Tuple

from ..topology.chromatic import ChromaticComplex, standard_simplex
from ..topology.complex import SimplicialComplex
from ..topology.enumeration import ordered_set_partitions, partition_to_chr_facet
from ..topology.simplex import Simplex, Vertex, vertex_key

__all__ = [
    "CompactComplex",
    "compact_census",
    "compact_chr",
    "deep_sizeof",
    "stream_chr_facets",
]


class CompactComplex:
    """A finite simplicial complex in id-interned, array-packed form.

    Construct with :meth:`from_facets` (any iterable of vertex
    iterables; non-maximal inputs are absorbed) or :meth:`from_complex`
    (adapter from the classic types).  Instances are immutable and
    canonical: two runs building the same complex — in any input order
    — produce identical vertex tables and facet arrays.
    """

    __slots__ = ("_vertices", "_ids", "_facets_by_dim", "_facet_count")

    def __init__(
        self,
        vertices: List[Vertex],
        ids: Dict[Vertex, int],
        facets_by_dim: Dict[int, "array[int]"],
    ):
        self._vertices = vertices
        self._ids = ids
        self._facets_by_dim = facets_by_dim
        self._facet_count = sum(
            len(packed) // (d + 1) for d, packed in facets_by_dim.items()
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_facets(cls, facets: Iterable[Iterable[Vertex]]) -> "CompactComplex":
        """Intern a stream of candidate facets (their downward closure).

        The stream is consumed one simplex at a time; only the facet
        id-tuples and the vertex table are retained, so building from
        :func:`stream_chr_facets` never holds the naive complex.
        """
        ids: Dict[Vertex, int] = {}
        vertices: List[Vertex] = []
        seen: set = set()
        candidates: List[Tuple[int, ...]] = []
        for facet in facets:
            member_ids = set()
            for vertex in facet:
                vid = ids.get(vertex)
                if vid is None:
                    vid = len(vertices)
                    ids[vertex] = vid
                    vertices.append(vertex)
                member_ids.add(vid)
            if not member_ids:
                continue
            packed = tuple(sorted(member_ids))
            if packed not in seen:
                seen.add(packed)
                candidates.append(packed)

        # Canonical ids: re-map so id order equals vertex_key order.
        order = sorted(range(len(vertices)), key=lambda i: vertex_key(vertices[i]))
        remap = [0] * len(vertices)
        for new_id, old_id in enumerate(order):
            remap[old_id] = new_id
        vertices = [vertices[old_id] for old_id in order]
        ids = {vertex: i for i, vertex in enumerate(vertices)}
        candidates = [
            tuple(sorted(remap[vid] for vid in packed)) for packed in candidates
        ]

        # Absorb non-maximal candidates (mirrors SimplicialComplex).
        candidates.sort(key=len, reverse=True)
        facet_sets: List[frozenset] = []
        kept: List[Tuple[int, ...]] = []
        for packed in candidates:
            as_set = frozenset(packed)
            if not any(as_set <= other for other in facet_sets):
                facet_sets.append(as_set)
                kept.append(packed)

        facets_by_dim: Dict[int, "array[int]"] = {}
        for d in sorted({len(p) - 1 for p in kept}):
            of_dim = sorted(p for p in kept if len(p) - 1 == d)
            packed_array = array("q")
            for facet_tuple in of_dim:
                packed_array.extend(facet_tuple)
            facets_by_dim[d] = packed_array
        return cls(vertices, ids, facets_by_dim)

    @classmethod
    def from_complex(cls, K) -> "CompactComplex":
        """Adapter from :class:`SimplicialComplex` / :class:`ChromaticComplex`."""
        return cls.from_facets(K.facets)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def vertex_table(self) -> List[Vertex]:
        """The interned vertices, in canonical (vertex_key) id order."""
        return list(self._vertices)

    def id_of(self, vertex: Vertex) -> int:
        return self._ids[vertex]

    @property
    def n_vertices(self) -> int:
        return len(self._vertices)

    @property
    def n_facets(self) -> int:
        return self._facet_count

    @property
    def dimension(self) -> int:
        if not self._facets_by_dim:
            return -1
        return max(self._facets_by_dim)

    def facet_ids(self) -> Iterator[Tuple[int, ...]]:
        """All facets as ascending id-tuples, dimension then lex order."""
        for d in sorted(self._facets_by_dim):
            packed = self._facets_by_dim[d]
            stride = d + 1
            for start in range(0, len(packed), stride):
                yield tuple(packed[start : start + stride])

    def facets(self) -> Iterator[Simplex]:
        """All facets as vertex frozensets (materialized on demand)."""
        for packed in self.facet_ids():
            yield frozenset(self._vertices[vid] for vid in packed)

    def __len__(self) -> int:
        return self._facet_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompactComplex):
            return NotImplemented
        return set(self.facets()) == set(other.facets())

    def __repr__(self) -> str:
        return (
            f"CompactComplex(dim={self.dimension}, "
            f"vertices={self.n_vertices}, facets={self.n_facets})"
        )

    # ------------------------------------------------------------------
    # Census
    # ------------------------------------------------------------------
    def f_vector(self) -> List[int]:
        """Simplex counts per dimension, computed without storing the closure.

        Faces are enumerated as id-tuples into one transient set of int
        tuples — far cheaper than the nested-frozenset closure the naive
        representation materializes (and discarded on return).
        """
        from itertools import combinations

        if not self._facets_by_dim:
            return []
        seen: set = set()
        counts = [0] * (self.dimension + 1)
        for packed in self.facet_ids():
            for size in range(1, len(packed) + 1):
                for combo in combinations(packed, size):
                    if combo not in seen:
                        seen.add(combo)
                        counts[size - 1] += 1
        return counts

    def n_simplices(self) -> int:
        return sum(self.f_vector())

    def memory_bytes(self) -> int:
        """Deep size of this representation (vertex table + id arrays)."""
        total = deep_sizeof(self._vertices)
        total += sum(sys.getsizeof(a) for a in self._facets_by_dim.values())
        total += sys.getsizeof(self._facets_by_dim)
        # The id lookup dict is a derived index over the same objects;
        # count its container overhead but not the (shared) keys.
        total += sys.getsizeof(self._ids)
        return total

    # ------------------------------------------------------------------
    # Round trips
    # ------------------------------------------------------------------
    def to_simplicial(self) -> SimplicialComplex:
        """Rebuild the classic facet-set representation."""
        return SimplicialComplex(self.facets())

    def to_chromatic(self) -> ChromaticComplex:
        """Rebuild a chromatic complex (facets must be rainbow)."""
        return ChromaticComplex(self.facets())


# ----------------------------------------------------------------------
# Streaming subdivision
# ----------------------------------------------------------------------
def stream_chr_facets(
    base_facets: Iterable[Iterable[Vertex]], rounds: int
) -> Iterator[FrozenSet[Vertex]]:
    """Stream the facets of ``Chr^m K`` from the facets of ``K``.

    Facets are produced depth-first: the recursion materializes one
    chain of nested ordered set partitions at a time, so peak memory is
    the recursion depth times one facet — never an intermediate
    ``Chr^i K``.  The stream enumerates each facet of the result exactly
    once (facets of a subdivision are interior to exactly one base
    facet) in a deterministic order.
    """
    if rounds < 0:
        raise ValueError("subdivision depth must be non-negative")

    def descend(facet: FrozenSet[Vertex], depth: int) -> Iterator[FrozenSet[Vertex]]:
        if depth == 0:
            yield facet
            return
        for partition in ordered_set_partitions(facet):
            yield from descend(partition_to_chr_facet(partition), depth - 1)

    for base in base_facets:
        yield from descend(frozenset(base), rounds)


def compact_chr(n: int, m: int) -> CompactComplex:
    """``Chr^m s`` on ``n`` processes, built by streaming into interned form."""
    base = standard_simplex(n)
    return CompactComplex.from_facets(stream_chr_facets(base.facets, m))


# ----------------------------------------------------------------------
# Memory accounting
# ----------------------------------------------------------------------
def deep_sizeof(obj: Any) -> int:
    """Recursive ``sys.getsizeof`` with sharing-aware (by-id) dedup.

    Shared sub-objects — interned vertices, nested carrier frozensets —
    are counted once, so the measurement rewards structure sharing the
    same way the process's heap does.  Supports the container types the
    topology layer uses; unknown leaf types count their shallow size.
    """
    seen: set = set()
    stack = [obj]
    total = 0
    while stack:
        current = stack.pop()
        oid = id(current)
        if oid in seen:
            continue
        seen.add(oid)
        total += sys.getsizeof(current)
        if isinstance(current, dict):
            stack.extend(current.keys())
            stack.extend(current.values())
        elif isinstance(current, (list, tuple, set, frozenset)):
            stack.extend(current)
    return total


def compact_census(K) -> Dict[str, Any]:
    """Side-by-side census of a complex in naive vs interned form.

    ``K`` is a :class:`SimplicialComplex` or :class:`ChromaticComplex`;
    the naive measurement covers the fully materialized face poset (the
    cost the classic representation actually pays once ``simplices`` is
    touched), the interned one covers a :class:`CompactComplex` holding
    the same facets.
    """
    compact = CompactComplex.from_complex(K)
    naive_bytes = deep_sizeof(frozenset(K.simplices))
    interned_bytes = compact.memory_bytes()
    return {
        "vertices": compact.n_vertices,
        "facets": compact.n_facets,
        "simplices": compact.n_simplices(),
        "dimension": compact.dimension,
        "f_vector": compact.f_vector(),
        "naive_bytes": naive_bytes,
        "interned_bytes": interned_bytes,
        "compression_ratio": round(naive_bytes / max(interned_bytes, 1), 2),
    }

"""Adversarial test doubles: a shard proxy that doctors certificates.

The fleet's trust model — *replicas verify, never trust* — is only
worth committing to if the repository can demonstrate it against a
genuinely dishonest shard.  :class:`TamperingShardProxy` is that shard:
it forwards every request to a real upstream shard verbatim, but
rewrites the ``value`` of successful ``certify`` responses before
relaying them (default doctoring: overwrite the statement's claimed
task digest, which breaks the witness-to-statement binding the
independent checker recomputes).  Everything else — ping, stats,
registration — passes through untouched, so the proxy registers as a
perfectly healthy shard.

This mirrors the paper's own methodology: an adversary is a first-class
object you enumerate schedules against, not an afterthought.  Tests,
the CI fleet smoke and ``BENCH_fleet.json`` all use this proxy to pin
the committed guarantee that a doctored certificate is rejected at the
edge and the query re-routes to an honest shard.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Optional, Tuple

from ..service.protocol import MAX_LINE_BYTES

Doctor = Callable[[Dict[str, Any]], Dict[str, Any]]


def doctor_statement_digest(cert: Dict[str, Any]) -> Dict[str, Any]:
    """Default doctoring: forge the statement's claimed task digest."""
    doctored = json.loads(json.dumps(cert))  # deep copy, JSON-safe
    statement = doctored.get("statement")
    if isinstance(statement, dict):
        statement["task_digest"] = "0" * 64
    return doctored


class TamperingShardProxy:
    """A wire-level man-in-the-middle shard for adversarial tests."""

    def __init__(
        self,
        upstream: Tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        doctor: Doctor = doctor_statement_digest,
    ):
        self.upstream = upstream
        self.host = host
        self.port = port
        self.doctor = doctor
        self.tampered = 0
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------
    async def start(self) -> "TamperingShardProxy":
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # One upstream connection per client connection: request order
        # is preserved, so forwarding line-by-line keeps id matching
        # trivial even with pipelined clients.
        try:
            up_reader, up_writer = await asyncio.open_connection(
                *self.upstream, limit=MAX_LINE_BYTES
            )
        except OSError:
            writer.close()
            return
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                up_writer.write(line)
                await up_writer.drain()
                response_line = await up_reader.readline()
                if not response_line:
                    break
                writer.write(self._maybe_tamper(response_line))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Loop teardown while relaying; a test double has nothing
            # to unwind, so end the connection task quietly.
            pass
        finally:
            up_writer.close()
            writer.close()

    def _maybe_tamper(self, response_line: bytes) -> bytes:
        try:
            response = json.loads(response_line)
        except ValueError:
            return response_line
        if not (
            isinstance(response, dict)
            and response.get("ok")
            and response.get("kind") == "certify"
        ):
            return response_line
        from ..engine.serialize import deserialize, serialize

        try:
            cert = deserialize(response["value"])
            response["value"] = serialize(self.doctor(cert))
        except Exception:
            return response_line
        self.tampered += 1
        return (
            json.dumps(
                response, sort_keys=True, separators=(",", ":"),
                ensure_ascii=True,
            ).encode("utf-8")
            + b"\n"
        )

"""The sharded service fleet: router, shards, cert-verified replicas.

``repro.fleet`` promotes the single-process query service
(:mod:`repro.service`) to a horizontally scaled tier with an explicit
trust boundary:

* :mod:`~repro.fleet.hashring` — consistent hashing of *statement
  digests* onto shards, so identical queries always land where their
  coalescing window and memcache slice live;
* :mod:`~repro.fleet.admission` — per-tenant token buckets and
  priority lanes (``interactive`` > ``batch`` > ``sweep``), rejections
  surfaced as the protocol's existing typed ``overloaded`` error;
* :mod:`~repro.fleet.router` — the front door: admission, routing,
  failover and ring re-hash when a shard drains;
* :mod:`~repro.fleet.replica` — edge replicas that serve certificates
  but validate every one with the independent stdlib-only checker
  before returning it (verify, never trust), re-routing around shards
  that produce bad certificates;
* :mod:`~repro.fleet.shards` — registration handshake (protocol
  version + memcache sanity check) and pipelined upstream links;
* :mod:`~repro.fleet.launcher` — shard subprocesses, background
  harnesses and the ``repro fleet`` supervisor;
* :mod:`~repro.fleet.loadgen` — the deterministic load generator
  behind ``repro loadgen`` and ``BENCH_fleet.json``;
* :mod:`~repro.fleet.chaos` — adversarial doubles (a certificate-
  doctoring shard proxy) that keep the trust model honest.

Entry points: ``python -m repro fleet`` and ``python -m repro loadgen``.
See ``docs/fleet.md`` for the topology and trust model.
"""

from .admission import (
    DEFAULT_LANE,
    DEFAULT_TENANT,
    LANE_CAPACITY_FRACTION,
    AdmissionController,
    Decision,
    TokenBucket,
)
from .chaos import TamperingShardProxy, doctor_statement_digest
from .hashring import DEFAULT_VNODES, HashRing, statement_digest
from .launcher import (
    BackgroundComponent,
    FleetSupervisor,
    ShardProcess,
    launch_shards,
    spawn_shard,
    stop_shards,
)
from .loadgen import (
    LoadReport,
    chr_mix,
    classify_mix,
    fixed_service_time_mix,
    run_load,
)
from .replica import REPLICA_KINDS, EdgeReplica
from .router import FleetRouter
from .shards import (
    RegistrationError,
    ShardDown,
    ShardInfo,
    ShardLink,
    register_shard,
)

__all__ = [
    "AdmissionController",
    "BackgroundComponent",
    "DEFAULT_LANE",
    "DEFAULT_TENANT",
    "DEFAULT_VNODES",
    "Decision",
    "EdgeReplica",
    "FleetRouter",
    "FleetSupervisor",
    "HashRing",
    "LANE_CAPACITY_FRACTION",
    "LoadReport",
    "REPLICA_KINDS",
    "RegistrationError",
    "ShardDown",
    "ShardInfo",
    "ShardLink",
    "ShardProcess",
    "TamperingShardProxy",
    "TokenBucket",
    "chr_mix",
    "classify_mix",
    "doctor_statement_digest",
    "fixed_service_time_mix",
    "launch_shards",
    "register_shard",
    "run_load",
    "spawn_shard",
    "statement_digest",
    "stop_shards",
]

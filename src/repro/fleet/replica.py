"""Edge replicas: serve certificates, verify them, never trust the wire.

An :class:`EdgeReplica` is the fleet's untrusted-tier answer to scale:
it forwards ``certify`` queries to the shard that owns the statement,
but before returning anything it re-validates the certificate with the
independent stdlib-only checker (:mod:`repro.certify.checker`) — the
trusted base built in PR 3 precisely so a tier that did *not* run the
search can still know the verdict is right.  The trust model is:

* a replica **verifies, never trusts** — every certificate that leaves
  a replica passed the checker *in the replica's own process*;
* a shard that produces an invalid certificate is treated as faulty:
  the incident is recorded, the query re-routes to the next shard in
  the statement's preference order, and that answer is verified too;
* if no shard produces a valid certificate the replica returns the
  typed ``verification_failed`` error rather than any unverified bytes.

On success the replica returns the shard's value text *byte-identical*
(it re-serializes nothing), so replica responses remain interchangeable
with shard and direct-engine responses.

``check`` queries are answered locally — the replica owns a checker, a
shard round-trip would add latency and subtract nothing.  All other
kinds belong on the router; the replica rejects them with
``unknown_kind`` so a misconfigured client fails loud, not unverified.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..service.metrics import Metrics
from ..service.protocol import (
    ProtocolError,
    Request,
    query_response,
)
from .base import FleetNode, span
from .hashring import DEFAULT_VNODES, HashRing, statement_digest
from .router import MAX_INCIDENTS
from .shards import ShardDown, ShardInfo, ShardLink, register_shard

#: Query kinds a replica serves.  Everything else routes via the router.
REPLICA_KINDS = frozenset({"certify", "check"})


def _check_cert_text(value_text: str) -> Tuple[Dict[str, Any], str]:
    """Decode + independently check one wire certificate (worker thread).

    Returns ``(report_dict, verdict)``; decode failures count as an
    invalid certificate (reason ``bad_format``), never an exception —
    a doctored wire value must not crash the edge.
    """
    from ..certify.checker import check
    from ..engine.serialize import deserialize

    try:
        cert = deserialize(value_text)
    except Exception as exc:
        return (
            {
                "valid": False,
                "kind": "unknown",
                "verdict": "invalid",
                "reason": "bad_format",
                "detail": f"undecodable certificate: {exc}",
            },
            "invalid",
        )
    report = check(cert)
    return report.to_dict(), report.verdict


class EdgeReplica(FleetNode):
    """A cert-verified read tier in front of the shard ring."""

    role = "replica"

    def __init__(
        self,
        shard_addresses: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        vnodes: int = DEFAULT_VNODES,
        forward_timeout: Optional[float] = None,
        max_connections: int = 256,
        drain_grace: float = 10.0,
        metrics: Optional[Metrics] = None,
    ):
        super().__init__(
            host,
            port,
            max_connections=max_connections,
            drain_grace=drain_grace,
            metrics=metrics,
        )
        if not shard_addresses:
            raise ValueError("a replica needs at least one shard")
        self.shard_addresses = list(shard_addresses)
        self.forward_timeout = forward_timeout
        self.ring = HashRing(vnodes=vnodes)
        self.shards: Dict[str, ShardInfo] = {}
        self._links: Dict[str, ShardLink] = {}
        self.incidents: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    async def _on_start(self) -> None:
        for shard_host, shard_port in self.shard_addresses:
            info = await register_shard(shard_host, shard_port)
            link = await ShardLink(info).connect()
            self.shards[info.node_id] = info
            self._links[info.node_id] = link
            self.ring.add(info.node_id)

    async def _on_drain(self) -> None:
        for link in self._links.values():
            await link.close()

    def _record_incident(self, node_id: str, reason: str, detail: str) -> None:
        self.incidents.append(
            {"kind": "bad_certificate", "shard": node_id, "reason": reason,
             "detail": detail}
        )
        del self.incidents[:-MAX_INCIDENTS]

    # ------------------------------------------------------------------
    async def _handle_query(self, request: Request) -> Dict[str, Any]:
        if request.kind == "check":
            return await self._check_locally(request)
        if request.kind != "certify":
            raise ProtocolError(
                "unknown_kind",
                f"replicas serve certificate traffic only "
                f"({sorted(REPLICA_KINDS)}); query the router for "
                f"{request.kind!r}",
            )
        return await self._certify_verified(request)

    async def _check_locally(self, request: Request) -> Dict[str, Any]:
        """``check`` without a shard round-trip: the replica *is* a
        checker.  Payload is ``(cert,)`` in canonical text."""
        from ..engine.serialize import SerializationError, deserialize, serialize

        loop = asyncio.get_running_loop()

        def run_check() -> str:
            from ..certify.checker import check

            try:
                payload = deserialize(request.payload_text)
            except (SerializationError, ValueError) as exc:
                raise ProtocolError(
                    "bad_payload", f"undecodable payload: {exc}"
                )
            if not isinstance(payload, tuple) or len(payload) != 1:
                raise ProtocolError(
                    "bad_payload", "check payload must be a 1-tuple (cert,)"
                )
            return serialize(check(payload[0]).to_dict())

        value_text = await loop.run_in_executor(None, run_check)
        self.metrics.inc("local_checks_total")
        return query_response(request.id, "check", value_text)

    async def _certify_verified(self, request: Request) -> Dict[str, Any]:
        key = statement_digest(request.kind, request.payload_text)
        fields: Dict[str, Any] = {
            "op": "query",
            "kind": "certify",
            "payload": request.payload_text,
        }
        if request.timeout is not None:
            fields["timeout"] = request.timeout
        if request.tenant is not None:
            fields["tenant"] = request.tenant
        if request.priority is not None:
            fields["priority"] = request.priority
        loop = asyncio.get_running_loop()
        rejections = 0
        for node_id in self.ring.preference(key):
            link = self._links.get(node_id)
            if link is None or link.down:
                continue
            try:
                if self.forward_timeout is not None:
                    response = await asyncio.wait_for(
                        link.request(fields), self.forward_timeout
                    )
                else:
                    response = await link.request(fields)
            except ShardDown:
                continue
            except asyncio.TimeoutError:
                raise ProtocolError(
                    "timeout",
                    f"shard {node_id} exceeded the replica's "
                    f"{self.forward_timeout}s forward timeout",
                )
            if not response.get("ok"):
                code = (response.get("error") or {}).get("code")
                if code in ("shutting_down", "overloaded"):
                    continue  # try the next shard
                response["id"] = request.id
                return response  # a typed per-request error; pass through
            with span("fleet.verify", shard=node_id) as verify_span:
                report, verdict = await loop.run_in_executor(
                    None, _check_cert_text, response.get("value", "")
                )
                verify_span.set_attr("valid", report["valid"])
                verify_span.set_attr("verdict", verdict)
            if report["valid"]:
                self.metrics.inc("certs_verified_total")
                if rejections:
                    self.metrics.inc("certs_rerouted_total")
                response["id"] = request.id
                # ``verified`` is an additive response field: proof the
                # edge ran the checker, ignored by older clients.
                response["verified"] = True
                return response
            rejections += 1
            self.metrics.inc("certs_rejected_total")
            self._record_incident(
                node_id, report.get("reason", "invalid"),
                report.get("detail", ""),
            )
        if rejections:
            raise ProtocolError(
                "verification_failed",
                f"no shard produced a certificate the edge checker "
                f"accepts ({rejections} rejected)",
            )
        raise ProtocolError(
            "shutting_down", "no shard available for this statement"
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["fleet"] = {
            "shards": sorted(self.shards),
            "ring_nodes": sorted(self.ring.nodes),
            "incidents": list(self.incidents),
            "certs_verified": self.metrics.counter("certs_verified_total"),
            "certs_rejected": self.metrics.counter("certs_rejected_total"),
        }
        return stats

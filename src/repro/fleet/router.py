"""The fleet's front door: admission control + consistent-hash routing.

A :class:`FleetRouter` accepts ordinary protocol-v1 connections and
forwards each ``query`` to the shard that owns its statement digest
(:func:`~repro.fleet.hashring.statement_digest` over the kind and the
canonical payload text — no decoding on the hot path).  Placement
stability is the point: identical statements always land on the same
shard, so shard-local in-flight coalescing still collapses duplicate
bursts and each shard's memcache slice stays hot for exactly the
statements it owns.

Before routing, every query passes the
:class:`~repro.fleet.admission.AdmissionController`: per-tenant token
buckets and priority-lane shedding, rejections surfaced as the typed
``overloaded`` error clients already understand (and now retry once
with backoff).

Failover: a shard that answers ``shutting_down`` or whose link drops is
*retired* — removed from the ring, its keys re-hashed onto the
survivors — and the query is retried on the next shard in the key's
preference order.  A shard-side ``overloaded`` answer tries the next
shard too, but does not retire the owner (the condition is transient
and placement stability is worth returning for).  Every routing
decision is an ``fleet.route`` span; admissions are ``fleet.admit``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..service.metrics import Metrics
from ..service.protocol import ProtocolError, Request
from .admission import AdmissionController
from .base import FleetNode, span
from .hashring import DEFAULT_VNODES, HashRing, statement_digest
from .shards import RegistrationError, ShardDown, ShardInfo, ShardLink, register_shard

#: Incidents kept for the stats op (oldest dropped first).
MAX_INCIDENTS = 64


class FleetRouter(FleetNode):
    """Stateless-per-query front tier over registered server shards."""

    role = "router"

    def __init__(
        self,
        shard_addresses: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: Optional[AdmissionController] = None,
        vnodes: int = DEFAULT_VNODES,
        forward_timeout: Optional[float] = None,
        max_connections: int = 256,
        drain_grace: float = 10.0,
        metrics: Optional[Metrics] = None,
    ):
        super().__init__(
            host,
            port,
            max_connections=max_connections,
            drain_grace=drain_grace,
            metrics=metrics,
        )
        if not shard_addresses:
            raise ValueError("a router needs at least one shard")
        self.shard_addresses = list(shard_addresses)
        self.admission = (
            admission if admission is not None else AdmissionController()
        )
        self.forward_timeout = forward_timeout
        self.ring = HashRing(vnodes=vnodes)
        self.shards: Dict[str, ShardInfo] = {}
        self._links: Dict[str, ShardLink] = {}
        self.incidents: List[Dict[str, Any]] = []
        self.rehashes = 0

    # ------------------------------------------------------------------
    # Shard membership
    # ------------------------------------------------------------------
    async def _on_start(self) -> None:
        for shard_host, shard_port in self.shard_addresses:
            await self.add_shard(shard_host, shard_port)

    async def add_shard(self, shard_host: str, shard_port: int) -> ShardInfo:
        """Register, link and ring-insert one shard (startup or later).

        Raises :class:`RegistrationError` when the shard fails the
        protocol-version / memcache sanity check.
        """
        info = await register_shard(shard_host, shard_port)
        link = await ShardLink(info).connect()
        self.shards[info.node_id] = info
        self._links[info.node_id] = link
        self.ring.add(info.node_id)
        self.metrics.inc("shards_registered_total")
        return info

    def _retire(self, node_id: str, reason: str) -> None:
        """Drop a shard from the ring; its keys re-hash to survivors."""
        if node_id not in self.ring:
            return
        self.ring.remove(node_id)
        self.rehashes += 1
        self.metrics.inc("shard_rehashes_total")
        self._record_incident("shard_retired", node_id, reason)
        link = self._links.get(node_id)
        if link is not None:
            task = asyncio.get_running_loop().create_task(link.close())
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)

    def _record_incident(self, kind: str, node_id: str, detail: str) -> None:
        self.incidents.append(
            {"kind": kind, "shard": node_id, "detail": detail}
        )
        del self.incidents[:-MAX_INCIDENTS]

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    async def _handle_query(self, request: Request) -> Dict[str, Any]:
        with span("fleet.admit") as admit_span:
            decision = self.admission.admit(request.tenant, request.priority)
            admit_span.set_attr("tenant", decision.tenant)
            admit_span.set_attr("lane", decision.lane)
            admit_span.set_attr("admitted", decision.admitted)
        if not decision.admitted:
            self.metrics.inc("admission_rejected_total")
            self.metrics.inc(f"admission_rejected_{decision.lane}_total")
            raise ProtocolError("overloaded", decision.reason)
        self.metrics.inc(f"lane_{decision.lane}_total")
        try:
            return await self._route(request)
        finally:
            self.admission.release(decision)

    def _forward_fields(self, request: Request) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "op": "query",
            "kind": request.kind,
            "payload": request.payload_text,
        }
        if request.timeout is not None:
            fields["timeout"] = request.timeout
        if request.tenant is not None:
            fields["tenant"] = request.tenant
        if request.priority is not None:
            fields["priority"] = request.priority
        return fields

    async def _route(self, request: Request) -> Dict[str, Any]:
        key = statement_digest(request.kind, request.payload_text)
        fields = self._forward_fields(request)
        with span("fleet.route", kind=request.kind) as route_span:
            attempts = 0
            preference = self.ring.preference(key)
            route_span.set_attr("owner", preference[0] if preference else None)
            for node_id in preference:
                link = self._links.get(node_id)
                if link is None or link.down:
                    self._retire(node_id, "link down")
                    continue
                attempts += 1
                try:
                    if self.forward_timeout is not None:
                        response = await asyncio.wait_for(
                            link.request(fields), self.forward_timeout
                        )
                    else:
                        response = await link.request(fields)
                except ShardDown:
                    self._retire(node_id, "link closed mid-request")
                    continue
                except asyncio.TimeoutError:
                    raise ProtocolError(
                        "timeout",
                        f"shard {node_id} exceeded the router's "
                        f"{self.forward_timeout}s forward timeout",
                    )
                code = (
                    (response.get("error") or {}).get("code")
                    if not response.get("ok")
                    else None
                )
                if code == "shutting_down":
                    self._retire(node_id, "announced shutting_down")
                    continue
                if code == "overloaded":
                    # Transient: spill to the next preference without
                    # re-hashing the owner away.
                    self.metrics.inc("shard_overloaded_spills_total")
                    self._record_incident(
                        "shard_overloaded", node_id, "spilled to next shard"
                    )
                    continue
                route_span.set_attr("shard", node_id)
                route_span.set_attr("attempts", attempts)
                if attempts > 1:
                    self.metrics.inc("rerouted_queries_total")
                self.metrics.inc("forwarded_queries_total")
                response["id"] = request.id
                return response
            route_span.set_attr("failed", True)
            raise ProtocolError(
                "shutting_down",
                "no shard available for this statement "
                f"(tried {attempts} of {len(self.shards)} registered)",
            )

    # ------------------------------------------------------------------
    async def _on_drain(self) -> None:
        for link in self._links.values():
            await link.close()

    def stats(self) -> Dict[str, Any]:
        stats = super().stats()
        stats["fleet"] = {
            "shards": {
                node_id: {
                    "live": node_id in self.ring,
                    "memcache_capacity": info.memcache_capacity,
                }
                for node_id, info in sorted(self.shards.items())
            },
            "ring_nodes": sorted(self.ring.nodes),
            "rehashes": self.rehashes,
            "incidents": list(self.incidents),
        }
        stats["admission"] = self.admission.stats()
        return stats


__all__ = [
    "FleetRouter",
    "MAX_INCIDENTS",
    "RegistrationError",
    "ShardInfo",
]

"""Consistent hashing of statement digests onto server shards.

The router's one invariant is *placement stability*: every query for
the same statement must reach the same shard, because the shard tiers
that make the service fast — in-flight coalescing and the memcache LRU
— are shard-local.  A modulo placement would reshuffle almost every
statement whenever a shard joins or drains; the classic consistent-hash
ring moves only the keys owned by the departed shard.

Each shard is hashed onto the ring at ``vnodes`` pseudo-random points
(virtual nodes smooth the load split: with one point per shard the
arc lengths, and hence the load, are wildly uneven).  A key is owned by
the first shard point clockwise from the key's hash; the *preference
list* continues clockwise and yields each distinct shard once, which is
the order the router tries shards in when the owner is draining or a
replica rejects its certificate.

Keys and node positions share one hash (SHA-256 prefixes), so the ring
is deterministic across processes — a router restart computes the same
placement, and tests can assert ownership exactly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional

#: Virtual nodes per shard.  64 keeps the expected worst/best arc ratio
#: within ~2x for small fleets while the ring stays tiny (a few KiB).
DEFAULT_VNODES = 64


def _point(data: str) -> int:
    """A position on the ring: the first 8 bytes of SHA-256."""
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big"
    )


def statement_digest(kind: str, payload_text: str) -> str:
    """The routing identity of one query.

    Clients serialize payloads canonically (the engine codec), so the
    raw wire text *is* a canonical statement encoding: hashing it
    routes value-equal queries identically without decoding them.
    """
    return hashlib.sha256(
        f"repro.fleet.route:{kind}\n{payload_text}".encode("utf-8")
    ).hexdigest()


class HashRing:
    """A consistent-hash ring over named shards."""

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: List[int] = []  # sorted ring positions
        self._owners: Dict[int, str] = {}  # position -> node id
        self._nodes: List[str] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> List[str]:
        """Member node ids, in insertion order."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.append(node)
        for index in range(self.vnodes):
            position = _point(f"{node}#{index}")
            # A full-width SHA collision between distinct (node, index)
            # pairs is out of scope; ties within one node are harmless.
            if position in self._owners:
                continue
            bisect.insort(self._points, position)
            self._owners[position] = node

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.remove(node)
        keep = []
        for position in self._points:
            if self._owners[position] == node:
                del self._owners[position]
            else:
                keep.append(position)
        self._points = keep

    # ------------------------------------------------------------------
    def owner(self, key_digest: str) -> Optional[str]:
        """The shard owning a statement digest (None on an empty ring)."""
        preference = self.preference(key_digest, 1)
        return preference[0] if preference else None

    def preference(self, key_digest: str, count: Optional[int] = None) -> List[str]:
        """Distinct shards in ring order from the key's position.

        The first entry is the owner; subsequent entries are the
        failover order.  ``count`` truncates (None = every shard).
        """
        if not self._points:
            return []
        if count is None:
            count = len(self._nodes)
        start = bisect.bisect_right(self._points, _point(key_digest))
        seen: List[str] = []
        for offset in range(len(self._points)):
            position = self._points[(start + offset) % len(self._points)]
            node = self._owners[position]
            if node not in seen:
                seen.append(node)
                if len(seen) >= count:
                    break
        return seen

"""Shared asyncio scaffolding for fleet nodes (router, edge replica).

Routers and replicas speak the same wire surface a
:class:`~repro.service.server.ServiceServer` does — line-delimited
protocol v1 with the ``ping`` / ``stats`` / ``metrics`` ops answered
locally, the same minimal HTTP shim (``/healthz`` / ``/stats`` /
``/metrics``), the same graceful drain on SIGTERM — but their ``query``
op *forwards* instead of computing.  :class:`FleetNode` owns everything
except that forwarding decision, which subclasses implement in
:meth:`_handle_query`.

Keeping the surface identical is deliberate: every existing client,
probe and dashboard works against any tier of the fleet unchanged.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Dict, Optional, Set

from .. import obs
from ..service.metrics import Metrics
from ..service.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode_message,
    error_response,
    metrics_response,
    parse_request,
    ping_response,
    stats_response,
)

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ")


class FleetNode:
    """An asyncio line-protocol server whose queries are forwarded."""

    #: Human-readable tier name, used in stats and log lines.
    role = "fleet-node"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 256,
        drain_grace: float = 10.0,
        metrics: Optional[Metrics] = None,
    ):
        self.host = host
        self.port = port  # updated to the bound port after start()
        self.max_connections = max_connections
        self.drain_grace = drain_grace
        self.metrics = metrics if metrics is not None else Metrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._request_tasks: Set[asyncio.Task] = set()
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    async def _handle_query(self, request: Request) -> Dict[str, Any]:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        return {
            "server": {
                "role": self.role,
                "host": self.host,
                "port": self.port,
                "protocol_version": PROTOCOL_VERSION,
                "connections": len(self._connections),
                "draining": self._draining,
                "uptime_s": round(self.metrics.uptime(), 3),
            },
            "metrics": self.metrics.snapshot(),
        }

    async def _on_start(self) -> None:
        """Subclass hook run after the listener binds."""

    async def _on_drain(self) -> None:
        """Subclass hook run while draining, before connections close."""

    # ------------------------------------------------------------------
    # Lifecycle (mirrors ServiceServer)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        await self._on_start()

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, f"{self.role} not started"
        await self._stopped.wait()

    def request_drain(self) -> None:
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )

    async def drain(self) -> None:
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        self.metrics.inc("drains_total")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._request_tasks if not task.done()]
        if pending:
            _, still_pending = await asyncio.wait(
                pending, timeout=self.drain_grace
            )
            for task in still_pending:
                task.cancel()
        await self._on_drain()
        for writer in list(self._connections):
            writer.close()
        self._stopped.set()

    async def run(self, *, handle_signals: bool = True) -> None:
        await self.start()
        if handle_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_drain)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
        await self.wait_stopped()

    # ------------------------------------------------------------------
    # Connections (mirrors ServiceServer)
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        self.metrics.inc("connections_total")
        if len(self._connections) >= self.max_connections:
            self.metrics.inc("errors_overloaded_total")
            await self._write(
                writer,
                asyncio.Lock(),
                error_response(None, "overloaded", "connection limit reached"),
            )
            writer.close()
            return
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        first = True
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    self.metrics.inc("errors_bad_request_total")
                    await self._write(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            "bad_request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if first and line.startswith(_HTTP_METHODS):
                    await self._handle_http(line, reader, writer)
                    break
                first = False
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self._process_line(line)
        try:
            await self._write(writer, write_lock, response)
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        text = encode_message(response)
        async with write_lock:
            writer.write(text.encode("utf-8") + b"\n")
            await writer.drain()

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    async def _process_line(self, line: bytes) -> Dict[str, Any]:
        started = time.perf_counter()
        self.metrics.inc("requests_total")
        try:
            request = parse_request(line.decode("utf-8", errors="replace"))
        except ProtocolError as exc:
            self.metrics.inc(f"errors_{exc.code}_total")
            return error_response(None, exc.code, exc.message)
        self.metrics.inc(f"op_{request.op}_total")
        try:
            if request.op == "ping":
                response = ping_response(request.id)
            elif request.op == "stats":
                response = stats_response(request.id, self.stats())
            elif request.op == "metrics":
                response = metrics_response(
                    request.id, self.metrics.render_text()
                )
            else:
                if self._draining:
                    raise ProtocolError(
                        "shutting_down", f"{self.role} is draining"
                    )
                response = await self._handle_query(request)
        except ProtocolError as exc:
            response = error_response(request.id, exc.code, exc.message)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let a request kill the loop
            response = error_response(
                request.id, "internal", f"{type(exc).__name__}: {exc}"
            )
        if not response["ok"]:
            self.metrics.inc(f"errors_{response['error']['code']}_total")
        else:
            self.metrics.inc("responses_ok_total")
        self.metrics.observe("request", time.perf_counter() - started)
        return response

    # ------------------------------------------------------------------
    # HTTP shim (mirrors ServiceServer)
    # ------------------------------------------------------------------
    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "role": self.role,
            "protocol_version": PROTOCOL_VERSION,
        }

    async def _handle_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.inc("http_requests_total")
        try:
            method, path, _ = first_line.decode("ascii").split(" ", 2)
        except ValueError:
            method, path = "GET", "/"
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        status, content_type, body = "404 Not Found", "text/plain", "not found\n"
        if method in ("GET", "HEAD") and path == "/metrics":
            status, body = "200 OK", self.metrics.render_text()
        elif method in ("GET", "HEAD") and path == "/stats":
            status, content_type = "200 OK", "application/json"
            body = json.dumps(self.stats(), sort_keys=True) + "\n"
        elif method in ("GET", "HEAD") and path == "/healthz":
            status, content_type = "200 OK", "application/json"
            body = json.dumps(self._healthz(), sort_keys=True) + "\n"
        elif method == "POST" and path == "/query":
            raw = await reader.readexactly(min(content_length, MAX_LINE_BYTES))
            response = await self._process_line(raw)
            status, content_type = "200 OK", "application/json"
            body = encode_message(response) + "\n"
        payload = b"" if method == "HEAD" else body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(body.encode('utf-8'))}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


# Re-exported for subclasses' span usage; keeps fleet modules importing
# obs through one place so the NOOP fast path stays a single check.
span = obs.span

"""A deterministic multi-client load generator for service/fleet tiers.

``repro loadgen`` and ``BENCH_fleet.json`` share this module: a fixed
list of ``(kind, payload)`` queries is partitioned round-robin over
``clients`` blocking connections (real TCP, real protocol), each client
walks its slice ``cycles`` times, and the report aggregates exact
client-side latencies into rps / p50 / p99.

Two canonical mixes ship with it:

* :func:`fixed_service_time_mix` — distinct ``sleep`` jobs with a known
  per-query service time.  Aggregate throughput on this mix measures
  the serving architecture itself (dispatch concurrency, routing,
  batching) independent of host CPU count: a single asyncio service
  process is bounded by its one serial engine dispatch thread, a fleet
  of N shard processes is not.
* :func:`classify_mix` — distinct real adversary classifications
  (CPU-bound), for measuring compute scaling where core count allows.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..service.client import ServiceClient

Query = Tuple[str, tuple]


def fixed_service_time_mix(
    count: int, seconds: float, salt: str = "loadgen"
) -> List[Query]:
    """``count`` distinct sleep queries of ``seconds`` each.

    Tokens embed the salt so two runs (or two shard-count arms of one
    benchmark) never share cache entries.
    """
    return [
        ("sleep", (seconds, f"{salt}-{index}")) for index in range(count)
    ]


def classify_mix(count: int, n: int = 4, seed: int = 2024) -> List[Query]:
    """``count`` distinct adversary classifications (real CPU work)."""
    from ..sweep.driver import sample_adversaries

    return [
        ("classify", (adversary,))
        for adversary in sample_adversaries(n, seed, count)
    ]


def chr_mix(depths: Tuple[int, ...] = (1, 2)) -> List[Query]:
    """Subdivision queries (cache-friendly; exercises large values)."""
    return [("chr", (n, depth)) for n in (2, 3) for depth in depths]


@dataclass
class LoadReport:
    """Aggregated outcome of one load run (JSON-ready via ``to_dict``)."""

    queries: int
    ok: int
    errors: int
    retries: int
    wall_s: float
    rps: float
    p50_ms: float
    p99_ms: float
    mean_ms: float
    error_codes: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "ok": self.ok,
            "errors": self.errors,
            "retries": self.retries,
            "wall_s": round(self.wall_s, 4),
            "rps": round(self.rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "mean_ms": round(self.mean_ms, 3),
            "error_codes": dict(sorted(self.error_codes.items())),
        }


def _quantile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_load(
    host: str,
    port: int,
    queries: List[Query],
    *,
    clients: int = 8,
    cycles: int = 1,
    timeout: float = 120.0,
    tenant: Optional[str] = None,
    priority: Optional[str] = None,
    retries: int = 1,
) -> LoadReport:
    """Drive the queries through ``clients`` concurrent connections.

    Deterministic partition: client ``i`` owns ``queries[i::clients]``
    and walks that slice ``cycles`` times in order.  Every client
    connects first and fires on a shared barrier, so the measured
    window is all-load, no ramp.
    """
    if clients < 1 or cycles < 1:
        raise ValueError("clients and cycles must be >= 1")
    lock = threading.Lock()
    latencies: List[float] = []
    error_codes: Dict[str, int] = {}
    retried = [0]
    barrier = threading.Barrier(clients + 1)

    def worker(index: int) -> None:
        slice_ = queries[index::clients]
        try:
            client = ServiceClient(
                host,
                port,
                timeout=timeout,
                retries=retries,
                tenant=tenant,
                priority=priority,
            )
        except OSError:
            with lock:
                error_codes["connect"] = error_codes.get("connect", 0) + 1
            barrier.wait(timeout=timeout)
            return
        with client:
            barrier.wait(timeout=timeout)
            for _ in range(cycles):
                for kind, payload in slice_:
                    started = time.perf_counter()
                    try:
                        client.query(kind, payload)
                        elapsed = time.perf_counter() - started
                        with lock:
                            latencies.append(elapsed)
                    except Exception as exc:
                        code = getattr(exc, "code", type(exc).__name__)
                        with lock:
                            error_codes[code] = error_codes.get(code, 0) + 1
            with lock:
                retried[0] += client.retried

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=timeout)  # release the herd; clock from here
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    latencies.sort()
    total = len(latencies) + sum(error_codes.values())
    return LoadReport(
        queries=total,
        ok=len(latencies),
        errors=sum(error_codes.values()),
        retries=retried[0],
        wall_s=wall,
        rps=len(latencies) / wall if wall > 0 else 0.0,
        p50_ms=_quantile(latencies, 0.50) * 1000.0,
        p99_ms=_quantile(latencies, 0.99) * 1000.0,
        mean_ms=(sum(latencies) / len(latencies) * 1000.0)
        if latencies
        else 0.0,
        error_codes=error_codes,
    )

"""Admission control: per-tenant token buckets and priority lanes.

The fleet's front door decides *before* routing whether a query may
consume shard capacity.  Two independent mechanisms, both surfaced
through the protocol's existing typed ``overloaded`` error so clients
need no new failure path:

* **Per-tenant token buckets** — each tenant (the request's additive
  ``tenant`` field; absent = the shared ``"default"`` tenant) refills
  at ``rate`` tokens/second up to ``burst``.  One admitted query costs
  one token, so a tenant's sustained throughput is bounded at ``rate``
  while short bursts up to ``burst`` pass untouched.
* **Priority lanes with load shedding** — lanes are ordered
  ``interactive > batch > sweep`` (:data:`~repro.service.protocol.
  PRIORITIES`).  Each lane may only occupy a fraction of the router's
  in-flight capacity: ``sweep`` is shed once the router is half full
  and ``batch`` at three quarters, while ``interactive`` (the default
  for unlabeled v1 traffic) may use everything.  Under overload the
  cheap background work disappears first and interactive latency is
  protected — strict priority, implemented as nested capacity caps so
  no lane can starve by queueing.

Time is injected (``clock``) so tests drive refill deterministically.
All state is lock-protected: the router's event loop is single-threaded
but stats scrapes and tests may probe from other threads.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..service.protocol import PRIORITIES

#: Fraction of in-flight capacity each lane may occupy, keyed by lane.
#: ``interactive`` gets the full capacity; lower lanes are nested caps.
LANE_CAPACITY_FRACTION: Dict[str, float] = {
    "interactive": 1.00,
    "batch": 0.75,
    "sweep": 0.50,
}

#: Lane assumed when a request carries no ``priority`` field — v1
#: clients predate lanes and must not be penalized.
DEFAULT_LANE = "interactive"

#: Tenant assumed when a request carries no ``tenant`` field.
DEFAULT_TENANT = "default"


class TokenBucket:
    """A classic token bucket; not thread-safe (callers hold the lock)."""

    def __init__(self, rate: float, burst: float, now: float):
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_take(self, now: float) -> bool:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class Decision:
    """One admission verdict; ``reason`` is set only on rejection."""

    admitted: bool
    tenant: str
    lane: str
    reason: str = ""


class AdmissionController:
    """Token buckets + lane shedding in front of the router's capacity.

    Parameters
    ----------
    max_inflight:
        The router's total in-flight query capacity; lane caps are
        fractions of this number.
    rate / burst:
        Default per-tenant refill rate (tokens/second) and bucket depth.
    tenant_rates:
        Optional per-tenant ``(rate, burst)`` overrides.
    clock:
        Monotonic time source; injected by tests.
    """

    def __init__(
        self,
        *,
        max_inflight: int = 256,
        rate: float = 200.0,
        burst: float = 400.0,
        tenant_rates: Optional[Dict[str, tuple]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.rate = rate
        self.burst = burst
        self.tenant_rates = dict(tenant_rates or {})
        self.clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self._inflight = 0
        self._lane_inflight: Dict[str, int] = {lane: 0 for lane in PRIORITIES}
        self.admitted_total = 0
        self.rejected_rate: Dict[str, int] = {}
        self.rejected_lane: Dict[str, int] = {lane: 0 for lane in PRIORITIES}

    # ------------------------------------------------------------------
    def _bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self.tenant_rates.get(tenant, (self.rate, self.burst))
            bucket = self._buckets[tenant] = TokenBucket(rate, burst, now)
        return bucket

    def lane_capacity(self, lane: str) -> int:
        """In-flight slots the lane may occupy (at least 1)."""
        return max(1, int(self.max_inflight * LANE_CAPACITY_FRACTION[lane]))

    # ------------------------------------------------------------------
    def admit(
        self, tenant: Optional[str], priority: Optional[str]
    ) -> Decision:
        """Admit or reject one query; admitted queries hold one slot
        until the matching :meth:`release`."""
        tenant = tenant if tenant else DEFAULT_TENANT
        lane = priority if priority else DEFAULT_LANE
        now = self.clock()
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.rejected_lane[lane] += 1
                return Decision(
                    False, tenant, lane, f"router at capacity ({self.max_inflight} in flight)"
                )
            if self._inflight >= self.lane_capacity(lane):
                # The nested cap: this lane's share of the router is
                # spoken for, even though higher lanes may still enter.
                self.rejected_lane[lane] += 1
                return Decision(
                    False,
                    tenant,
                    lane,
                    f"lane {lane!r} shed at {self._inflight}/"
                    f"{self.lane_capacity(lane)} in-flight slots",
                )
            if not self._bucket(tenant, now).try_take(now):
                self.rejected_rate[tenant] = (
                    self.rejected_rate.get(tenant, 0) + 1
                )
                return Decision(
                    False,
                    tenant,
                    lane,
                    f"tenant {tenant!r} over its rate limit",
                )
            self._inflight += 1
            self._lane_inflight[lane] += 1
            self.admitted_total += 1
            return Decision(True, tenant, lane)

    def release(self, decision: Decision) -> None:
        """Return the slot an admitted decision holds (idempotence is
        the caller's responsibility — release exactly once)."""
        if not decision.admitted:
            return
        with self._lock:
            self._inflight -= 1
            self._lane_inflight[decision.lane] -= 1

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "lane_inflight": dict(self._lane_inflight),
                "lane_capacity": {
                    lane: self.lane_capacity(lane) for lane in PRIORITIES
                },
                "admitted_total": self.admitted_total,
                "rejected_rate": dict(sorted(self.rejected_rate.items())),
                "rejected_lane": dict(self.rejected_lane),
                "tenants": sorted(self._buckets),
            }

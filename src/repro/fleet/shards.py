"""Upstream shard descriptors, registration checks, pipelined links.

A *shard* is an ordinary :class:`~repro.service.server.ServiceServer`
process; the fleet talks to it over the same line protocol clients use.
This module owns the router/replica side of that conversation:

* :func:`register_shard` — the registration handshake: one ``ping``
  plus one ``stats`` round-trip, rejecting shards whose protocol
  version differs from ours or that report no memcache tier (a shard
  without a resident cache slice would silently turn the fleet's
  placement stability into pure overhead).
* :class:`ShardLink` — one persistent connection with *pipelining*:
  many requests in flight at once, responses matched to waiters by
  ``id``.  The lockstep clients in :mod:`repro.service.client` would
  serialize the router onto one upstream request at a time; the link
  is what lets a single router connection saturate a shard.

A link failure (EOF, reset) fails every pending waiter with
:class:`ShardDown`; the router treats that exactly like a
``shutting_down`` answer — drop the shard from the ring, re-route.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..service.protocol import MAX_LINE_BYTES, PROTOCOL_VERSION


class ShardDown(ConnectionError):
    """The shard's link died; pending and future requests must re-route."""


class RegistrationError(RuntimeError):
    """A shard failed the registration sanity check."""


@dataclass(frozen=True)
class ShardInfo:
    """Address and registration-time facts about one shard."""

    host: str
    port: int
    memcache_capacity: Optional[int] = None

    @property
    def node_id(self) -> str:
        return f"{self.host}:{self.port}"


class ShardLink:
    """A pipelined line-protocol connection to one shard."""

    def __init__(self, shard: ShardInfo):
        self.shard = shard
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._waiters: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._down = False

    @property
    def down(self) -> bool:
        return self._down

    # ------------------------------------------------------------------
    async def connect(self) -> "ShardLink":
        self._reader, self._writer = await asyncio.open_connection(
            self.shard.host, self.shard.port, limit=MAX_LINE_BYTES
        )
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        return self

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    response = json.loads(line)
                except ValueError:
                    continue
                waiter = self._waiters.pop(response.get("id"), None)
                if waiter is not None and not waiter.done():
                    waiter.set_result(response)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            self._fail_pending()

    def _fail_pending(self) -> None:
        self._down = True
        waiters, self._waiters = self._waiters, {}
        for waiter in waiters.values():
            if not waiter.done():
                waiter.set_exception(
                    ShardDown(f"shard {self.shard.node_id} link closed")
                )

    # ------------------------------------------------------------------
    async def request(self, fields: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request (``fields`` minus v/id) and await its
        response.  Safe to call concurrently from many tasks."""
        if self._down or self._writer is None:
            raise ShardDown(f"shard {self.shard.node_id} is down")
        self._next_id += 1
        request_id = self._next_id
        message = {"v": PROTOCOL_VERSION, "id": request_id}
        message.update(fields)
        waiter = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = waiter
        try:
            self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError) as exc:
            self._waiters.pop(request_id, None)
            self._fail_pending()
            raise ShardDown(
                f"shard {self.shard.node_id} write failed: {exc}"
            )
        return await waiter

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
        if self._writer is not None:
            self._writer.close()
        self._fail_pending()


async def register_shard(host: str, port: int) -> ShardInfo:
    """The registration handshake; raises :class:`RegistrationError`.

    One short-lived connection: ``ping`` proves the line protocol is
    spoken, ``stats`` exposes the shard's protocol version and memcache
    capacity (the satellite fields added for exactly this check).
    """
    try:
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
    except OSError as exc:
        raise RegistrationError(f"shard {host}:{port} unreachable: {exc}")
    try:
        for request_id, op in ((1, "ping"), (2, "stats")):
            writer.write(
                (
                    json.dumps(
                        {"v": PROTOCOL_VERSION, "id": request_id, "op": op}
                    )
                    + "\n"
                ).encode("utf-8")
            )
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise RegistrationError(
                    f"shard {host}:{port} closed during registration"
                )
            response = json.loads(line)
            if not response.get("ok"):
                raise RegistrationError(
                    f"shard {host}:{port} rejected {op}: "
                    f"{response.get('error')}"
                )
        server_stats = response["stats"].get("server", {})
        version = server_stats.get("protocol_version")
        if version != PROTOCOL_VERSION:
            raise RegistrationError(
                f"shard {host}:{port} speaks protocol {version!r}, "
                f"router speaks v{PROTOCOL_VERSION}"
            )
        capacity = server_stats.get("memcache_capacity")
        if not isinstance(capacity, int) or capacity < 1:
            raise RegistrationError(
                f"shard {host}:{port} reports no memcache tier "
                f"(capacity={capacity!r}); every shard must own a cache "
                "slice"
            )
        return ShardInfo(host=host, port=port, memcache_capacity=capacity)
    finally:
        writer.close()

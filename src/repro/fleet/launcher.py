"""Launching fleets: shard subprocesses, background nodes, supervisor.

Shards are real ``python -m repro serve`` *processes* — separate
interpreters, so N shards genuinely use N cores (threads would share
one GIL and one engine dispatch bottleneck).  :func:`spawn_shard` forks
one, waits for its stable "listening" line and returns a handle with
the bound port; SIGTERM later triggers the server's own graceful drain.

:class:`BackgroundComponent` runs any :class:`~repro.fleet.base.
FleetNode` (router, replica) on a daemon thread with its own event
loop — the test/bench harness idiom of
:class:`~repro.service.background.BackgroundServer`, generalized.

:class:`FleetSupervisor` is the ``repro fleet`` entry point: spawn the
shards, start replicas and router in-process, drain everything in
order (front door first, shards last) on SIGTERM.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .base import FleetNode

_LISTENING = re.compile(r"listening on ([\w.\-]+):(\d+)")


def _announce(text: str) -> None:
    """Default announcer: stdout with an explicit flush, so wrappers
    reading the fleet through a pipe see the listening line promptly."""
    print(text, flush=True)


def _subprocess_env() -> dict:
    """The child environment, with this ``repro`` importable."""
    import repro

    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


class ShardProcess:
    """One ``repro serve`` subprocess with a parsed bound address."""

    def __init__(self, process: subprocess.Popen, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    @property
    def node_id(self) -> str:
        return f"{self.host}:{self.port}"

    def terminate(self) -> None:
        """SIGTERM: the server drains in-flight work, then exits 0."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)

    def wait(self, timeout: float = 30.0) -> int:
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=10.0)

    def __enter__(self) -> "ShardProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()
        self.wait()


def spawn_shard(
    *,
    host: str = "127.0.0.1",
    memcache_size: int = 256,
    jobs: int = 1,
    no_cache: bool = True,
    cache_dir: Optional[str] = None,
    shared_cache: bool = False,
    window_ms: float = 2.0,
    extra_args: Sequence[str] = (),
    start_timeout: float = 60.0,
) -> ShardProcess:
    """Fork one shard on an ephemeral port; returns once it listens."""
    argv = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        "0",
        "--memcache-size",
        str(memcache_size),
        "--jobs",
        str(jobs),
        "--window-ms",
        str(window_ms),
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", cache_dir]
        if shared_cache:
            # Shards sharing one cache dir read warm artifacts out of
            # one mmap segment instead of deserializing per process.
            argv += ["--shared-cache"]
    elif no_cache:
        argv += ["--no-cache"]
    argv += list(extra_args)
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_subprocess_env(),
    )
    # The serve command prints its stable "listening on host:port" line
    # first; block until it appears (or the process dies).
    deadline_note = f"shard did not report a port within {start_timeout}s"
    line = ""
    try:
        while True:
            line = process.stdout.readline()
            if not line:
                raise RuntimeError(
                    "shard exited before listening: "
                    f"rc={process.poll()!r} last={line!r}"
                )
            match = _LISTENING.search(line)
            if match:
                return ShardProcess(
                    process, match.group(1), int(match.group(2))
                )
    except Exception:
        process.kill()
        raise RuntimeError(deadline_note)


def launch_shards(count: int, **options) -> List[ShardProcess]:
    """``count`` shards; tears down the already-spawned on any failure."""
    shards: List[ShardProcess] = []
    try:
        for _ in range(count):
            shards.append(spawn_shard(**options))
        return shards
    except Exception:
        for shard in shards:
            shard.terminate()
            shard.wait()
        raise


def stop_shards(shards: Sequence[ShardProcess]) -> None:
    for shard in shards:
        shard.terminate()
    for shard in shards:
        shard.wait()


class BackgroundComponent:
    """Run one fleet node's event loop on a daemon thread."""

    def __init__(self, node: FleetNode, *, start_timeout: float = 30.0):
        self.node = node
        self._start_timeout = start_timeout
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name=f"repro-{node.role}", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.node.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.node.wait_stopped()

    def start(self) -> "BackgroundComponent":
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise TimeoutError(f"{self.node.role} did not start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"{self.node.role} failed to start"
            ) from self._failure
        return self

    @property
    def host(self) -> str:
        return self.node.host

    @property
    def port(self) -> int:
        return self.node.port

    def stop(self) -> None:
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.node.request_drain)
        self._thread.join(timeout=self._start_timeout)

    def __enter__(self) -> "BackgroundComponent":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class FleetSupervisor:
    """``repro fleet``: shards as subprocesses, router+replicas in-process.

    Drain order on SIGTERM/SIGINT is front-to-back: the router and
    replicas stop accepting and finish their in-flight forwards, then
    the shards get SIGTERM and run their own graceful drain — so no
    query admitted before the signal is dropped by a tier behind it.
    """

    def __init__(
        self,
        *,
        shards: int = 2,
        replicas: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        replica_port: int = 0,
        shard_options: Optional[dict] = None,
        router_options: Optional[dict] = None,
        replica_options: Optional[dict] = None,
    ):
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.shard_count = shards
        self.replica_count = replicas
        self.host = host
        self.port = port
        self.replica_port = replica_port
        self.shard_options = dict(shard_options or {})
        self.router_options = dict(router_options or {})
        self.replica_options = dict(replica_options or {})
        self.shards: List[ShardProcess] = []
        self.router = None
        self.replicas: List = []

    async def run(self, *, handle_signals: bool = True, announce=_announce) -> None:
        from .replica import EdgeReplica
        from .router import FleetRouter

        loop = asyncio.get_running_loop()
        self.shards = await loop.run_in_executor(
            None, lambda: launch_shards(self.shard_count, **self.shard_options)
        )
        try:
            addresses = [shard.address for shard in self.shards]
            self.replicas = []
            for index in range(self.replica_count):
                replica = EdgeReplica(
                    addresses,
                    host=self.host,
                    # Ephemeral unless a base port is pinned.
                    port=(self.replica_port + index) if self.replica_port else 0,
                    **self.replica_options,
                )
                await replica.start()
                self.replicas.append(replica)
            self.router = FleetRouter(
                addresses,
                host=self.host,
                port=self.port,
                **self.router_options,
            )
            await self.router.start()
            # Stable, parseable announcement (smoke tests grep it).
            announce(
                "repro fleet listening "
                f"router={self.router.host}:{self.router.port} "
                "replicas="
                + (
                    ",".join(f"{r.host}:{r.port}" for r in self.replicas)
                    or "none"
                )
                + " shards="
                + ",".join(shard.node_id for shard in self.shards)
                + f" (shards={self.shard_count}, replicas={self.replica_count})",
            )
            if handle_signals:
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(signum, self.request_drain)
                    except NotImplementedError:  # pragma: no cover
                        pass
            waits = [self.router.wait_stopped()] + [
                replica.wait_stopped() for replica in self.replicas
            ]
            await asyncio.gather(*waits)
        finally:
            await loop.run_in_executor(None, lambda: stop_shards(self.shards))

    def request_drain(self) -> None:
        if self.router is not None:
            self.router.request_drain()
        for replica in self.replicas:
            replica.request_drain()

"""Machine-readable figure data: every reproduced figure as JSON.

Plotting and external comparison need the figures' *data*, not prose;
this module assembles one nested dictionary per figure (E1–E7) plus the
headline tables (E11, E15), all JSON-serializable.  The CLI's
``export`` command dumps it.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..adversaries import (
    agreement_function_of,
    build_catalogue,
    csize,
    figure5b_adversary,
    is_fair,
    k_concurrency_alpha,
    setcon,
    t_resilience_alpha,
)
from ..core import (
    concurrency_census,
    contention_complex,
    full_affine_task,
    r_affine,
    r_k_obstruction_free,
    r_t_resilient,
)
from ..tasks import minimal_set_consensus
from ..topology import chr_complex, fubini_number
from .stats import complex_census


def _census_json(K) -> Dict[str, Any]:
    census = complex_census(K)
    return {key: value for key, value in census.items()}


def figure1_data() -> Dict[str, Any]:
    return {
        "chr_s": _census_json(chr_complex(3, 1)),
        "chr2_s": _census_json(chr_complex(3, 2)),
        "fubini": [fubini_number(k) for k in range(6)],
        "r_1_res": _census_json(r_t_resilient(3, 1).complex),
        "r_t_res_family": {
            str(t): len(r_t_resilient(3, t).complex.facets)
            for t in range(3)
        },
    }


def figure2_data() -> Dict[str, Any]:
    rows = []
    for entry in build_catalogue(3):
        adversary = entry.adversary
        rows.append(
            {
                "name": entry.name,
                "live_sets": sorted(
                    sorted(live) for live in adversary.live_sets
                ),
                "superset_closed": adversary.is_superset_closed(),
                "symmetric": adversary.is_symmetric(),
                "fair": is_fair(adversary),
                "setcon": setcon(adversary),
                "csize": csize(adversary),
            }
        )
    return {"catalogue": rows}


def figure4_data() -> Dict[str, Any]:
    return {"cont2_f_vector": contention_complex(3).f_vector()}


def figure6_data() -> Dict[str, Any]:
    chr1 = chr_complex(3, 1)
    return {
        "one_obstruction_free": {
            str(level): count
            for level, count in concurrency_census(
                chr1, k_concurrency_alpha(3, 1)
            ).items()
        },
        "figure5b": {
            str(level): count
            for level, count in concurrency_census(
                chr1, agreement_function_of(figure5b_adversary())
            ).items()
        },
    }


def figure7_data() -> Dict[str, Any]:
    tasks = {
        "R_A(1-OF)": r_affine(k_concurrency_alpha(3, 1)),
        "R_A(2-OF)": r_affine(k_concurrency_alpha(3, 2)),
        "R_A(1-res)": r_affine(t_resilience_alpha(3, 1)),
        "R_A(fig5b)": r_affine(
            agreement_function_of(figure5b_adversary())
        ),
        "R_1-OF": r_k_obstruction_free(3, 1),
        "R_1-res": r_t_resilient(3, 1),
    }
    return {
        name: _census_json(task.complex) for name, task in tasks.items()
    }


def fact_table_data() -> Dict[str, Any]:
    cases = {
        "wait-free(depth1)": full_affine_task(3, 1),
        "R_A(1-OF)": r_affine(k_concurrency_alpha(3, 1)),
        "R_A(2-OF)": r_affine(k_concurrency_alpha(3, 2)),
        "R_A(1-res)": r_affine(t_resilience_alpha(3, 1)),
        "R_A(fig5b)": r_affine(
            agreement_function_of(figure5b_adversary())
        ),
    }
    return {
        name: minimal_set_consensus(task) for name, task in cases.items()
    }


def landscape_data() -> Dict[str, Any]:
    from .landscape import classify_all, summarize

    summary = summarize(classify_all(3))
    return {
        "total": summary.total,
        "fair": summary.fair,
        "superset_closed": summary.superset_closed,
        "symmetric": summary.symmetric,
        "setcon_histogram": {
            str(k): v for k, v in summary.power_histogram.items()
        },
        "distinct_alphas_fair": summary.distinct_alphas_fair,
        "distinct_affine_tasks": summary.distinct_affine_tasks,
    }


def all_figure_data() -> Dict[str, Any]:
    """Every reproduced figure/table, one JSON-serializable document."""
    return {
        "figure1": figure1_data(),
        "figure2": figure2_data(),
        "figure4": figure4_data(),
        "figure6": figure6_data(),
        "figure7": figure7_data(),
        "fact_table": fact_table_data(),
        "landscape": landscape_data(),
    }


def export_json(path: str | None = None, indent: int = 2) -> str:
    """Serialize :func:`all_figure_data`; optionally write to a file."""
    payload = json.dumps(all_figure_data(), indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
    return payload

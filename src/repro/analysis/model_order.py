"""The partial order of fair models under affine-task inclusion.

If ``R_A ⊆ R_B`` as complexes then every ``R_A*`` run is an ``R_B*``
run, so the ``A``-model solves at least the tasks the ``B``-model does
— inclusion of affine tasks is (contravariantly) a *strength* order on
fair models.  This module computes that order on the landscape's
distinct affine tasks and verifies its consistency with agreement
power: inclusion can only decrease ``setcon``... precisely,

    ``R_A ⊆ R_B  ⇒  setcon(A) <= setcon(B)``

(a stronger model is captured by a smaller complex).  It also extracts
the Hasse diagram and the chains/antichains structure — the
lattice-like landscape behind Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import networkx as nx

from ..adversaries.adversary import Adversary
from ..adversaries.setcon import setcon
from ..core.affine import AffineTask
from .landscape import fair_task_classes


@dataclass
class ModelClass:
    """One ``R_A``-equivalence class of fair adversaries."""

    task: AffineTask
    members: List[Adversary]
    power: int
    facets: int


def model_classes(n: int = 3) -> List[ModelClass]:
    """The landscape's distinct affine tasks with their member lists."""
    classes = []
    for task, members in fair_task_classes(n).items():
        classes.append(
            ModelClass(
                task=task,
                members=list(members),
                power=setcon(members[0]),
                facets=len(task.complex.facets),
            )
        )
    classes.sort(key=lambda c: (c.facets, repr(c.task.complex)))
    return classes


def inclusion_order(
    classes: Sequence[ModelClass],
) -> nx.DiGraph:
    """The strict inclusion order ``i -> j`` iff ``R_i ⊊ R_j``."""
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(classes)))
    for i, a in enumerate(classes):
        for j, b in enumerate(classes):
            if i != j and a.task.complex.complex.is_sub_complex_of(
                b.task.complex.complex
            ):
                graph.add_edge(i, j)
    return graph


def hasse_diagram(order: nx.DiGraph) -> nx.DiGraph:
    """Transitive reduction of the inclusion order."""
    return nx.transitive_reduction(order)


def check_inclusion_respects_power(
    classes: Sequence[ModelClass], order: nx.DiGraph
) -> Optional[Tuple[int, int]]:
    """``R_A ⊆ R_B ⇒ setcon(A) <= setcon(B)``; returns a violation."""
    for i, j in order.edges:
        if classes[i].power > classes[j].power:
            return (i, j)
    return None


def longest_chain(order: nx.DiGraph) -> List[int]:
    """A maximum chain in the inclusion order (DAG longest path)."""
    return nx.dag_longest_path(order)


def maximal_antichain_size(order: nx.DiGraph) -> int:
    """Size of a maximum antichain (Mirsky/Dilworth via matching).

    Computed as the maximum independent set of the comparability
    relation — exact via complement-graph cliques at this scale.
    """
    comparability = nx.Graph()
    comparability.add_nodes_from(order.nodes)
    closure = nx.transitive_closure(order)
    comparability.add_edges_from(closure.edges)
    complement = nx.complement(comparability)
    cliques = nx.find_cliques(complement)
    return max((len(c) for c in cliques), default=0)


@dataclass
class OrderSummary:
    """Aggregate shape of the fair-model order."""

    classes: int
    comparable_pairs: int
    hasse_edges: int
    longest_chain_length: int
    maximal_antichain: int
    minimum_facets: int
    maximum_facets: int
    power_respected: bool


def summarize_order(n: int = 3) -> OrderSummary:
    """Compute the full order summary for the ``n``-process landscape."""
    classes = model_classes(n)
    order = inclusion_order(classes)
    closure = nx.transitive_closure(order)
    hasse = hasse_diagram(order)
    violation = check_inclusion_respects_power(classes, closure)
    return OrderSummary(
        classes=len(classes),
        comparable_pairs=closure.number_of_edges(),
        hasse_edges=hasse.number_of_edges(),
        longest_chain_length=len(longest_chain(order)),
        maximal_antichain=maximal_antichain_size(order),
        minimum_facets=min(c.facets for c in classes),
        maximum_facets=max(c.facets for c in classes),
        power_respected=violation is None,
    )

"""Sperner-style parity evidence for set-consensus impossibility.

The backtracking decision procedure of :mod:`repro.tasks.solvability`
refutes ``(alpha(Pi) - 1)``-set consensus directly for the restricted
affine tasks, but for the *wait-free* complex ``Chr² s`` at ``n = 3``
the refutation of 2-set consensus is Sperner's lemma: any admissible
labeling (each vertex labeled by a process it witnessed) has an odd —
hence non-zero — number of trichromatic facets, so no simplicial map
to the 2-set-consensus output complex exists.

The module implements admissible labelings and the trichromatic count,
so the parity statement can be checked on any subdivision-like complex
and property-tested over random labelings (experiment E11's wait-free
row at depth 2).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet

from ..topology.chromatic import ChromaticComplex, ChrVertex
from ..topology.subdivision import carrier_in_s

Labeling = Dict[ChrVertex, int]


def admissible_labelings_domain(K: ChromaticComplex) -> Dict[ChrVertex, FrozenSet[int]]:
    """Per-vertex allowed labels: the processes the vertex witnessed.

    Sperner admissibility for subdivisions of ``s``: a vertex carried by
    the face ``t`` may only be labeled by an element of ``t``.
    """
    return {v: carrier_in_s([v]) for v in K.vertices}


def random_admissible_labeling(
    K: ChromaticComplex, rng: random.Random
) -> Labeling:
    """Sample an admissible labeling uniformly per vertex."""
    domain = admissible_labelings_domain(K)
    return {v: rng.choice(sorted(options)) for v, options in domain.items()}


def is_admissible(K: ChromaticComplex, labeling: Labeling) -> bool:
    """Does every vertex carry a witnessed label?"""
    domain = admissible_labelings_domain(K)
    return all(labeling[v] in domain[v] for v in K.vertices)


def panchromatic_facets(K: ChromaticComplex, labeling: Labeling) -> int:
    """How many facets see every label ``0..n-1`` (trichromatic at n=3)."""
    n = K.dimension + 1
    full = frozenset(range(n))
    return sum(
        1
        for facet in K.facets
        if frozenset(labeling[v] for v in facet) == full
    )


def sperner_parity_holds(K: ChromaticComplex, labeling: Labeling) -> bool:
    """Sperner's lemma instance: the panchromatic count is odd.

    True for every admissible labeling of a subdivision of ``s`` —
    which is exactly why a ``(n-1)``-set-consensus map out of the full
    ``Chr^m s`` cannot exist: such a map would be an admissible
    labeling with *zero* panchromatic facets.
    """
    return panchromatic_facets(K, labeling) % 2 == 1


def fuzz_sperner(
    K: ChromaticComplex, trials: int, seed: int = 0
) -> bool:
    """Check the parity over many random admissible labelings."""
    rng = random.Random(seed)
    return all(
        sperner_parity_holds(K, random_admissible_labeling(K, rng))
        for _ in range(trials)
    )

"""Plain-text rendering of the reproduced figures and tables.

Benchmarks and examples print through these helpers so every
experiment's output has a uniform, diff-friendly shape.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """A fixed-width text table."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_mapping(title: str, mapping: Dict) -> str:
    """A one-mapping-per-line block with a title."""
    lines = [title]
    for key in sorted(mapping, key=repr):
        lines.append(f"  {key}: {mapping[key]}")
    return "\n".join(lines)


def render_check(name: str, passed: bool) -> str:
    """A single PASS/FAIL line."""
    status = "PASS" if passed else "FAIL"
    return f"[{status}] {name}"


def banner(text: str) -> str:
    """A section banner for benchmark output."""
    bar = "=" * max(60, len(text) + 4)
    return f"{bar}\n| {text}\n{bar}"

"""Derived analyses: censuses, compactness, Sperner parity, reporting."""

from .stats import (
    compare_affine_tasks,
    complex_census,
    facet_share,
    facets_by_color_census,
    inclusion_matrix,
    vertices_by_witnessed_size,
)
from .compactness import (
    affine_model_is_prefix_closed,
    bounded_round_solvability,
    obstruction_free_witness,
    solo_run_prefixes_comply_one_resilient,
)
from .sperner import (
    admissible_labelings_domain,
    fuzz_sperner,
    is_admissible,
    panchromatic_facets,
    random_admissible_labeling,
    sperner_parity_holds,
)
from .landscape import (
    LandscapeEntry,
    LandscapeSummary,
    all_adversaries,
    alpha_signature,
    classify_all,
    fair_task_classes,
    summarize,
)
from .figure_data import (
    all_figure_data,
    export_json,
    fact_table_data,
    landscape_data,
)
from .figure_geometry import all_drawings, complex_drawing, planar_position
from .model_order import (
    ModelClass,
    OrderSummary,
    hasse_diagram,
    inclusion_order,
    model_classes,
    summarize_order,
)
from .reporting import banner, render_check, render_mapping, render_table

__all__ = [
    "LandscapeEntry",
    "LandscapeSummary",
    "all_adversaries",
    "alpha_signature",
    "classify_all",
    "fair_task_classes",
    "summarize",
    "compare_affine_tasks",
    "complex_census",
    "facet_share",
    "facets_by_color_census",
    "inclusion_matrix",
    "vertices_by_witnessed_size",
    "affine_model_is_prefix_closed",
    "bounded_round_solvability",
    "obstruction_free_witness",
    "solo_run_prefixes_comply_one_resilient",
    "admissible_labelings_domain",
    "fuzz_sperner",
    "is_admissible",
    "panchromatic_facets",
    "random_admissible_labeling",
    "sperner_parity_holds",
    "all_figure_data",
    "all_drawings",
    "complex_drawing",
    "planar_position",
    "export_json",
    "fact_table_data",
    "landscape_data",
    "ModelClass",
    "OrderSummary",
    "hasse_diagram",
    "inclusion_order",
    "model_classes",
    "summarize_order",
    "banner",
    "render_check",
    "render_mapping",
    "render_table",
]

"""The complete landscape of small adversaries.

The paper characterizes *fair* adversaries; at n = 3 the space of all
adversaries is small enough to enumerate outright (127 non-empty
collections of non-empty live sets).  This module classifies every one
of them — fairness, agreement power, agreement function, affine task —
and aggregates the landscape:

* how much of the space fairness covers,
* how many distinct agreement functions (and hence α-models) exist,
* how many distinct affine tasks ``R_A`` arise, and which fair
  adversaries collapse to the same one (the paper's Theorem 15 says
  task computability only depends on ``R_A``).

This is the exhaustive backdrop to Figure 2: not just examples in each
region, but the whole census.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterator, List, Tuple

from ..adversaries.adversary import Adversary
from ..adversaries.agreement import AgreementFunction, agreement_function_of
from ..adversaries.fairness import is_fair
from ..adversaries.setcon import setcon
from ..core.affine import AffineTask
from ..core.ra import r_affine


def all_adversaries(n: int) -> Iterator[Adversary]:
    """Every non-empty adversary over ``n`` processes.

    There are ``2^(2^n - 1) - 1`` of them; feasible for n <= 3.
    """
    subsets = [
        frozenset(combo)
        for size in range(1, n + 1)
        for combo in combinations(range(n), size)
    ]
    for count in range(1, len(subsets) + 1):
        for collection in combinations(subsets, count):
            yield Adversary(n, collection)


@dataclass
class LandscapeEntry:
    """Classification of one adversary."""

    adversary: Adversary
    fair: bool
    superset_closed: bool
    symmetric: bool
    power: int
    alpha_key: Tuple[Tuple[Tuple[int, ...], int], ...]

    @property
    def live_set_count(self) -> int:
        return len(self.adversary)


def alpha_signature(alpha: AgreementFunction) -> Tuple:
    """A hashable key identifying the agreement function."""
    return tuple(
        sorted(
            (tuple(sorted(participants)), value)
            for participants, value in alpha.table().items()
        )
    )


def classify_all(n: int = 3, engine=None) -> List[LandscapeEntry]:
    """Classify every adversary over ``n`` processes.

    With an :class:`repro.engine.Engine`, classification runs as one
    batch (cached, optionally parallel) and produces entries equal to
    the sequential ones; without, the legacy in-process loop runs.
    """
    if engine is not None:
        return engine.classify_many(all_adversaries(n))
    entries = []
    for adversary in all_adversaries(n):
        alpha = agreement_function_of(adversary)
        entries.append(
            LandscapeEntry(
                adversary=adversary,
                fair=is_fair(adversary),
                superset_closed=adversary.is_superset_closed(),
                symmetric=adversary.is_symmetric(),
                power=setcon(adversary),
                alpha_key=alpha_signature(alpha),
            )
        )
    return entries


@dataclass
class LandscapeSummary:
    """Aggregate view of the adversary landscape."""

    total: int
    fair: int
    superset_closed: int
    symmetric: int
    power_histogram: Dict[int, int]
    distinct_alphas_fair: int
    distinct_affine_tasks: int
    largest_alpha_class: int


def summarize(
    entries: List[LandscapeEntry],
    build_affine: bool = True,
    engine=None,
) -> LandscapeSummary:
    """Aggregate the landscape; optionally build every distinct ``R_A``.

    Affine tasks are built once per distinct agreement function (the
    construction only depends on α), so the expensive step is bounded
    by the number of distinct α's, not the number of adversaries.
    """
    power_histogram: Dict[int, int] = {}
    alpha_classes: Dict[Tuple, int] = {}
    for entry in entries:
        power_histogram[entry.power] = (
            power_histogram.get(entry.power, 0) + 1
        )
        if entry.fair:
            alpha_classes[entry.alpha_key] = (
                alpha_classes.get(entry.alpha_key, 0) + 1
            )

    distinct_tasks = 0
    if build_affine and entries:
        seen_complexes = set()
        representatives: Dict[Tuple, Adversary] = {}
        for entry in entries:
            if entry.fair and entry.alpha_key not in representatives:
                representatives[entry.alpha_key] = entry.adversary
        alphas = [
            agreement_function_of(adversary)
            for adversary in representatives.values()
        ]
        if engine is not None:
            tasks = engine.r_affine_many(alphas)
        else:
            tasks = [r_affine(alpha) for alpha in alphas]
        for task in tasks:
            seen_complexes.add(task.complex)
        distinct_tasks = len(seen_complexes)

    return LandscapeSummary(
        total=len(entries),
        fair=sum(1 for e in entries if e.fair),
        superset_closed=sum(1 for e in entries if e.superset_closed),
        symmetric=sum(1 for e in entries if e.symmetric),
        power_histogram=dict(sorted(power_histogram.items())),
        distinct_alphas_fair=len(alpha_classes),
        distinct_affine_tasks=distinct_tasks,
        largest_alpha_class=max(alpha_classes.values(), default=0),
    )


def fair_task_classes(
    n: int = 3, engine=None
) -> Dict[AffineTask, List[Adversary]]:
    """Group fair adversaries by their affine task ``R_A``.

    Theorem 15 says members of one class solve exactly the same tasks.
    With an engine, fairness comes from the batched classification and
    the per-α ``R_A`` constructions run as one batch.
    """
    classes: Dict[AffineTask, List[Adversary]] = {}
    alpha_to_task: Dict[Tuple, AffineTask] = {}
    if engine is not None:
        entries = classify_all(n, engine=engine)
        fair_adversaries = [e.adversary for e in entries if e.fair]
        pairs = [
            (agreement_function_of(adversary), adversary)
            for adversary in fair_adversaries
        ]
        fresh = {}
        for alpha, _ in pairs:
            key = alpha_signature(alpha)
            if key not in alpha_to_task and key not in fresh:
                fresh[key] = alpha
        for key, task in zip(
            fresh, engine.r_affine_many(fresh.values())
        ):
            alpha_to_task[key] = task
        for alpha, adversary in pairs:
            task = alpha_to_task[alpha_signature(alpha)]
            classes.setdefault(task, []).append(adversary)
        return classes
    for adversary in all_adversaries(n):
        if not is_fair(adversary):
            continue
        alpha = agreement_function_of(adversary)
        key = alpha_signature(alpha)
        if key not in alpha_to_task:
            alpha_to_task[key] = r_affine(alpha)
        task = alpha_to_task[key]
        classes.setdefault(task, []).append(adversary)
    return classes

"""Redraw the paper's figures: exact 2D coordinates + classifications.

The paper's Figures 1, 4, 5, 6 and 7 are drawings of complexes over the
2-simplex.  This module emits everything needed to re-plot them
faithfully: each vertex's exact position (the Appendix-A barycentric
embedding projected onto the standard equilateral triangle) and each
simplex's classification (contending / critical / concurrency level /
kept-by-``R_A``), as plain JSON-ready dictionaries.

No plotting library is used or required — the output feeds whatever
renderer the user prefers (matplotlib, TikZ, d3, ...).
"""

from __future__ import annotations

from math import sqrt
from typing import Any, Dict, List, Tuple

from ..adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
)
from ..adversaries.agreement import AgreementFunction
from ..core.concurrency import concurrency_map
from ..core.contention import is_contention_simplex
from ..core.critical import critical_simplices
from ..core.ra import r_affine
from ..topology.chromatic import ChromaticComplex
from ..topology.geometry import realize_vertex
from ..topology.subdivision import chr_complex

#: Corners of the standard equilateral triangle for processes 0, 1, 2.
TRIANGLE = ((0.0, 0.0), (1.0, 0.0), (0.5, sqrt(3.0) / 2.0))


def planar_position(vertex, n: int = 3) -> Tuple[float, float]:
    """Project the barycentric realization onto the drawing triangle."""
    weights = realize_vertex(vertex, n)
    x = sum(w * TRIANGLE[i][0] for i, w in enumerate(weights))
    y = sum(w * TRIANGLE[i][1] for i, w in enumerate(weights))
    return (float(x), float(y))


def _vertex_id(vertex) -> str:
    return repr(vertex)


def complex_drawing(K: ChromaticComplex, n: int = 3) -> Dict[str, Any]:
    """Vertices (id, color, position) and simplices (by vertex ids)."""
    vertices = {}
    for vertex in K.vertices:
        vertices[_vertex_id(vertex)] = {
            "process": getattr(vertex, "color", vertex),
            "position": planar_position(vertex, n),
        }
    simplices = [
        sorted(_vertex_id(v) for v in sigma) for sigma in K.simplices
    ]
    return {"vertices": vertices, "simplices": simplices}


def figure1a_drawing() -> Dict[str, Any]:
    """Chr s with its 13 triangles — Figure 1a."""
    chr1 = chr_complex(3, 1)
    drawing = complex_drawing(chr1)
    drawing["facets"] = [
        sorted(_vertex_id(v) for v in facet) for facet in chr1.facets
    ]
    return drawing


def figure4c_drawing() -> Dict[str, Any]:
    """Chr² s with contending simplices flagged red — Figure 4c."""
    chr2 = chr_complex(3, 2)
    drawing = complex_drawing(chr2)
    drawing["contending"] = [
        sorted(_vertex_id(v) for v in sigma)
        for sigma in chr2.simplices
        if len(sigma) >= 2 and is_contention_simplex(sigma)
    ]
    return drawing


def figure5_drawing(alpha: AgreementFunction) -> Dict[str, Any]:
    """Chr s with critical simplices flagged orange — Figure 5."""
    chr1 = chr_complex(3, 1)
    drawing = complex_drawing(chr1)
    critical: List[List[str]] = []
    for facet in chr1.facets:
        for theta in critical_simplices(facet, alpha):
            ids = sorted(_vertex_id(v) for v in theta)
            if ids not in critical:
                critical.append(ids)
    drawing["critical"] = critical
    return drawing


def figure6_drawing(alpha: AgreementFunction) -> Dict[str, Any]:
    """Chr s with each simplex's concurrency level — Figure 6."""
    chr1 = chr_complex(3, 1)
    drawing = complex_drawing(chr1)
    levels = concurrency_map(chr1, alpha)
    drawing["levels"] = [
        {
            "simplex": sorted(_vertex_id(v) for v in sigma),
            "level": level,
        }
        for sigma, level in sorted(levels.items(), key=repr)
    ]
    return drawing


def figure7_drawing(alpha: AgreementFunction) -> Dict[str, Any]:
    """Chr² s with the facets of R_A flagged blue — Figure 7."""
    chr2 = chr_complex(3, 2)
    task = r_affine(alpha)
    drawing = complex_drawing(chr2)
    drawing["kept_facets"] = [
        sorted(_vertex_id(v) for v in facet)
        for facet in task.complex.facets
    ]
    drawing["dropped_facets"] = [
        sorted(_vertex_id(v) for v in facet)
        for facet in chr2.facets - task.complex.facets
    ]
    return drawing


def all_drawings() -> Dict[str, Any]:
    """Every figure's drawing data, keyed like the paper."""
    alpha_1of = k_concurrency_alpha(3, 1)
    alpha_fig = agreement_function_of(figure5b_adversary(), name="fig5b")
    return {
        "figure1a": figure1a_drawing(),
        "figure4c": figure4c_drawing(),
        "figure5a": figure5_drawing(alpha_1of),
        "figure5b": figure5_drawing(alpha_fig),
        "figure6a": figure6_drawing(alpha_1of),
        "figure6b": figure6_drawing(alpha_fig),
        "figure7a": figure7_drawing(alpha_1of),
        "figure7b": figure7_drawing(alpha_fig),
    }

"""Compactness of affine models (Section 1, "Compact models").

A model — a set of infinite runs under the longest-prefix metric — is
*compact* when it contains its limit points: if every finite prefix of
a run extends to a run of the model, the run is in the model.  Affine
models are compact by construction; most adversarial models are not.

This module makes both halves executable for the paper's examples:

* :func:`affine_model_is_prefix_closed` — the structural fact behind
  affine-model compactness: any facet sequence is a legal prefix and
  extends, so the limit criterion is trivially satisfied;
* :func:`solo_run_prefixes_comply_one_resilient` — the paper's
  non-compactness witness for 1-resilience (three processes): every
  finite prefix of the solo run complies, yet the infinite solo run has
  only one correct process and is not 1-resilient;
* :func:`obstruction_free_witness` — the 1-obstruction-free 2-process
  witness: all finite runs comply, but only eventually-solo infinite
  runs are in the model;
* :func:`bounded_round_solvability` — the König-style consequence: a
  task solvable in an affine model is solvable in a *bounded* number of
  iterations, found by breadth-first search over iteration depths.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..adversaries.adversary import t_resilient, k_obstruction_free
from ..core.affine import AffineTask
from ..tasks.solvability import MapSearch
from ..tasks.task import Task


def affine_model_is_prefix_closed(task: AffineTask, length: int = 2) -> bool:
    """Every ``L^m`` facet extends to an ``L^{m+1}`` facet.

    This is the reason ``L*`` is compact: membership of an infinite run
    is equivalent to membership of each of its finite prefixes, and
    prefixes never dead-end.
    """
    current = [ (facet,) for facet in sorted(task.complex.facets, key=repr) ]
    for _ in range(length):
        if not current:
            return False
        # Every prefix extends by any facet: composition never blocks.
        sample = current[0]
        extended = [sample + (facet,) for facet in task.complex.facets]
        if not extended:
            return False
        current = extended[:1]
    return True


def solo_run_prefixes_comply_one_resilient(n: int = 3) -> Dict[str, bool]:
    """The paper's 1-resilience witness, checked mechanically.

    A finite prefix *complies* with the model when it can be extended
    to an infinite run whose correct set is a live set.  For the solo
    run of process 0: any finite prefix extends (wake the sleepers up),
    but the infinite solo run has correct set ``{0}``, too small for
    ``A_{1-res}``.
    """
    adversary = t_resilient(n, 1)
    solo_correct = frozenset([0])
    prefix_extensible = any(
        solo_correct <= live for live in adversary.live_sets
    )
    limit_in_model = solo_correct in adversary.live_sets
    return {
        "every_prefix_complies": prefix_extensible,
        "limit_run_in_model": limit_in_model,
        "compact": not (prefix_extensible and not limit_in_model),
    }


def obstruction_free_witness(n: int = 2) -> Dict[str, bool]:
    """The 1-obstruction-free witness: perpetual alternation.

    Finite alternating prefixes always comply (one process can run solo
    from now on), but the infinite alternating run has correct set of
    size 2 — not a live set of the 1-obstruction-free adversary.
    """
    adversary = k_obstruction_free(n, 1)
    alternating_correct = frozenset(range(n))
    prefix_extensible = any(
        live <= alternating_correct for live in adversary.live_sets
    )
    limit_in_model = alternating_correct in adversary.live_sets
    return {
        "every_prefix_complies": prefix_extensible,
        "limit_run_in_model": limit_in_model,
        "compact": not (prefix_extensible and not limit_in_model),
    }


def bounded_round_solvability(
    affine: AffineTask,
    task: Task,
    max_depth: int = 2,
    node_budget: Optional[int] = None,
) -> Optional[int]:
    """Smallest iteration count of ``L`` solving the task, or None.

    The compactness consequence (König's lemma) is that solvability in
    ``L*`` means solvability at *some* finite depth; this procedure
    finds it by increasing depth.  Depth is capped because ``L^m``
    grows as ``facets^m``.
    """
    current = affine
    for depth in range(1, max_depth + 1):
        if MapSearch(current, task).search(node_budget) is not None:
            return depth
        if depth < max_depth:
            current = current.compose_with(affine)
    return None

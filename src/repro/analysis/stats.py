"""Census statistics for the complexes the paper draws.

Facet counts, f-vectors, per-carrier-size breakdowns and comparisons
between affine tasks — the numeric content of Figures 1, 4, 5, 6 and 7.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from ..core.affine import AffineTask
from ..topology.chromatic import ChromaticComplex, chi
from ..topology.subdivision import carrier_in_s


def complex_census(K: ChromaticComplex) -> Dict[str, object]:
    """Vertex/facet/f-vector summary of a chromatic complex."""
    return {
        "vertices": len(K.vertices),
        "facets": len(K.facets),
        "simplices": len(K.simplices),
        "f_vector": K.f_vector(),
        "dimension": K.dimension,
        "pure": K.is_pure(),
    }


def facet_share(task: AffineTask, ambient: ChromaticComplex) -> float:
    """Fraction of the ambient complex's facets kept by the affine task."""
    return len(task.complex.facets) / len(ambient.facets)


def vertices_by_witnessed_size(K: ChromaticComplex) -> Dict[int, int]:
    """How many vertices witness participations of each size.

    For ``R_{t-res}`` this is the corner-exclusion structure of
    Figure 1b: no vertex may witness fewer than ``n - t`` processes.
    """
    census: Dict[int, int] = {}
    for vertex in K.vertices:
        size = len(carrier_in_s([vertex]))
        census[size] = census.get(size, 0) + 1
    return dict(sorted(census.items()))


def facets_by_color_census(K: ChromaticComplex) -> Dict[int, int]:
    """Facet count by number of distinct colors (should be pure)."""
    census: Dict[int, int] = {}
    for facet in K.facets:
        size = len(chi(facet))
        census[size] = census.get(size, 0) + 1
    return dict(sorted(census.items()))


def compare_affine_tasks(
    tasks: Iterable[AffineTask],
) -> List[Dict[str, object]]:
    """Side-by-side census of several affine tasks (Figure 7 table)."""
    rows = []
    for task in tasks:
        row = {"name": task.name, "depth": task.depth}
        row.update(complex_census(task.complex))
        rows.append(row)
    return rows


def inclusion_matrix(tasks: List[AffineTask]) -> List[List[bool]]:
    """``matrix[i][j]``: is task ``i``'s complex a sub-complex of ``j``'s?

    Reflects relative model strength: a smaller affine task iterates to
    a smaller (more constrained, at-least-as-powerful) model.
    """
    return [
        [
            a.complex.complex.is_sub_complex_of(b.complex.complex)
            for b in tasks
        ]
        for a in tasks
    ]

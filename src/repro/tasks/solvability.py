"""The FACT decision procedure: search for a carried chromatic map.

Theorem 16 reduces solvability of ``T = (I, O, Delta)`` in a fair
``A``-model to the existence of a chromatic simplicial map
``phi : R_A^l(I) -> O`` carried by ``Delta``.  For the small systems the
paper's figures live in (n = 3, 4; l = 1, 2) existence is decidable by
backtracking over vertex assignments:

* variables — vertices of the affine complex ``L``;
* domains — output vertices of matching color whose singleton is
  allowed by ``Delta`` of the vertex's witnessed participation;
* constraints — for every simplex ``sigma`` of ``L``, the image must
  belong to ``Delta(carrier(sigma, s))``.

Because task specifications here are downward closed, constraints are
checked exactly once, when a simplex's last vertex is assigned, and
failures surface at the smallest violating face.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.affine import AffineTask
from ..topology.chromatic import ChrVertex, ProcessId, chi, color_of
from ..topology.simplex import Simplex
from ..topology.subdivision import carrier_in_s
from .task import OutputVertex, Task


class SearchBudgetExceeded(Exception):
    """The backtracking search hit its node budget before deciding."""


class MapSearch:
    """Backtracking search for a carried chromatic simplicial map."""

    def __init__(self, affine: AffineTask, task: Task):
        if affine.n != task.n:
            raise ValueError("affine task and task disagree on n")
        self.affine = affine
        self.task = task
        self.nodes_explored = 0

        complex_ = affine.complex
        self.simplices: List[Simplex] = sorted(
            complex_.simplices, key=lambda s: (len(s), repr(s))
        )
        self.participation: Dict[Simplex, FrozenSet[ProcessId]] = {
            sigma: carrier_in_s(sigma) for sigma in self.simplices
        }
        self.vertices = self._order_vertices(complex_.vertices)
        self.rank = {v: i for i, v in enumerate(self.vertices)}
        # Simplices indexed by their latest vertex in assignment order:
        # each constraint fires exactly once.
        self.firing: Dict[ChrVertex, List[Simplex]] = {
            v: [] for v in self.vertices
        }
        for sigma in self.simplices:
            last = max(sigma, key=lambda v: self.rank[v])
            self.firing[last].append(sigma)
        self.domains: Dict[ChrVertex, List[OutputVertex]] = {
            v: self._domain(v) for v in self.vertices
        }

    # ------------------------------------------------------------------
    def _order_vertices(self, vertices: Iterable[ChrVertex]) -> List[ChrVertex]:
        """Constrained-first ordering: small witnessed participation,
        then maximal adjacency to already-ordered vertices."""
        remaining = set(vertices)
        adjacency: Dict[ChrVertex, set] = {v: set() for v in remaining}
        for sigma in self.simplices:
            if len(sigma) == 2:
                a, b = tuple(sigma)
                adjacency[a].add(b)
                adjacency[b].add(a)
        ordered: List[ChrVertex] = []
        placed: set = set()
        while remaining:
            best = min(
                remaining,
                key=lambda v: (
                    -len(adjacency[v] & placed),
                    len(self.participation[frozenset([v])]),
                    repr(v),
                ),
            )
            ordered.append(best)
            placed.add(best)
            remaining.remove(best)
        return ordered

    def _domain(self, vertex: ChrVertex) -> List[OutputVertex]:
        participation = self.participation[frozenset([vertex])]
        allowed = self.task.allowed_outputs(participation)
        color = color_of(vertex)
        candidates = sorted(
            {
                out
                for sigma in allowed
                for out in sigma
                if out.process == color
            },
            key=repr,
        )
        return [
            out for out in candidates if frozenset([out]) in allowed
        ]

    # ------------------------------------------------------------------
    def search(
        self, node_budget: Optional[int] = None
    ) -> Optional[Dict[ChrVertex, OutputVertex]]:
        """Find a carried map, or return ``None`` when none exists.

        Raises :class:`SearchBudgetExceeded` if ``node_budget``
        assignments are exhausted before the search concludes.
        """
        assignment: Dict[ChrVertex, OutputVertex] = {}
        self.nodes_explored = 0

        def consistent(vertex: ChrVertex) -> bool:
            for sigma in self.firing[vertex]:
                image = frozenset(assignment[v] for v in sigma)
                if image not in self.task.allowed_outputs(
                    self.participation[sigma]
                ):
                    return False
            return True

        # Iterative depth-first search (the domain can exceed Python's
        # recursion limit at n = 4): choice_index[d] is the next
        # candidate to try for the vertex at depth d.
        total = len(self.vertices)
        if total == 0:
            return {}
        choice_index = [0] * total
        depth = 0
        while True:
            vertex = self.vertices[depth]
            domain = self.domains[vertex]
            advanced = False
            while choice_index[depth] < len(domain):
                candidate = domain[choice_index[depth]]
                choice_index[depth] += 1
                self.nodes_explored += 1
                if (
                    node_budget is not None
                    and self.nodes_explored > node_budget
                ):
                    raise SearchBudgetExceeded(
                        f"exceeded {node_budget} nodes"
                    )
                assignment[vertex] = candidate
                if consistent(vertex):
                    advanced = True
                    break
                del assignment[vertex]
            if advanced:
                if depth + 1 == total:
                    return dict(assignment)
                depth += 1
                choice_index[depth] = 0
            else:
                if vertex in assignment:
                    del assignment[vertex]
                depth -= 1
                if depth < 0:
                    return None
                assignment.pop(self.vertices[depth], None)


def find_carried_map(
    affine: AffineTask,
    task: Task,
    node_budget: Optional[int] = None,
) -> Optional[Dict[ChrVertex, OutputVertex]]:
    """Convenience wrapper around :class:`MapSearch`."""
    return MapSearch(affine, task).search(node_budget)


def verify_carried_map(
    affine: AffineTask,
    task: Task,
    mapping: Dict[ChrVertex, OutputVertex],
) -> bool:
    """Independently re-check a candidate solution.

    Confirms chromaticity and that every simplex's image is allowed by
    ``Delta`` of its witnessed participation.
    """
    for vertex, out in mapping.items():
        if color_of(vertex) != out.process:
            return False
    for sigma in affine.complex.simplices:
        image = frozenset(mapping[v] for v in sigma)
        if image not in task.allowed_outputs(carrier_in_s(sigma)):
            return False
    return True


def solves_set_consensus(
    affine: AffineTask, k: int, node_budget: Optional[int] = None
) -> bool:
    """Is k-set consensus solvable by one shot of the affine task?"""
    from .set_consensus import set_consensus_task

    task = set_consensus_task(affine.n, k)
    return MapSearch(affine, task).search(node_budget) is not None


def minimal_set_consensus(
    affine: AffineTask, node_budget: Optional[int] = None
) -> int:
    """The smallest ``k`` such that one shot of ``L`` solves k-set consensus.

    By Theorem 16 (plus the BG impossibility results the paper builds
    on) this equals ``setcon(A)`` when ``L = R_A`` for a fair adversary
    ``A`` with ``alpha(Pi) = setcon(A)``.
    """
    for k in range(1, affine.n + 1):
        if solves_set_consensus(affine, k, node_budget):
            return k
    raise AssertionError("n-set consensus is always solvable")

"""The FACT decision procedure: search for a carried chromatic map.

Theorem 16 reduces solvability of ``T = (I, O, Delta)`` in a fair
``A``-model to the existence of a chromatic simplicial map
``phi : R_A^l(I) -> O`` carried by ``Delta``.  For the small systems the
paper's figures live in (n = 3, 4; l = 1, 2) existence is decidable by
backtracking over vertex assignments:

* variables — vertices of the affine complex ``L``;
* domains — output vertices of matching color whose singleton is
  allowed by ``Delta`` of the vertex's witnessed participation;
* constraints — for every simplex ``sigma`` of ``L``, the image must
  belong to ``Delta(carrier(sigma, s))``.

Because task specifications here are downward closed, constraints are
checked exactly once, when a simplex's last vertex is assigned, and
failures surface at the smallest violating face.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.affine import AffineTask
from ..topology.chromatic import ChrVertex, ProcessId, color_of
from ..topology.simplex import Simplex, simplex_key, vertex_key
from ..topology.subdivision import carrier_in_s
from .task import OutputVertex, Task

__all__ = [
    "DomainOverrides",
    "MapSearch",
    "SearchBudgetExceeded",
    "find_carried_map",
    "minimal_set_consensus",
    "resolve_budget",
    "solves_set_consensus",
    "split_search_domains",
    "verify_carried_map",
]


def resolve_budget(
    budget: Optional[int],
    *,
    node_budget: Optional[int] = None,
    max_nodes: Optional[int] = None,
    stacklevel: int = 3,
) -> Optional[int]:
    """Resolve the unified ``budget`` kwarg against its legacy spellings.

    ``budget`` is the canonical name everywhere (search, engine, service,
    CLI); ``node_budget`` and ``max_nodes`` are accepted as deprecated
    aliases that warn once per call site.  An explicit ``budget`` wins
    over any alias.
    """
    # Late import: repro.engine.compat owns every deprecation warning,
    # but importing the engine package at module-import time would cycle
    # (engine.jobs imports this module).
    from ..engine.compat import resolve_budget_aliases

    return resolve_budget_aliases(
        budget,
        node_budget=node_budget,
        max_nodes=max_nodes,
        # compat adds two frames (resolve_budget_aliases + deprecated)
        # between this function and warnings.warn.
        stacklevel=stacklevel + 2,
    )


class SearchBudgetExceeded(Exception):
    """The backtracking search hit its node budget before deciding.

    Carries the search state at the moment the budget ran out, so
    callers (notably the engine's split-retry in
    :mod:`repro.engine.executor`) can partition the remaining domain or
    report progress:

    * ``nodes_explored`` — assignments tried before giving up;
    * ``partial_assignment`` — the consistent prefix held when the
      budget fired (a copy; never mutated afterwards).
    """

    def __init__(
        self,
        message: str,
        *,
        nodes_explored: int = 0,
        partial_assignment: Optional[Dict[ChrVertex, OutputVertex]] = None,
    ):
        super().__init__(message)
        self.nodes_explored = nodes_explored
        self.partial_assignment: Dict[ChrVertex, OutputVertex] = dict(
            partial_assignment or {}
        )


DomainOverrides = Dict[ChrVertex, Tuple[OutputVertex, ...]]


class MapSearch:
    """Backtracking search for a carried chromatic simplicial map.

    ``domain_overrides`` restricts selected vertices to a subset of
    their natural domains (preserving the canonical candidate order);
    the engine uses this to split one search into independent sub-jobs
    whose union covers the original space.
    """

    def __init__(
        self,
        affine: AffineTask,
        task: Task,
        domain_overrides: Optional[DomainOverrides] = None,
    ):
        if affine.n != task.n:
            raise ValueError("affine task and task disagree on n")
        self.affine = affine
        self.task = task
        self.nodes_explored = 0

        complex_ = affine.complex
        # Structural sort keys (not repr) so the search order — and with
        # it node counts and returned maps — is reproducible across
        # runs, platforms and worker processes.
        self.simplices: List[Simplex] = sorted(
            complex_.simplices, key=simplex_key
        )
        self.participation: Dict[Simplex, FrozenSet[ProcessId]] = {
            sigma: carrier_in_s(sigma) for sigma in self.simplices
        }
        self.vertices = self._order_vertices(complex_.vertices)
        self.rank = {v: i for i, v in enumerate(self.vertices)}
        # Simplices indexed by their latest vertex in assignment order:
        # each constraint fires exactly once.
        self.firing: Dict[ChrVertex, List[Simplex]] = {
            v: [] for v in self.vertices
        }
        for sigma in self.simplices:
            last = max(sigma, key=lambda v: self.rank[v])
            self.firing[last].append(sigma)
        self.domains: Dict[ChrVertex, List[OutputVertex]] = {
            v: self._domain(v) for v in self.vertices
        }
        #: True when ``domain_overrides`` restricted any domain; such a
        #: search covers only a slice of the space, so its exhaustion is
        #: not a full refutation (certificates refuse to cite it).
        self.domains_overridden = bool(domain_overrides)
        if domain_overrides:
            for vertex, allowed in domain_overrides.items():
                if vertex not in self.domains:
                    raise ValueError(
                        f"override for {vertex!r}, not a vertex of L"
                    )
                allowed_set = set(allowed)
                self.domains[vertex] = [
                    out for out in self.domains[vertex] if out in allowed_set
                ]

    # ------------------------------------------------------------------
    def _order_vertices(self, vertices: Iterable[ChrVertex]) -> List[ChrVertex]:
        """Constrained-first ordering: small witnessed participation,
        then maximal adjacency to already-ordered vertices."""
        remaining = set(vertices)
        adjacency: Dict[ChrVertex, set] = {v: set() for v in remaining}
        for sigma in self.simplices:
            if len(sigma) == 2:
                a, b = tuple(sigma)
                adjacency[a].add(b)
                adjacency[b].add(a)
        ordered: List[ChrVertex] = []
        placed: set = set()
        while remaining:
            best = min(
                remaining,
                key=lambda v: (
                    -len(adjacency[v] & placed),
                    len(self.participation[frozenset([v])]),
                    vertex_key(v),
                ),
            )
            ordered.append(best)
            placed.add(best)
            remaining.remove(best)
        return ordered

    def _domain(self, vertex: ChrVertex) -> List[OutputVertex]:
        participation = self.participation[frozenset([vertex])]
        allowed = self.task.allowed_outputs(participation)
        color = color_of(vertex)
        candidates = sorted(
            {
                out
                for sigma in allowed
                for out in sigma
                if out.process == color
            },
            key=vertex_key,
        )
        return [
            out for out in candidates if frozenset([out]) in allowed
        ]

    # ------------------------------------------------------------------
    def search(
        self,
        budget: Optional[int] = None,
        resume_from: Optional[Dict[ChrVertex, OutputVertex]] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Optional[Dict[ChrVertex, OutputVertex]]:
        """Find a carried map, or return ``None`` when none exists.

        Raises :class:`SearchBudgetExceeded` if ``budget`` assignments
        are exhausted before the search concludes (``node_budget`` and
        ``max_nodes`` are deprecated spellings of the same limit).

        ``resume_from`` seeds the search with the partial assignment a
        previous run's :class:`SearchBudgetExceeded` carried (see
        ``repro.certify``'s budget stubs): the DFS stack is rebuilt so
        every branch the interrupted run already exhausted is skipped,
        and the remaining space is explored in the identical order — a
        resumed search finds exactly the map a fresh, unbudgeted run
        would.  ``nodes_explored`` counts only the resumed portion.
        Raises ``ValueError`` when the prefix is not a consistent
        assignment of an initial segment of the vertex order.
        """
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        assignment: Dict[ChrVertex, OutputVertex] = {}
        self.nodes_explored = 0

        def consistent(vertex: ChrVertex) -> bool:
            for sigma in self.firing[vertex]:
                image = frozenset(assignment[v] for v in sigma)
                if image not in self.task.allowed_outputs(
                    self.participation[sigma]
                ):
                    return False
            return True

        # Iterative depth-first search (the domain can exceed Python's
        # recursion limit at n = 4): choice_index[d] is the next
        # candidate to try for the vertex at depth d.
        total = len(self.vertices)
        if total == 0:
            return {}
        choice_index = [0] * total
        depth = 0
        if resume_from:
            depth = self._seed(assignment, choice_index, resume_from, consistent)
            if depth == total:
                return dict(assignment)
        while True:
            vertex = self.vertices[depth]
            domain = self.domains[vertex]
            advanced = False
            while choice_index[depth] < len(domain):
                candidate = domain[choice_index[depth]]
                choice_index[depth] += 1
                self.nodes_explored += 1
                if budget is not None and self.nodes_explored > budget:
                    raise SearchBudgetExceeded(
                        f"exceeded {budget} nodes",
                        nodes_explored=self.nodes_explored,
                        partial_assignment=assignment,
                    )
                assignment[vertex] = candidate
                if consistent(vertex):
                    advanced = True
                    break
                del assignment[vertex]
            if advanced:
                if depth + 1 == total:
                    return dict(assignment)
                depth += 1
                choice_index[depth] = 0
            else:
                if vertex in assignment:
                    del assignment[vertex]
                depth -= 1
                if depth < 0:
                    return None
                assignment.pop(self.vertices[depth], None)

    def _seed(
        self,
        assignment: Dict[ChrVertex, OutputVertex],
        choice_index: List[int],
        resume_from: Dict[ChrVertex, OutputVertex],
        consistent,
    ) -> int:
        """Rebuild the DFS stack from a partial assignment.

        The prefix must assign exactly ``self.vertices[:d]`` for some
        ``d``; each choice index is set one *past* the assigned
        candidate, which is precisely the "next branch on backtrack"
        state of the interrupted search.  Returns ``d``.
        """
        depth = 0
        for vertex in self.vertices:
            if vertex not in resume_from:
                break
            depth += 1
        extra = set(resume_from) - set(self.vertices[:depth])
        if extra:
            raise ValueError(
                "resume assignment is not an initial segment of the "
                f"vertex order ({len(extra)} stray entries)"
            )
        for index in range(depth):
            vertex = self.vertices[index]
            candidate = resume_from[vertex]
            domain = self.domains[vertex]
            if candidate not in domain:
                raise ValueError(
                    f"resume candidate for {vertex!r} is outside its domain"
                )
            assignment[vertex] = candidate
            if not consistent(vertex):
                raise ValueError("resume assignment violates a constraint")
            choice_index[index] = domain.index(candidate) + 1
        if depth < len(self.vertices):
            choice_index[depth] = 0
        return depth


def split_search_domains(
    affine: AffineTask,
    task: Task,
    parts: int = 2,
    domain_overrides: Optional[DomainOverrides] = None,
) -> List[DomainOverrides]:
    """Partition a :class:`MapSearch` space into independent sub-spaces.

    Splits the domain of the first vertex (in assignment order) that
    still has at least two candidates into ``parts`` contiguous chunks,
    preserving the canonical candidate order.  The returned override
    dicts describe disjoint sub-searches whose union covers the
    original space, and running them in list order visits assignments
    in exactly the order the undivided search would — so "first
    sub-search that finds a map" returns the same map the full search
    returns.

    Returns ``[]`` when no vertex has a splittable domain (the search
    space is a single branch and cannot be partitioned this way).
    """
    if parts < 2:
        raise ValueError("need at least two parts to split")
    search = MapSearch(affine, task, domain_overrides=domain_overrides)
    for vertex in search.vertices:
        domain = search.domains[vertex]
        if len(domain) >= 2:
            chunk_count = min(parts, len(domain))
            base, extra = divmod(len(domain), chunk_count)
            splits: List[DomainOverrides] = []
            start = 0
            for index in range(chunk_count):
                size = base + (1 if index < extra else 0)
                chunk = tuple(domain[start : start + size])
                start += size
                overrides: DomainOverrides = dict(domain_overrides or {})
                overrides[vertex] = chunk
                splits.append(overrides)
            return splits
    return []


def find_carried_map(
    affine: AffineTask,
    task: Task,
    budget: Optional[int] = None,
    *,
    node_budget: Optional[int] = None,
) -> Optional[Dict[ChrVertex, OutputVertex]]:
    """Convenience wrapper around :class:`MapSearch`."""
    budget = resolve_budget(budget, node_budget=node_budget)
    return MapSearch(affine, task).search(budget)


def verify_carried_map(
    affine: AffineTask,
    task: Task,
    mapping: Dict[ChrVertex, OutputVertex],
) -> bool:
    """Independently re-check a candidate solution.

    Confirms chromaticity and that every simplex's image is allowed by
    ``Delta`` of its witnessed participation.
    """
    for vertex, out in mapping.items():
        if color_of(vertex) != out.process:
            return False
    for sigma in affine.complex.simplices:
        image = frozenset(mapping[v] for v in sigma)
        if image not in task.allowed_outputs(carrier_in_s(sigma)):
            return False
    return True


def solves_set_consensus(
    affine: AffineTask,
    k: int,
    budget: Optional[int] = None,
    *,
    node_budget: Optional[int] = None,
) -> bool:
    """Is k-set consensus solvable by one shot of the affine task?"""
    from .set_consensus import set_consensus_task

    budget = resolve_budget(budget, node_budget=node_budget)
    task = set_consensus_task(affine.n, k)
    return MapSearch(affine, task).search(budget) is not None


def minimal_set_consensus(
    affine: AffineTask,
    budget: Optional[int] = None,
    *,
    node_budget: Optional[int] = None,
) -> int:
    """The smallest ``k`` such that one shot of ``L`` solves k-set consensus.

    By Theorem 16 (plus the BG impossibility results the paper builds
    on) this equals ``setcon(A)`` when ``L = R_A`` for a fair adversary
    ``A`` with ``alpha(Pi) = setcon(A)``.
    """
    budget = resolve_budget(budget, node_budget=node_budget)
    for k in range(1, affine.n + 1):
        if solves_set_consensus(affine, k, budget):
            return k
    raise AssertionError("n-set consensus is always solvable")

"""The k-set consensus task (Chaudhuri 1990; Section 2 of the paper).

We use the canonical *identity-input* instance: process ``i`` proposes
value ``i``.  This loses no generality for solvability-from-a-model
questions — any instance with at least ``k + 1`` distinct proposals
reduces to it — and makes the input complex the standard simplex ``s``.

Outputs: each participating process decides a proposed value of a
participant; at most ``k`` distinct values are decided overall.
``k = 1`` is consensus.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import FrozenSet, Iterable

from ..topology.chromatic import ProcessId, standard_simplex
from ..topology.simplex import Simplex
from .task import OutputVertex, Task, output_complex_from_delta


def set_consensus_outputs(
    participants: FrozenSet[ProcessId], k: int
) -> FrozenSet[Simplex]:
    """``Delta(P)`` of k-set consensus with identity inputs.

    All rainbow output simplices on (a subset of) ``P`` whose decided
    values are participants' ids, at most ``k`` distinct.
    """
    participants = frozenset(participants)
    result = set()
    members = sorted(participants)
    for size in range(1, len(members) + 1):
        for deciders in combinations(members, size):
            for values in product(members, repeat=size):
                if len(set(values)) <= k:
                    result.add(
                        frozenset(
                            OutputVertex(p, v)
                            for p, v in zip(deciders, values)
                        )
                    )
    return frozenset(result)


def set_consensus_task(n: int, k: int) -> Task:
    """The k-set consensus task over ``n`` processes."""
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")

    def delta(participants: FrozenSet[ProcessId]) -> FrozenSet[Simplex]:
        return set_consensus_outputs(participants, k)

    return Task(
        n,
        standard_simplex(n),
        output_complex_from_delta(n, delta),
        delta,
        name=f"{k}-set-consensus",
    )


def consensus_task(n: int) -> Task:
    """The consensus task (1-set consensus)."""
    return set_consensus_task(n, 1)


def distinct_decisions(outputs: Iterable[OutputVertex]) -> int:
    """Number of distinct decided values in an output simplex."""
    return len({vertex.value for vertex in outputs})

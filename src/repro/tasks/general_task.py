"""General tasks: input complexes beyond the fixed-input simplex.

The FACT statement applies the affine task to the *input complex*:
``φ : R_A^ℓ(I) → O``.  The fixed-input machinery elsewhere in
:mod:`repro.tasks` takes ``I = s``; this module adds genuine input
complexes — each process starts with one of several possible inputs —
which is what separates, e.g., binary consensus (FLP-impossible
wait-free) from its trivially solvable fixed-input cousin.

Construction: an input complex ``I`` is a chromatic complex over
:class:`InputVertex` ``(process, value)`` vertices.  ``L(I)`` replaces
every facet of ``I`` with a copy of the affine task ``L``, transported
by the chromatic isomorphism lifting colors to input vertices — shared
input faces induce shared subdivision vertices, so the copies glue
exactly as the subdivision functor demands.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, NamedTuple

from ..core.affine import AffineTask, lift_vertex
from ..topology.chromatic import ChromaticComplex, ChrVertex, ProcessId
from ..topology.simplex import Simplex
from .task import OutputVertex


class InputVertex(NamedTuple):
    """An input assignment ``(process, value)``; colored by process."""

    process: ProcessId
    value: Hashable

    @property
    def color(self) -> ProcessId:
        return self.process

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"In(p{self.process}={self.value!r})"


def input_complex_from_assignments(
    n: int, values_per_process: Dict[ProcessId, Iterable[Hashable]]
) -> ChromaticComplex:
    """The input complex of all full assignments from per-process menus.

    Facets are one choice of value per process; faces model partial
    participation with those inputs.
    """
    menus = [sorted(values_per_process[pid], key=repr) for pid in range(n)]
    facets = [
        frozenset(
            InputVertex(pid, choice[pid]) for pid in range(n)
        )
        for choice in product(*menus)
    ]
    return ChromaticComplex(facets)


def binary_input_complex(n: int) -> ChromaticComplex:
    """Every process may start with 0 or 1 — the FLP input complex."""
    return input_complex_from_assignments(
        n, {pid: (0, 1) for pid in range(n)}
    )


def subdivide_input_complex(
    affine: AffineTask, inputs: ChromaticComplex
) -> ChromaticComplex:
    """``L(I)``: plant a copy of ``L`` inside every facet of ``I``."""
    facets: List[Simplex] = []
    for input_facet in inputs.facets:
        mapping = {vertex.color: vertex for vertex in input_facet}
        if len(mapping) != affine.n:
            continue
        for task_facet in affine.complex.facets:
            facets.append(
                frozenset(
                    lift_vertex(v, mapping) for v in task_facet
                )
            )
    return ChromaticComplex(facets)


def base_inputs(vertex: ChrVertex) -> FrozenSet[InputVertex]:
    """The input vertices a subdivision vertex of ``L(I)`` witnessed."""
    collected: set = set()
    stack = [vertex]
    while stack:
        current = stack.pop()
        for member in current.carrier:
            if isinstance(member, ChrVertex):
                stack.append(member)
            else:
                collected.add(member)
    return frozenset(collected)


def base_inputs_of_simplex(sigma: Iterable[ChrVertex]) -> FrozenSet[InputVertex]:
    """Union of witnessed inputs over a simplex of ``L(I)``."""
    result: set = set()
    for vertex in sigma:
        result |= base_inputs(vertex)
    return frozenset(result)


class GeneralTask:
    """A task with a genuine input complex.

    ``delta(inputs)`` maps a simplex of ``I`` (a frozenset of
    :class:`InputVertex`) to the allowed output simplices.
    """

    def __init__(
        self,
        n: int,
        input_complex: ChromaticComplex,
        delta: Callable[[FrozenSet[InputVertex]], FrozenSet[Simplex]],
        name: str = "general-task",
    ):
        self.n = n
        self.input_complex = input_complex
        self._delta = delta
        self.name = name
        self._cache: Dict[FrozenSet[InputVertex], FrozenSet[Simplex]] = {}

    def allowed_outputs(
        self, inputs: FrozenSet[InputVertex]
    ) -> FrozenSet[Simplex]:
        inputs = frozenset(inputs)
        if inputs not in self._cache:
            self._cache[inputs] = frozenset(self._delta(inputs))
        return self._cache[inputs]

    def __repr__(self) -> str:
        return f"GeneralTask({self.name}, n={self.n})"


def binary_consensus_task(n: int) -> GeneralTask:
    """Binary consensus: decide one value, some participant's input."""

    def delta(inputs: FrozenSet[InputVertex]) -> FrozenSet[Simplex]:
        participants = sorted(vertex.process for vertex in inputs)
        values = {vertex.value for vertex in inputs}
        result = set()
        for value in values:
            for size in range(1, len(participants) + 1):
                from itertools import combinations

                for deciders in combinations(participants, size):
                    result.add(
                        frozenset(
                            OutputVertex(pid, value) for pid in deciders
                        )
                    )
        return frozenset(result)

    return GeneralTask(
        n, binary_input_complex(n), delta, name="binary-consensus"
    )


def binary_k_set_consensus_task(n: int, k: int) -> GeneralTask:
    """Binary k-set consensus over the FLP input complex."""

    def delta(inputs: FrozenSet[InputVertex]) -> FrozenSet[Simplex]:
        participants = sorted(vertex.process for vertex in inputs)
        values = sorted({vertex.value for vertex in inputs}, key=repr)
        result = set()
        from itertools import combinations

        for size in range(1, len(participants) + 1):
            for deciders in combinations(participants, size):
                for chosen in product(values, repeat=size):
                    if len(set(chosen)) <= k:
                        result.add(
                            frozenset(
                                OutputVertex(pid, value)
                                for pid, value in zip(deciders, chosen)
                            )
                        )
        return frozenset(result)

    return GeneralTask(
        n,
        binary_input_complex(n),
        delta,
        name=f"binary-{k}-set-consensus",
    )


class GeneralMapSearch:
    """Search ``φ : L(I) → O`` carried by a general task's Δ.

    Same iterative backtracking as the fixed-input search, with
    constraints evaluated against witnessed *input* carriers.
    """

    def __init__(self, affine: AffineTask, task: GeneralTask):
        self.affine = affine
        self.task = task
        self.domain_complex = subdivide_input_complex(
            affine, task.input_complex
        )
        self.simplices = sorted(
            self.domain_complex.simplices, key=lambda s: (len(s), repr(s))
        )
        self.inputs_of: Dict[Simplex, FrozenSet[InputVertex]] = {
            sigma: base_inputs_of_simplex(sigma) for sigma in self.simplices
        }
        self.vertices = self._order_vertices()
        self.rank = {v: i for i, v in enumerate(self.vertices)}
        self.firing: Dict[ChrVertex, List[Simplex]] = {
            v: [] for v in self.vertices
        }
        for sigma in self.simplices:
            last = max(sigma, key=lambda v: self.rank[v])
            self.firing[last].append(sigma)
        self.domains = {v: self._domain(v) for v in self.vertices}
        self.nodes_explored = 0

    def _order_vertices(self) -> List[ChrVertex]:
        adjacency: Dict[ChrVertex, set] = {
            v: set() for v in self.domain_complex.vertices
        }
        for sigma in self.simplices:
            if len(sigma) == 2:
                a, b = tuple(sigma)
                adjacency[a].add(b)
                adjacency[b].add(a)
        ordered: List[ChrVertex] = []
        placed: set = set()
        remaining = set(self.domain_complex.vertices)
        while remaining:
            best = min(
                remaining,
                key=lambda v: (
                    -len(adjacency[v] & placed),
                    len(self.inputs_of.get(frozenset([v]), frozenset())),
                    repr(v),
                ),
            )
            ordered.append(best)
            placed.add(best)
            remaining.remove(best)
        return ordered

    def _domain(self, vertex: ChrVertex) -> List[OutputVertex]:
        allowed = self.task.allowed_outputs(
            self.inputs_of[frozenset([vertex])]
        )
        color = vertex.color
        return sorted(
            {
                out
                for sigma in allowed
                for out in sigma
                if out.process == color and frozenset([out]) in allowed
            },
            key=repr,
        )

    def search(self, node_budget: int | None = None):
        assignment: Dict[ChrVertex, OutputVertex] = {}
        total = len(self.vertices)
        if total == 0:
            return {}

        def consistent(vertex: ChrVertex) -> bool:
            for sigma in self.firing[vertex]:
                image = frozenset(assignment[v] for v in sigma)
                if image not in self.task.allowed_outputs(
                    self.inputs_of[sigma]
                ):
                    return False
            return True

        from .solvability import SearchBudgetExceeded

        choice_index = [0] * total
        depth = 0
        while True:
            vertex = self.vertices[depth]
            domain = self.domains[vertex]
            advanced = False
            while choice_index[depth] < len(domain):
                candidate = domain[choice_index[depth]]
                choice_index[depth] += 1
                self.nodes_explored += 1
                if node_budget is not None and self.nodes_explored > node_budget:
                    raise SearchBudgetExceeded(
                        f"exceeded {node_budget} nodes"
                    )
                assignment[vertex] = candidate
                if consistent(vertex):
                    advanced = True
                    break
                del assignment[vertex]
            if advanced:
                if depth + 1 == total:
                    return dict(assignment)
                depth += 1
                choice_index[depth] = 0
            else:
                depth -= 1
                if depth < 0:
                    return None
                assignment.pop(self.vertices[depth], None)


def general_task_solvable(
    affine: AffineTask,
    task: GeneralTask,
    node_budget: int | None = None,
) -> bool:
    """Is the general task solvable by one shot of the affine task?"""
    return GeneralMapSearch(affine, task).search(node_budget) is not None

"""ε-approximate agreement: the iteration dimension of FACT.

The FACT statement quantifies over the number of iterations ``ℓ``:
a task may need *many* rounds of the affine task.  k-set consensus is
decided at ``ℓ = 1``; approximate agreement is the canonical task whose
required ``ℓ`` grows with the precision ε, making the crossover
observable.

Two processes start at 0 and 1 and must output values within ε of each
other, inside the interval spanned by the participating inputs (a solo
participant must output its own input).  Outputs are restricted to the
grid of the geometric realization of ``Chr^m`` of the edge — exact
rational coordinates with denominators ``3^m`` — which is exactly what
an ``ℓ``-round IIS protocol can compute.  One chromatic subdivision of
an edge contracts diameters by 1/3, so the task with ``ε = 3^{-m}`` is
solvable from ``Chr^ℓ s`` iff ``ℓ >= m`` — verified by the map search
in the benchmarks (experiment E14).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from typing import FrozenSet, List

from ..topology.chromatic import ProcessId, standard_simplex
from ..topology.simplex import Simplex
from .task import OutputVertex, Task, output_complex_from_delta


def grid_points(precision: int) -> List[Fraction]:
    """The output grid: multiples of ``3^-precision`` in ``[0, 1]``."""
    denominator = 3**precision
    return [Fraction(k, denominator) for k in range(denominator + 1)]


def approximate_agreement_outputs(
    participants: FrozenSet[ProcessId],
    epsilon: Fraction,
    precision: int,
) -> FrozenSet[Simplex]:
    """``Delta(P)`` for 2-process ε-agreement with inputs 0 and 1.

    * solo participant ``i``: must output its own input ``i``;
    * both participants: any grid pair within ε, anywhere in [0, 1]
      (the hull of the inputs).

    Monotonicity requires solo-allowed outputs to remain allowed with
    larger participation, which holds since ``0`` and ``1`` are grid
    points.
    """
    participants = frozenset(participants)
    result = set()
    grid = grid_points(precision)
    if len(participants) == 1:
        (process,) = participants
        result.add(frozenset({OutputVertex(process, Fraction(process))}))
        return frozenset(result)

    for process in participants:
        for value in grid:
            # Faces: a single decided process may output anything a full
            # output simplex could give it.
            result.add(frozenset({OutputVertex(process, value)}))
    for a, b in combinations(sorted(participants), 2):
        for value_a in grid:
            for value_b in grid:
                if abs(value_a - value_b) <= epsilon:
                    result.add(
                        frozenset(
                            {
                                OutputVertex(a, value_a),
                                OutputVertex(b, value_b),
                            }
                        )
                    )
    return frozenset(result)


def approximate_agreement_task(
    precision_epsilon: int, precision_grid: int | None = None
) -> Task:
    """The 2-process ``3^-precision_epsilon``-agreement task.

    ``precision_grid`` (default: same as the ε precision) controls the
    output grid resolution — the protocol-computable points.
    """
    if precision_epsilon < 0:
        raise ValueError("precision must be non-negative")
    grid = (
        precision_epsilon if precision_grid is None else precision_grid
    )
    epsilon = Fraction(1, 3**precision_epsilon)

    def delta(participants: FrozenSet[ProcessId]) -> FrozenSet[Simplex]:
        return approximate_agreement_outputs(participants, epsilon, grid)

    return Task(
        2,
        standard_simplex(2),
        output_complex_from_delta(2, delta),
        delta,
        name=f"3^-{precision_epsilon}-agreement",
    )


def realized_coordinate(vertex) -> Fraction:
    """Exact position of a ``Chr^m`` edge vertex along ``[0, 1]``.

    Process 0 sits at 0, process 1 at 1; a subdivision vertex
    ``(c, t)`` realizes via the paper's formula
    ``(1/(2k-1))·own + (2/(2k-1))·Σ others`` with ``k = |t|``.
    """
    if isinstance(vertex, int):
        return Fraction(vertex)
    carrier_points = {w: realized_coordinate(w) for w in vertex.carrier}
    own = next(w for w in vertex.carrier if _color(w) == vertex.color)
    k = len(vertex.carrier)
    point = Fraction(1, 2 * k - 1) * carrier_points[own]
    for w, coordinate in carrier_points.items():
        if w != own:
            point += Fraction(2, 2 * k - 1) * coordinate
    return point


def _color(vertex) -> int:
    return vertex if isinstance(vertex, int) else vertex.color


def realization_map(depth: int):
    """The canonical solution at the diagonal ``depth == precision``:
    every vertex of ``Chr^depth`` of the edge outputs its realized
    coordinate.  Facets of the subdivision have diameter exactly
    ``3^-depth``, so the map is carried by Δ."""
    from ..core.affine import full_affine_task

    affine = full_affine_task(2, depth)
    return {
        v: OutputVertex(_color(v), realized_coordinate(v))
        for v in affine.complex.vertices
    }


def solvable_at_depth(precision: int, depth: int) -> bool:
    """Is ``3^-precision``-agreement solvable from ``Chr^depth s``?

    The executable form of the crossover: True iff
    ``depth >= precision``.  The diagonal case is decided by verifying
    the constructive realization map (plain backtracking is slow
    there); off-diagonal cases by exhaustive search.
    """
    from ..core.affine import full_affine_task
    from .solvability import MapSearch, verify_carried_map

    task = approximate_agreement_task(precision)
    affine = full_affine_task(2, depth)
    if depth == precision:
        return verify_carried_map(affine, task, realization_map(depth))
    return MapSearch(affine, task).search() is not None

"""(Generalized) simplex agreement, and affine tasks viewed as tasks.

In simplex agreement processes start on the vertices of ``s`` and must
converge on a simplex of a target subdivision/sub-complex, respecting
carrier inclusion: outputs of a run with participation ``P`` must be
carried by the face ``P`` of ``s``.  An affine task *is* exactly the
instance where the target is a pure sub-complex ``L ⊆ Chr^l s`` — this
module provides the adapter from :class:`repro.core.affine.AffineTask`
to :class:`repro.tasks.task.Task`, letting the solvability machinery
treat affine tasks uniformly.
"""

from __future__ import annotations

from typing import FrozenSet

from ..core.affine import AffineTask
from ..topology.chromatic import (
    ChromaticComplex,
    ChrVertex,
    ProcessId,
    chi,
    standard_simplex,
)
from ..topology.simplex import Simplex
from .task import OutputVertex, Task


def affine_task_as_task(affine: AffineTask) -> Task:
    """The task ``(s, L, Delta)`` with ``Delta(P) = L ∩ Chr^l(P)``.

    Output vertices are wrapped as ``OutputVertex(process, chr_vertex)``
    so the output complex follows the library's task conventions.
    """

    def delta(participants: FrozenSet[ProcessId]) -> FrozenSet[Simplex]:
        restricted = affine.delta(participants)
        return frozenset(
            frozenset(OutputVertex(v.color, v) for v in sigma)
            for sigma in restricted.simplices
        )

    output = ChromaticComplex(
        frozenset(OutputVertex(v.color, v) for v in sigma)
        for sigma in affine.complex.simplices
    )
    return Task(
        affine.n,
        standard_simplex(affine.n),
        output,
        delta,
        name=f"simplex-agreement[{affine.name}]",
    )


def chromatic_simplex_agreement(n: int, depth: int) -> Task:
    """Simplex agreement on the full ``Chr^depth s`` (the ``IS^depth`` task)."""
    from ..core.affine import full_affine_task

    return affine_task_as_task(full_affine_task(n, depth))


def is_valid_agreement(
    affine: AffineTask,
    participants: FrozenSet[ProcessId],
    outputs: FrozenSet[ChrVertex],
) -> bool:
    """Direct checker: outputs form a simplex of ``L`` carried by ``P``."""
    from ..topology.subdivision import carrier_in_s

    if not outputs:
        return False
    if chi(outputs) - frozenset(participants):
        return False
    if outputs not in affine.complex:
        return False
    return carrier_in_s(outputs) <= frozenset(participants)

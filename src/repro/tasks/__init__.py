"""Tasks and the FACT decision procedure.

Task triples ``(I, O, Delta)``, the k-set consensus family, simplex
agreement / affine-tasks-as-tasks, and the backtracking search for a
chromatic simplicial map carried by ``Delta`` — the executable form of
the paper's Theorem 16.
"""

from .task import OutputVertex, Task, output_complex_from_delta
from .set_consensus import (
    consensus_task,
    distinct_decisions,
    set_consensus_outputs,
    set_consensus_task,
)
from .approximate_agreement import (
    approximate_agreement_outputs,
    approximate_agreement_task,
    grid_points,
    realization_map,
    realized_coordinate,
    solvable_at_depth,
)
from .general_task import (
    GeneralMapSearch,
    GeneralTask,
    InputVertex,
    base_inputs,
    binary_consensus_task,
    binary_input_complex,
    binary_k_set_consensus_task,
    general_task_solvable,
    input_complex_from_assignments,
    subdivide_input_complex,
)
from .simplex_agreement import (
    affine_task_as_task,
    chromatic_simplex_agreement,
    is_valid_agreement,
)
from .test_and_set import (
    LOSE,
    WIN,
    k_test_and_set_outputs,
    k_test_and_set_task,
    leader_election_task,
    winners,
)
from .solvability import (
    MapSearch,
    SearchBudgetExceeded,
    find_carried_map,
    minimal_set_consensus,
    solves_set_consensus,
    verify_carried_map,
)

__all__ = [
    "approximate_agreement_outputs",
    "approximate_agreement_task",
    "grid_points",
    "realization_map",
    "realized_coordinate",
    "solvable_at_depth",
    "GeneralMapSearch",
    "GeneralTask",
    "InputVertex",
    "base_inputs",
    "binary_consensus_task",
    "binary_input_complex",
    "binary_k_set_consensus_task",
    "general_task_solvable",
    "input_complex_from_assignments",
    "subdivide_input_complex",
    "OutputVertex",
    "Task",
    "output_complex_from_delta",
    "consensus_task",
    "distinct_decisions",
    "set_consensus_outputs",
    "set_consensus_task",
    "affine_task_as_task",
    "chromatic_simplex_agreement",
    "is_valid_agreement",
    "LOSE",
    "WIN",
    "k_test_and_set_outputs",
    "k_test_and_set_task",
    "leader_election_task",
    "winners",
    "MapSearch",
    "SearchBudgetExceeded",
    "find_carried_map",
    "minimal_set_consensus",
    "solves_set_consensus",
    "verify_carried_map",
]

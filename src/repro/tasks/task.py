"""Distributed tasks as triples ``(I, O, Delta)`` (Section 2).

A task's inputs and outputs are chromatic complexes; the specification
``Delta`` is a carrier map assigning to each input simplex the
sub-complex of allowed output simplices, monotone under inclusion
(``rho ⊆ sigma => Delta(rho) ⊆ Delta(sigma)``).

Output vertices are conventionally pairs ``(process, value)`` colored
by their process; :class:`OutputVertex` fixes that representation so
output complexes compose across modules.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, NamedTuple

from ..topology.chromatic import ChromaticComplex, ProcessId, chi
from ..topology.simplex import Simplex


class OutputVertex(NamedTuple):
    """A decision ``(process, value)``; colored by ``process``."""

    process: ProcessId
    value: Hashable

    @property
    def color(self) -> ProcessId:
        return self.process

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Out(p{self.process}={self.value!r})"


class Task:
    """A task ``(I, O, Delta)`` over ``n`` processes.

    ``delta`` maps a *color set* (the participating processes of an
    input simplex — sufficient for the fixed-input tasks studied here)
    to the set of allowed output simplices.  Full input-sensitive tasks
    can encode inputs in the color-set domain by specializing
    :meth:`allowed_outputs`.
    """

    def __init__(
        self,
        n: int,
        input_complex: ChromaticComplex,
        output_complex: ChromaticComplex,
        delta: Callable[[FrozenSet[ProcessId]], FrozenSet[Simplex]],
        name: str = "task",
    ):
        self.n = n
        self.input_complex = input_complex
        self.output_complex = output_complex
        self._delta = delta
        self.name = name
        self._cache: Dict[FrozenSet[ProcessId], FrozenSet[Simplex]] = {}

    def __repr__(self) -> str:
        return f"Task({self.name}, n={self.n})"

    def allowed_outputs(
        self, participants: Iterable[ProcessId]
    ) -> FrozenSet[Simplex]:
        """``Delta`` of the input simplex with the given participants."""
        participants = frozenset(participants)
        if participants not in self._cache:
            self._cache[participants] = frozenset(self._delta(participants))
        return self._cache[participants]

    def permits(
        self, participants: Iterable[ProcessId], outputs: Iterable[OutputVertex]
    ) -> bool:
        """Is the output simplex allowed when ``participants`` took part?"""
        return frozenset(outputs) in self.allowed_outputs(participants)

    # -- validation ---------------------------------------------------------
    def validate(self) -> None:
        """Check the carrier-map laws; raise ``ValueError`` on failure.

        * monotone: larger participation allows at least as much;
        * chromatic: allowed outputs are colored within the participants;
        * total: full participation allows at least one full output.
        """
        from itertools import combinations

        subsets = [
            frozenset(combo)
            for size in range(1, self.n + 1)
            for combo in combinations(range(self.n), size)
        ]
        for small in subsets:
            for big in subsets:
                if small < big and not (
                    self.allowed_outputs(small) <= self.allowed_outputs(big)
                ):
                    raise ValueError(
                        f"{self.name}: Delta not monotone at "
                        f"{sorted(small)} ⊆ {sorted(big)}"
                    )
        for participants in subsets:
            for sigma in self.allowed_outputs(participants):
                if not chi(sigma) <= participants:
                    raise ValueError(
                        f"{self.name}: output {sigma} colored outside "
                        f"participants {sorted(participants)}"
                    )
                if sigma not in self.output_complex:
                    raise ValueError(
                        f"{self.name}: Delta emits {sigma} outside O"
                    )
        full = frozenset(range(self.n))
        if not any(
            len(sigma) == self.n for sigma in self.allowed_outputs(full)
        ):
            raise ValueError(f"{self.name}: no full output for full input")


def output_complex_from_delta(
    n: int,
    delta: Callable[[FrozenSet[ProcessId]], FrozenSet[Simplex]],
) -> ChromaticComplex:
    """Build ``O`` as the union of ``Delta(P)`` over all participations."""
    from itertools import combinations

    simplices = set()
    for size in range(1, n + 1):
        for combo in combinations(range(n), size):
            simplices.update(delta(frozenset(combo)))
    return ChromaticComplex(simplices)

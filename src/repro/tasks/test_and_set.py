"""k-test-and-set / leader election tasks.

The paper's concluding section points to k-test-and-set (reference
[25], by the same authors) as the next frontier beyond fair
adversaries.  The task itself is readily expressible in this library's
framework: every participant outputs ``win`` or ``lose``, and among the
participants that output, completed executions have between 1 and ``k``
winners.  ``k = 1`` is classic test-and-set / one-shot leader election.

Formally (monotone carrier map): ``Δ(P)`` is the closure of the output
simplices on ``P`` with exactly ``w`` winners for ``1 <= w <= k`` —
faces with fewer (even zero) winners are allowed as partial outputs,
since unseen participants may still win.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet

from ..topology.chromatic import ProcessId, standard_simplex
from ..topology.simplex import Simplex
from .task import OutputVertex, Task, output_complex_from_delta

WIN = "win"
LOSE = "lose"


def k_test_and_set_outputs(
    participants: FrozenSet[ProcessId], k: int
) -> FrozenSet[Simplex]:
    """``Δ(P)``: closures of outputs on ``P`` with 1..k winners."""
    members = sorted(participants)
    result = set()
    for winner_count in range(1, min(k, len(members)) + 1):
        for winners in combinations(members, winner_count):
            winner_set = frozenset(winners)
            full = frozenset(
                OutputVertex(p, WIN if p in winner_set else LOSE)
                for p in members
            )
            # Closure: all faces of the completed output.
            for size in range(1, len(members) + 1):
                for who in combinations(members, size):
                    result.add(
                        frozenset(
                            OutputVertex(
                                p, WIN if p in winner_set else LOSE
                            )
                            for p in who
                        )
                    )
            del full
    return frozenset(result)


def k_test_and_set_task(n: int, k: int) -> Task:
    """The k-test-and-set task over ``n`` processes."""
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")

    def delta(participants: FrozenSet[ProcessId]) -> FrozenSet[Simplex]:
        return k_test_and_set_outputs(participants, k)

    return Task(
        n,
        standard_simplex(n),
        output_complex_from_delta(n, delta),
        delta,
        name=f"{k}-test-and-set",
    )


def leader_election_task(n: int) -> Task:
    """One-shot leader election: exactly one winner (1-TAS)."""
    return k_test_and_set_task(n, 1)


def winners(outputs) -> FrozenSet[ProcessId]:
    """The processes that output ``win`` in an output simplex."""
    return frozenset(
        vertex.process for vertex in outputs if vertex.value == WIN
    )

"""Canonical serialization and content digests for engine artifacts.

Every expensive object the engine caches or ships across process
boundaries — complexes, subdivision vertices, affine tasks, adversaries,
agreement functions, tasks, solution maps — round-trips through a
single canonical codec:

* ``serialize(x)`` produces deterministic JSON text: composite values
  are tagged arrays, and the elements of every set-like value are
  sorted by their own encoded form, so two equal objects *always*
  produce identical bytes regardless of construction order, hash
  randomization, or the process that encoded them;
* ``deserialize(text)`` rebuilds the value (``deserialize(serialize(x))
  == x`` for every supported type with an equality notion);
* ``digest(x)`` is the content address: a SHA-256 over the canonical
  bytes, salted with :data:`SCHEME_VERSION` so that any change to the
  encoding scheme invalidates every previously cached artifact at once.

Tasks (``repro.tasks.task.Task``) carry an opaque ``Delta`` callable,
so they are encoded *by tabulation*: the table of allowed outputs over
all non-empty participations.  That is exactly the view the FACT
decision procedure consults, hence sufficient for solvability queries;
the decoded task's input complex is the standard simplex.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from typing import Any, Dict, FrozenSet, List

from ..adversaries.adversary import Adversary
from ..adversaries.agreement import AgreementFunction
from ..core.affine import AffineTask
from ..solver.api import SolveRequest
from ..topology.chromatic import ChromaticComplex, ChrVertex
from ..topology.complex import SimplicialComplex
from ..tasks.task import OutputVertex, Task

#: Version of the encoding scheme.  Bump on ANY change to the encoders
#: below — the version participates in every digest, so a bump atomically
#: invalidates all previously cached artifacts (see docs/engine.md).
SCHEME_VERSION = 1

_DIGEST_SALT = f"repro.engine:v{SCHEME_VERSION}:"


class SerializationError(TypeError):
    """Raised when a value has no canonical encoding."""


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def _canon_text(encoded: Any) -> str:
    """The canonical JSON text of an already-encoded structure."""
    return json.dumps(
        encoded, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _sorted_canonical(encoded_items: List[Any]) -> List[Any]:
    """Sort encoded elements by their canonical text (set canonicalization)."""
    return sorted(encoded_items, key=_canon_text)


def _task_table(task: Task) -> Dict[FrozenSet[int], FrozenSet]:
    """Tabulate ``Delta`` over all non-empty participations."""
    from itertools import combinations

    table = {}
    for size in range(1, task.n + 1):
        for combo in combinations(range(task.n), size):
            participants = frozenset(combo)
            table[participants] = task.allowed_outputs(participants)
    return table


#: Encoding an affine task or a tabulated ``Delta`` is itself expensive
#: (a cache-key digest would otherwise cost as much as a cache read), so
#: encodings of the big immutable artifact types are memoized.  Keys are
#: held weakly and compared by value, so equal artifacts share one
#: encoding and the memo cannot outlive its objects.
_MEMOIZED_TYPES = (
    ChromaticComplex,
    SimplicialComplex,
    AffineTask,
    AgreementFunction,
    Adversary,
    Task,
)
_ENCODE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def encode(obj: Any) -> Any:
    """Encode a value as a canonical JSON-ready structure."""
    if isinstance(obj, _MEMOIZED_TYPES):
        try:
            return _ENCODE_MEMO[obj]
        except KeyError:
            encoded = _encode(obj)
            _ENCODE_MEMO[obj] = encoded
            return encoded
    return _encode(obj)


def _encode(obj: Any) -> Any:
    if obj is None or isinstance(obj, (bool, str, float)):
        return obj
    if isinstance(obj, int):
        return obj
    # NamedTuple vertex types must be matched before the generic tuple.
    if isinstance(obj, ChrVertex):
        return ["chrv", encode(obj.color), encode(obj.carrier)]
    if isinstance(obj, OutputVertex):
        return ["outv", encode(obj.process), encode(obj.value)]
    if isinstance(obj, tuple):
        return ["tuple", [encode(member) for member in obj]]
    if isinstance(obj, list):
        return ["list", [encode(member) for member in obj]]
    if isinstance(obj, (frozenset, set)):
        return ["fset", _sorted_canonical([encode(member) for member in obj])]
    if isinstance(obj, dict):
        pairs = [[encode(key), encode(value)] for key, value in obj.items()]
        return ["dict", _sorted_canonical(pairs)]
    if isinstance(obj, ChromaticComplex):
        return [
            "ccx",
            _sorted_canonical([encode(facet) for facet in obj.facets]),
        ]
    if isinstance(obj, SimplicialComplex):
        return [
            "scx",
            _sorted_canonical([encode(facet) for facet in obj.facets]),
        ]
    if isinstance(obj, AffineTask):
        return ["affine", obj.n, obj.depth, obj.name, encode(obj.complex)]
    if isinstance(obj, Adversary):
        return ["adv", obj.n, encode(obj.live_sets)]
    if isinstance(obj, AgreementFunction):
        table = [
            [encode(participants), value]
            for participants, value in obj.table().items()
            if participants
        ]
        return ["alpha", obj.n, obj.name, _sorted_canonical(table)]
    if isinstance(obj, Task):
        table = [
            [encode(participants), encode(outputs)]
            for participants, outputs in _task_table(obj).items()
        ]
        return ["task", obj.n, obj.name, _sorted_canonical(table)]
    if isinstance(obj, SolveRequest):
        # Additive tag (SCHEME_VERSION unchanged): request fields are
        # already normalized to canonical order at construction, so no
        # re-sorting happens here.  The kernel is part of the encoding
        # — hence of cache digests — because non-tree-identical kernels
        # return different node counts for the same query.
        return [
            "solvereq",
            encode(obj.affine),
            encode(obj.task),
            obj.budget,
            encode(obj.domain_overrides),
            encode(obj.resume),
            obj.kernel,
        ]
    raise SerializationError(
        f"no canonical encoding for {type(obj).__name__}: {obj!r}"
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def decode(encoded: Any) -> Any:
    """Inverse of :func:`encode`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if not isinstance(encoded, list) or not encoded:
        raise SerializationError(f"malformed encoding: {encoded!r}")
    tag = encoded[0]
    if tag == "chrv":
        return ChrVertex(decode(encoded[1]), decode(encoded[2]))
    if tag == "outv":
        return OutputVertex(decode(encoded[1]), decode(encoded[2]))
    if tag == "tuple":
        return tuple(decode(member) for member in encoded[1])
    if tag == "list":
        return [decode(member) for member in encoded[1]]
    if tag == "fset":
        return frozenset(decode(member) for member in encoded[1])
    if tag == "dict":
        return {decode(key): decode(value) for key, value in encoded[1]}
    if tag == "ccx":
        return ChromaticComplex([decode(facet) for facet in encoded[1]])
    if tag == "scx":
        return SimplicialComplex([decode(facet) for facet in encoded[1]])
    if tag == "affine":
        _, n, depth, name, complex_enc = encoded
        return AffineTask(
            n, depth, decode(complex_enc), name=name, validate=False
        )
    if tag == "adv":
        return Adversary(encoded[1], decode(encoded[2]))
    if tag == "alpha":
        _, n, name, table_enc = encoded
        table = {
            decode(participants): value for participants, value in table_enc
        }
        return AgreementFunction(n, table, name=name, validate=False)
    if tag == "task":
        return _decode_task(encoded)
    if tag == "solvereq":
        _, affine_enc, task_enc, budget, overrides_enc, resume_enc, kernel = (
            encoded
        )
        return SolveRequest(
            affine=decode(affine_enc),
            task=decode(task_enc),
            budget=budget,
            domain_overrides=decode(overrides_enc),
            resume=decode(resume_enc),
            kernel=kernel,
        )
    raise SerializationError(f"unknown tag {tag!r}")


def _decode_task(encoded: Any) -> Task:
    from ..topology.chromatic import standard_simplex

    _, n, name, table_enc = encoded
    table = {
        decode(participants): decode(outputs)
        for participants, outputs in table_enc
    }

    def delta(participants):
        return table.get(frozenset(participants), frozenset())

    all_outputs = set()
    for outputs in table.values():
        all_outputs.update(outputs)
    return Task(
        n,
        standard_simplex(n),
        ChromaticComplex(all_outputs),
        delta,
        name=name,
    )


# ----------------------------------------------------------------------
# Public surface
# ----------------------------------------------------------------------
#: Canonical text of the big artifact types, memoized like their
#: encodings: ``json.dumps`` over a subdivision-sized encoding costs as
#: much as the encode itself, and digests (cache keys, certificate
#: statements) re-serialize the same artifacts constantly.
_SERIALIZE_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def serialize(obj: Any) -> str:
    """Canonical, deterministic JSON text for a supported value."""
    if isinstance(obj, _MEMOIZED_TYPES):
        try:
            return _SERIALIZE_MEMO[obj]
        except KeyError:
            text = _canon_text(encode(obj))
            _SERIALIZE_MEMO[obj] = text
            return text
    return _canon_text(encode(obj))


def deserialize(text: str) -> Any:
    """Rebuild a value from its canonical JSON text."""
    return decode(json.loads(text))


def digest(obj: Any) -> str:
    """The content address of a value: SHA-256 of its canonical bytes."""
    payload = _DIGEST_SALT + serialize(obj)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def tasks_equivalent(a: Task, b: Task) -> bool:
    """Equality of tasks as the decision procedure sees them.

    ``Task`` has no ``__eq__`` (it wraps an opaque callable); two tasks
    are interchangeable for solvability queries iff their tabulated
    ``Delta`` agrees on every participation.
    """
    return a.n == b.n and _task_table(a) == _task_table(b)

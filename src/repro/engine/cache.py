"""Content-addressed on-disk artifact store.

Artifacts are addressed by the :func:`repro.engine.serialize.digest` of
their *job key* — a canonical description of the computation (kind +
inputs), not of the result.  A ``Chr² s`` subdivision or an ``R_A``
construction is therefore computed once per machine, ever: any later
process that asks for the same key gets the stored value back.

Layout (under the cache root, default ``~/.cache/repro-engine`` or
``$REPRO_CACHE_DIR``)::

    objects/<digest[:2]>/<digest>.json    one canonical-JSON artifact each

Writes are atomic (temp file + ``os.replace``), so concurrent engines
sharing a cache directory can only ever observe whole artifacts.
Corrupt or undecodable entries are treated as misses and overwritten.
The digest scheme version participates in every address, so bumping
``SCHEME_VERSION`` orphans (rather than corrupts) old entries — see
``docs/engine.md`` for the invalidation story.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from .serialize import SerializationError, deserialize, digest, serialize

#: Sentinel distinguishing "no cached artifact" from a cached ``None``
#: (a solvability query's answer may legitimately be ``None``).
MISS = object()

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-engine``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


class ArtifactCache:
    """A persistent, content-addressed store of engine artifacts."""

    persistent = True

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return f"ArtifactCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"

    # ------------------------------------------------------------------
    def _path(self, key_digest: str) -> Path:
        return self._objects / key_digest[:2] / f"{key_digest}.json"

    def get(self, key_digest: str) -> Any:
        """The stored artifact for a key digest, or :data:`MISS`."""
        path = self._path(key_digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return MISS
        try:
            value = deserialize(text)
        except (SerializationError, ValueError):
            self.misses += 1
            return MISS
        self.hits += 1
        return value

    def put(self, key_digest: str, value: Any) -> None:
        """Store an artifact atomically under its key digest."""
        path = self._path(key_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = serialize(value)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get_or_compute(
        self, key: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — compute and store on miss."""
        key_digest = digest(key)
        value = self.get(key_digest)
        if value is not MISS:
            return value, True
        value = compute()
        self.put(key_digest, value)
        return value, False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed."""
        removed = 0
        for entry in self._objects.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class NullCache:
    """A cache that never stores anything (``--no-cache``)."""

    persistent = False

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return "NullCache()"

    def get(self, key_digest: str) -> Any:
        self.misses += 1
        return MISS

    def put(self, key_digest: str, value: Any) -> None:
        pass

    def get_or_compute(
        self, key: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        self.misses += 1
        return compute(), False

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0

"""Content-addressed on-disk artifact store.

Artifacts are addressed by the :func:`repro.engine.serialize.digest` of
their *job key* — a canonical description of the computation (kind +
inputs), not of the result.  A ``Chr² s`` subdivision or an ``R_A``
construction is therefore computed once per machine, ever: any later
process that asks for the same key gets the stored value back.

Layout (under the cache root, default ``~/.cache/repro-engine`` or
``$REPRO_CACHE_DIR``)::

    objects/<digest[:2]>/<digest>.json    one canonical-JSON artifact each

Writes are atomic (temp file + ``os.replace``), so concurrent engines
sharing a cache directory can only ever observe whole artifacts.
Corrupt or undecodable entries are treated as misses and overwritten.
The digest scheme version participates in every address, so bumping
``SCHEME_VERSION`` orphans (rather than corrupts) old entries — see
``docs/engine.md`` for the invalidation story.
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional, Tuple

from .serialize import SerializationError, deserialize, digest, serialize

#: Sentinel distinguishing "no cached artifact" from a cached ``None``
#: (a solvability query's answer may legitimately be ``None``).
MISS = object()

_ENV_VAR = "REPRO_CACHE_DIR"
_SHARED_ENV_VAR = "REPRO_SHARED_CACHE"
#: Deserialized artifacts memoized per process when the shared layer is
#: on (the layer's contract is "deserialize once per machine *process
#: set*"; the memo makes repeats within one process free).
_HOT_ENTRIES = 256


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-engine``."""
    env = os.environ.get(_ENV_VAR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


class ArtifactCache:
    """A persistent, content-addressed store of engine artifacts.

    ``shared=True`` (or ``REPRO_SHARED_CACHE=1``; CLI ``--shared-cache``)
    adds the :class:`repro.workers.shm.SharedArtifactSegment` read layer:
    artifact texts are mirrored into one mmap segment under the cache
    root, so every process attached to the same cache directory reads a
    warm artifact from shared memory — plus a bounded per-process memo
    of deserialized values, making a repeat hit free.  The layer is an
    accelerator only: any corruption or capacity limit silently falls
    back to the on-disk store, which remains the single authority
    (default **off**, so disk semantics — including corruption
    surfacing as a miss — are unchanged unless asked for).
    """

    persistent = True

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        *,
        shared: Optional[bool] = None,
        shared_capacity: Optional[int] = None,
    ):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        if shared is None:
            shared = os.environ.get(_SHARED_ENV_VAR, "") not in ("", "0")
        self._shared = None
        self._hot: "OrderedDict[str, Any]" = OrderedDict()
        if shared:
            # Late import: repro.workers imports the engine package.
            from ..workers.shm import DEFAULT_CAPACITY, SharedArtifactSegment

            self._shared = SharedArtifactSegment(
                self.root / "shared" / "artifacts.shm",
                capacity=shared_capacity or DEFAULT_CAPACITY,
            )

    def __repr__(self) -> str:
        return f"ArtifactCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"

    # ------------------------------------------------------------------
    def _path(self, key_digest: str) -> Path:
        return self._objects / key_digest[:2] / f"{key_digest}.json"

    def _remember(self, key_digest: str, value: Any) -> None:
        hot = self._hot
        hot[key_digest] = value
        hot.move_to_end(key_digest)
        while len(hot) > _HOT_ENTRIES:
            hot.popitem(last=False)

    def get(self, key_digest: str) -> Any:
        """The stored artifact for a key digest, or :data:`MISS`."""
        if self._shared is not None:
            if key_digest in self._hot:
                self._hot.move_to_end(key_digest)
                self.hits += 1
                return self._hot[key_digest]
            text = self._shared.get_text(key_digest)
            if text is not None:
                try:
                    value = deserialize(text)
                except (SerializationError, ValueError):
                    # A segment serving undecodable text is not to be
                    # trusted; the disk store below is the authority.
                    self._shared.usable = False
                else:
                    self.hits += 1
                    self.shared_hits += 1
                    self._remember(key_digest, value)
                    return value
        path = self._path(key_digest)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return MISS
        try:
            value = deserialize(text)
        except (SerializationError, ValueError):
            self.misses += 1
            return MISS
        self.hits += 1
        if self._shared is not None:
            self._shared.put_text(key_digest, text)
            self._remember(key_digest, value)
        return value

    def put(self, key_digest: str, value: Any) -> None:
        """Store an artifact atomically under its key digest."""
        path = self._path(key_digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = serialize(value)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self._shared is not None:
            self._shared.put_text(key_digest, text)
            self._remember(key_digest, value)

    def get_or_compute(
        self, key: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — compute and store on miss."""
        key_digest = digest(key)
        value = self.get(key_digest)
        if value is not MISS:
            return value, True
        value = compute()
        self.put(key_digest, value)
        return value, False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored artifact; returns the number removed.

        A maintenance operation: when the shared read layer is on, the
        segment is reset too, but processes already attached to it may
        hold pre-clear index entries — don't clear a cache other
        processes are actively serving from.
        """
        removed = 0
        for entry in self._objects.glob("*/*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        self._hot.clear()
        if self._shared is not None:
            self._shared.reset()
        return removed

    def shared_stats(self) -> Optional[dict]:
        """Shared-segment counters, or ``None`` when the layer is off."""
        if self._shared is None:
            return None
        return self._shared.stats()


class NullCache:
    """A cache that never stores anything (``--no-cache``)."""

    persistent = False

    def __init__(self):
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return "NullCache()"

    def get(self, key_digest: str) -> Any:
        self.misses += 1
        return MISS

    def put(self, key_digest: str, value: Any) -> None:
        pass

    def get_or_compute(
        self, key: Any, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        self.misses += 1
        return compute(), False

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0

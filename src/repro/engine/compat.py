"""One home for every deprecated entry point's warning.

The engine grew several transitional surfaces — positional solve
payload tuples, the ``node_budget``/``max_nodes`` budget aliases, the
module-level ``execute_batch`` executor — and each used to carry its
own ``warnings.warn`` call.  They now all route through
:func:`deprecated`, so the warning category, the removal schedule and
the ``stacklevel`` bookkeeping live in exactly one place, and the
pytest ``error::DeprecationWarning:repro`` filter keeps the library
itself off every one of these paths.

Removal schedule (documented for users in ``docs/engine.md``):

* ``as_solve_request`` legacy 4/5-tuples — accepted with a warning for
  one release after the typed :class:`~repro.solver.api.SolveRequest`
  landed; the adapter then becomes an error.
* ``node_budget`` / ``max_nodes`` keyword aliases — same window; spell
  it ``budget=``.
* ``repro.engine.executor.execute_batch`` — shimmed onto
  :class:`repro.workers.WorkerPool` for one release, then removed.
"""

from __future__ import annotations

import warnings
from typing import Optional

__all__ = ["deprecated", "resolve_budget_aliases"]


def deprecated(message: str, *, stacklevel: int = 3) -> None:
    """Emit the library's one ``DeprecationWarning``.

    ``stacklevel`` counts from *this* frame: ``3`` attributes the
    warning to the caller of the deprecated entry point (1 = here,
    2 = the deprecated entry point, 3 = its caller).
    """
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def resolve_budget_aliases(
    budget: Optional[int],
    *,
    node_budget: Optional[int] = None,
    max_nodes: Optional[int] = None,
    stacklevel: int = 4,
) -> Optional[int]:
    """Fold the deprecated budget keyword aliases into ``budget``.

    ``budget`` wins when several are given; each alias that was passed
    emits one deprecation warning naming it.
    """
    for name, value in (("node_budget", node_budget), ("max_nodes", max_nodes)):
        if value is None:
            continue
        deprecated(
            f"the {name!r} keyword is deprecated; pass budget= instead",
            stacklevel=stacklevel,
        )
        if budget is None:
            budget = value
    return budget

"""Sequential batch execution (and the deprecated pooled entry point).

The in-process path lives here: ``_execute_sequential`` runs every spec
in the calling process in submission order — the bit-identical default
the engine uses for ``jobs=1`` and single-job batches.

The process-parallel path moved to :class:`repro.workers.WorkerPool`
(persistent warm workers, digest+delta wire format, affinity routing);
:class:`repro.engine.jobs.Engine` owns one per process and dispatches
to it directly.  The old module-level ``execute_batch`` remains as a
thin deprecated shim for one release — it builds a throwaway pool per
call, which is exactly the cost profile the redesign removed, so new
code should go through ``Engine`` or ``WorkerPool.run_batch``.

``SearchBudgetExceeded`` is not an error here: it becomes a structured
``budget`` result that the engine turns into a domain-split retry (see
:meth:`repro.engine.jobs.Engine._split_retry`).
"""

from __future__ import annotations

import time
import traceback
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..tasks.solvability import SearchBudgetExceeded


def _execute_sequential(
    pending: Sequence[Tuple[int, "JobSpec"]],
    timeout: Optional[float],
) -> List["JobResult"]:
    """The default path: direct in-process calls, no serialization."""
    from .jobs import JobResult

    results = []
    for index, spec in pending:
        started = time.perf_counter()
        try:
            with obs.span("engine.compute", kind=spec.kind):
                value = spec.run()
            results.append(
                JobResult(
                    index=index,
                    kind=spec.kind,
                    value=value,
                    wall_time=time.perf_counter() - started,
                )
            )
        except SearchBudgetExceeded as exc:
            results.append(
                JobResult(
                    index=index,
                    kind=spec.kind,
                    error="budget",
                    nodes_explored=exc.nodes_explored,
                    wall_time=time.perf_counter() - started,
                )
            )
        except Exception:
            results.append(
                JobResult(
                    index=index,
                    kind=spec.kind,
                    error=traceback.format_exc(limit=8),
                    wall_time=time.perf_counter() - started,
                )
            )
    return results


def execute_batch(
    pending: Sequence[Tuple[int, "JobSpec"]],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List["JobResult"]:
    """Deprecated shim over the sequential path / a throwaway pool.

    Kept for one release so pre-``WorkerPool`` callers keep compiling;
    use :meth:`repro.engine.jobs.Engine.run_jobs` (which owns a
    persistent pool) or :meth:`repro.workers.WorkerPool.run_batch`.
    """
    from .compat import deprecated

    deprecated(
        "execute_batch() is deprecated; use Engine.run_jobs or "
        "repro.workers.WorkerPool.run_batch",
    )
    if jobs <= 1 or len(pending) <= 1:
        return _execute_sequential(pending, timeout)
    from ..workers.pool import WorkerPool

    with WorkerPool(jobs, timeout=timeout) as pool:
        return pool.run_batch(pending)

"""Batch execution: in-process sequential, or a process-pool fan-out.

``execute_batch`` is the engine's only execution primitive.  With
``jobs=1`` it runs every spec in the calling process in submission
order — the bit-identical default path.  With ``jobs>1`` it partitions
the batch into contiguous chunks and dispatches them to a
``ProcessPoolExecutor``; payloads and results cross the process
boundary as canonical serialized text (never pickled closures), each
chunk gets a wall-clock deadline derived from the per-job ``timeout``,
and results are always returned in submission order regardless of
completion order.

``SearchBudgetExceeded`` is not an error here: workers catch it and
return a structured ``budget`` outcome carrying the node count, which
the engine turns into a domain-split retry (see
:meth:`repro.engine.jobs.Engine._split_retry`).

When tracing is enabled (:mod:`repro.obs`), the submitting context's
span carrier rides along with each chunk: workers run their jobs under
a private tracer with the carrier attached, so the per-job
``engine.compute`` / ``engine.codec.*`` spans they produce are parented
under the submitting span, and the finished span dicts come back beside
the outcomes for the parent tracer to reattach.  With tracing off the
carrier is ``None`` and workers skip all of it.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..tasks.solvability import SearchBudgetExceeded
from .serialize import deserialize, serialize

# Outcome tuples crossing the process boundary:
#   ("ok",     serialized_value, wall_time)
#   ("budget", nodes_explored,   wall_time)
#   ("error",  message,          wall_time)
_ChunkItem = Tuple[str, str]  # (kind, serialized payload)
_ChunkReturn = Tuple[List[Tuple[str, Any, float]], List[Dict[str, Any]]]


def _run_chunk(
    chunk: Sequence[_ChunkItem],
    carrier: Optional[Dict[str, str]] = None,
) -> _ChunkReturn:
    """Worker entry point: execute one chunk of serialized jobs.

    Returns ``(outcomes, span_dicts)``; ``span_dicts`` is empty unless
    the submitting process sent a span carrier.
    """
    from .jobs import JOB_KINDS

    # Workers forked from a traced parent inherit its module-global
    # tracer; reset explicitly so worker tracing is governed only by
    # the carrier the submitting batch chose to send.
    tracer = obs.enable() if carrier is not None else None
    if carrier is None:
        obs.disable()

    outcomes: List[Tuple[str, Any, float]] = []
    with obs.attach(carrier):
        for kind, payload_text in chunk:
            started = time.perf_counter()
            try:
                with obs.span("engine.codec.decode", kind=kind):
                    payload = deserialize(payload_text)
                with obs.span("engine.compute", kind=kind):
                    value = JOB_KINDS[kind](payload)
                with obs.span("engine.codec.encode", kind=kind):
                    value_text = serialize(value)
                outcomes.append(
                    ("ok", value_text, time.perf_counter() - started)
                )
            except SearchBudgetExceeded as exc:
                outcomes.append(
                    (
                        "budget",
                        exc.nodes_explored,
                        time.perf_counter() - started,
                    )
                )
            except Exception:
                outcomes.append(
                    (
                        "error",
                        traceback.format_exc(limit=8),
                        time.perf_counter() - started,
                    )
                )
    span_dicts: List[Dict[str, Any]] = []
    if tracer is not None:
        span_dicts = [span_obj.to_dict() for span_obj in tracer.drain()]
        obs.disable()
    return outcomes, span_dicts


def _chunked(items: List, chunk_count: int) -> List[List]:
    """Split into at most ``chunk_count`` contiguous, near-equal chunks."""
    chunk_count = max(1, min(chunk_count, len(items)))
    base, extra = divmod(len(items), chunk_count)
    chunks, start = [], 0
    for index in range(chunk_count):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def execute_batch(
    pending: Sequence[Tuple[int, "JobSpec"]],
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> List["JobResult"]:
    """Run ``(index, spec)`` pairs; results in submission order.

    The ``index`` of each pair is carried through to the corresponding
    :class:`~repro.engine.jobs.JobResult`, so callers can interleave
    cache hits and executed jobs without re-sorting.
    """
    from .jobs import JobResult, JobSpec  # late: avoids an import cycle

    if jobs <= 1 or len(pending) <= 1:
        return _execute_sequential(pending, timeout)
    return _execute_pool(pending, jobs, timeout)


def _execute_sequential(
    pending: Sequence[Tuple[int, "JobSpec"]],
    timeout: Optional[float],
) -> List["JobResult"]:
    """The default path: direct in-process calls, no serialization."""
    from .jobs import JobResult

    results = []
    for index, spec in pending:
        started = time.perf_counter()
        try:
            with obs.span("engine.compute", kind=spec.kind):
                value = spec.run()
            results.append(
                JobResult(
                    index=index,
                    kind=spec.kind,
                    value=value,
                    wall_time=time.perf_counter() - started,
                )
            )
        except SearchBudgetExceeded as exc:
            results.append(
                JobResult(
                    index=index,
                    kind=spec.kind,
                    error="budget",
                    nodes_explored=exc.nodes_explored,
                    wall_time=time.perf_counter() - started,
                )
            )
        except Exception:
            results.append(
                JobResult(
                    index=index,
                    kind=spec.kind,
                    error=traceback.format_exc(limit=8),
                    wall_time=time.perf_counter() - started,
                )
            )
    return results


def _execute_pool(
    pending: Sequence[Tuple[int, "JobSpec"]],
    jobs: int,
    timeout: Optional[float],
) -> List["JobResult"]:
    from .jobs import JobResult

    # Contiguous chunks, a few per worker: amortizes IPC/codec overhead
    # on many-small-job batches while keeping the pool load-balanced.
    indexed = list(pending)
    chunks = _chunked(indexed, jobs * 4)
    with obs.span("engine.codec.encode", jobs=len(indexed)):
        payload_chunks = [
            [(spec.kind, serialize(spec.payload)) for _, spec in chunk]
            for chunk in chunks
        ]
    # The submitting span context rides along so worker spans reattach
    # under it; ``None`` (tracing off) costs workers nothing.
    carrier = obs.current_carrier()
    tracer = obs.get_tracer()

    results: List["JobResult"] = []
    timed_out = False
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures = [
            pool.submit(_run_chunk, payload, carrier)
            for payload in payload_chunks
        ]
        for chunk, future in zip(chunks, futures):
            chunk_timeout = timeout * len(chunk) if timeout else None
            try:
                outcomes, worker_spans = future.result(timeout=chunk_timeout)
                if tracer is not None and worker_spans:
                    tracer.ingest(worker_spans)
            except FutureTimeoutError:
                timed_out = True
                for index, spec in chunk:
                    results.append(
                        JobResult(index=index, kind=spec.kind, error="timeout")
                    )
                continue
            except Exception:
                message = traceback.format_exc(limit=8)
                for index, spec in chunk:
                    results.append(
                        JobResult(index=index, kind=spec.kind, error=message)
                    )
                continue
            for (index, spec), (status, data, wall) in zip(chunk, outcomes):
                if status == "ok":
                    with obs.span("engine.codec.decode", kind=spec.kind):
                        value = deserialize(data)
                    results.append(
                        JobResult(
                            index=index,
                            kind=spec.kind,
                            value=value,
                            wall_time=wall,
                        )
                    )
                elif status == "budget":
                    results.append(
                        JobResult(
                            index=index,
                            kind=spec.kind,
                            error="budget",
                            nodes_explored=data,
                            wall_time=wall,
                        )
                    )
                else:
                    results.append(
                        JobResult(
                            index=index, kind=spec.kind, error=data, wall_time=wall
                        )
                    )
    finally:
        if timed_out:
            # A hung CPU-bound worker would block a graceful shutdown
            # forever; reclaim the pool by force.
            for process in getattr(pool, "_processes", {}).values():
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)
    results.sort(key=lambda result: result.index)
    return results

"""Typed job specs and the engine's batch API.

A :class:`JobSpec` is a pure description of one expensive computation —
a subdivision, an ``R_A`` construction, an adversary classification, a
FACT solvability query (plain, certificate-producing, or raced across
the kernel portfolio), a certificate check, or one Algorithm-1 fuzz
case.  Specs are
canonically serializable (see :mod:`repro.engine.serialize`), which
gives each job a content-addressed cache key and lets the executor ship
it to worker processes without pickling closures.

:class:`Engine` is the façade the rest of the library talks to:
``run_jobs`` executes any batch with caching, parallelism, per-job
timing and deterministic result order; ``classify_many`` /
``solve_many`` / ``r_affine_many`` / ``fuzz_many`` wrap the common
batch shapes with typed results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..adversaries.adversary import Adversary
from ..adversaries.agreement import AgreementFunction, agreement_function_of
from ..adversaries.fairness import is_fair
from ..adversaries.setcon import setcon
from ..core.affine import AffineTask
from ..core.ra import DEFAULT_VARIANT, r_affine
from ..solver.api import (
    DEFAULT_KERNEL,
    KERNELS,
    SolveRequest,
    SolveResult,
    as_solve_request,
    run_request,
)
from ..solver.split import PORTFOLIO_KERNELS, portfolio_requests, split_request
from ..tasks.solvability import SearchBudgetExceeded, resolve_budget
from ..tasks.task import Task
from ..topology.subdivision import iterated_subdivision
from ..topology.chromatic import standard_simplex
from .cache import MISS, NullCache
from .serialize import digest

# ----------------------------------------------------------------------
# Job kinds: pure functions from a payload tuple to a serializable value
# ----------------------------------------------------------------------
def _compute_chr(payload: tuple) -> Any:
    n, m = payload
    # Not chr_complex(): workers and cold cache fills must not silently
    # depend on the in-process lru_cache being warm.
    return iterated_subdivision(standard_simplex(n), m)


def _compute_classify(payload: tuple) -> Any:
    (adversary,) = payload
    from ..analysis.landscape import alpha_signature

    alpha = agreement_function_of(adversary)
    return (
        is_fair(adversary),
        adversary.is_superset_closed(),
        adversary.is_symmetric(),
        setcon(adversary),
        alpha_signature(alpha),
    )


def _compute_r_affine(payload: tuple) -> Any:
    alpha, variant = payload
    return r_affine(alpha, variant)


def _compute_solve(payload: tuple) -> Any:
    # Typed payload: a 1-tuple wrapping a SolveRequest.  Legacy
    # positional 4/5-tuples still work through the adapter below, which
    # emits a DeprecationWarning.
    result = run_request(as_solve_request(payload))
    return result.as_pair()


def _compute_portfolio(payload: tuple) -> Any:
    # One solve raced across the kernel portfolio.  In a worker or on
    # the sequential path there is nobody to race against, so the
    # degenerate semantics run the canonical lane (the first portfolio
    # kernel) inline; the pooled engine path intercepts this kind and
    # races the lanes on distinct workers instead (see
    # ``Engine._race_portfolio``).  The value is always
    # ``(mapping, nodes, winner_kernel)``.
    lane = portfolio_requests(as_solve_request(payload))[0]
    result = run_request(lane)
    return (result.mapping, result.nodes, lane.kernel)


def _compute_certify(payload: tuple) -> Any:
    # One FACT query that returns the portable certificate document
    # (solvable / unsolvable / resumable budget stub).  Budget overruns
    # are part of the value — a stub, not an error — so certify jobs
    # never enter the solve split-retry path.  Certificates are
    # kernel-independent (extraction coerces to a tree-identical
    # kernel), so the payload carries no kernel and cache keys are
    # stable across engine kernel settings.
    affine, task, budget = payload
    from ..certify.extract import certificate_for

    return certificate_for(affine, task, budget)


def _compute_check(payload: tuple) -> Any:
    (cert,) = payload
    from ..certify.checker import check

    return check(cert).to_dict()


def _compute_fuzz(payload: tuple) -> Any:
    alpha, affine, case_seed = payload
    from ..runtime.algorithm1 import run_fuzz_case

    outcome = run_fuzz_case(alpha, affine, case_seed)
    return (outcome.in_affine_task, outcome.result.steps_taken)


def _compute_simulate(payload: tuple) -> Any:
    # Explore schedules of one library protocol under generated fault
    # plans; the value is the JSON-safe exploration report (including
    # the first violating schedule as a replayable artifact).
    protocol, adversary, n, t, k, schedules, seed = payload
    from ..sim.oracle import simulate_params

    return simulate_params(protocol, adversary, n, t, k, schedules, seed)


def _compute_oracle(payload: tuple) -> Any:
    # One differential-oracle check: the simulate report plus the
    # reference verdict (FACT for crash cases, the n > 3t regime for
    # Byzantine ones) and the agreement bit.
    protocol, adversary, n, t, k, schedules, seed = payload
    from ..sim.oracle import oracle_params

    return oracle_params(protocol, adversary, n, t, k, schedules, seed)


def _compute_sweep(payload: tuple) -> Any:
    # One landscape sweep cell: classify the adversary and (when fair)
    # decide one set-consensus task on its affine task R_A under a node
    # budget.  The record is fully deterministic, so cells are safe to
    # cache content-addressed and to persist as sweep checkpoint stubs.
    from ..sweep.cells import compute_cell

    return compute_cell(payload)


def _compute_sweep_resume(payload: tuple) -> Any:
    # A budget-escalated re-run of a sweep cell (payload + escalation
    # level).  Distinct kind so the escalated value gets its own cache
    # address and never shadows the base cell's record.
    from ..sweep.cells import compute_cell_resume

    return compute_cell_resume(payload)


def _compute_sleep(payload: tuple) -> Any:
    # Synthetic workload: sleep for a wall-clock duration, then return
    # the token.  Exists so timeout handling and service load tests can
    # exercise slow jobs deterministically without heavy computation.
    seconds, token = payload
    time.sleep(seconds)
    return token


def _compute_crash(payload: tuple) -> Any:
    # Synthetic failure injection: kill the executing process outright,
    # mid-job, with no cleanup — ``os._exit`` skips every handler.  This
    # is how worker-pool crash recovery (restart + bounded re-dispatch)
    # is tested deterministically instead of racing SIGKILL from the
    # outside.  Never run it on an in-process engine: with ``jobs=1``
    # the "worker" is you.
    import os as _os

    (code,) = payload
    _os._exit(code)


#: kind -> compute function.  Worker processes resolve kinds through
#: this registry, so adding a job type is one entry + one payload codec.
JOB_KINDS: Dict[str, Callable[[tuple], Any]] = {
    "chr": _compute_chr,
    "classify": _compute_classify,
    "r_affine": _compute_r_affine,
    "solve": _compute_solve,
    "portfolio": _compute_portfolio,
    "certify": _compute_certify,
    "check": _compute_check,
    "fuzz": _compute_fuzz,
    "simulate": _compute_simulate,
    "oracle": _compute_oracle,
    "sweep": _compute_sweep,
    "sweep_resume": _compute_sweep_resume,
    "sleep": _compute_sleep,
    "crash": _compute_crash,
}


@dataclass(frozen=True, eq=True)
class JobSpec:
    """One unit of engine work: a kind plus its canonical payload."""

    kind: str
    payload: tuple

    def cache_key(self) -> tuple:
        """The content-addressed identity of this computation."""
        return ("repro.engine.job", self.kind, self.payload)

    def run(self) -> Any:
        """Execute in-process (the sequential and worker code path)."""
        return JOB_KINDS[self.kind](self.payload)


@dataclass
class JobResult:
    """Outcome of one job: value + provenance and cost accounting."""

    index: int
    kind: str
    value: Any = None
    wall_time: float = 0.0
    cache_hit: bool = False
    #: True when this result was not computed for this slot: an
    #: identical spec earlier in the same batch did the work and the
    #: value was fanned out (see ``Engine.run_jobs`` dedup).
    coalesced: bool = False
    error: Optional[str] = None
    nodes_explored: Optional[int] = None
    splits: int = 0
    #: The solve kernel that produced the value (``solve`` jobs only).
    kernel: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


ProgressCallback = Callable[[JobResult], None]


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class Engine:
    """Batch runner: cache short-circuit, then sequential or pooled work.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every job in the
        calling process, in submission order — bit-identical to calling
        the underlying functions directly.
    cache:
        An :class:`~repro.engine.cache.ArtifactCache` (persistent) or
        :class:`~repro.engine.cache.NullCache` (default: no caching).
    timeout:
        Optional per-job wall-clock budget, enforced on the parallel
        path (seconds).
    progress:
        Optional callback invoked with each :class:`JobResult` as it
        completes (completion order; the returned list is always in
        submission order).
    split_retries:
        How many levels a ``solve`` job that raises
        :class:`SearchBudgetExceeded` is retried for: each level splits
        the domain into independent sub-jobs and doubles the per-job
        node budget, so level ``r`` spends at most ``2**r`` times the
        original budget per slice before the error is surfaced.
    kernel:
        The solve kernel queries default to when they don't choose one
        (``legacy``, ``bitset``, ``fc``; see :mod:`repro.solver`).
        Kernels whose node counts differ from legacy cache under
        kernel-specific keys, so switching kernels never serves a
        mismatched cached count.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache=None,
        timeout: Optional[float] = None,
        progress: Optional[ProgressCallback] = None,
        split_retries: int = 3,
        kernel: str = DEFAULT_KERNEL,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
        self.jobs = jobs
        self.cache = cache if cache is not None else NullCache()
        self.timeout = timeout
        self.progress = progress
        self.split_retries = split_retries
        self.kernel = kernel
        #: Jobs answered by batch-level dedup instead of computation.
        self.deduped = 0
        #: The persistent worker pool (``jobs > 1`` only), built lazily
        #: on the first pooled batch and reused across ``run_jobs``
        #: calls — that persistence is what keeps worker-side payload
        #: objects and solver setups warm between batches.
        self._pool = None

    def __repr__(self) -> str:
        return f"Engine(jobs={self.jobs}, cache={self.cache!r})"

    # ------------------------------------------------------------------
    # Worker-pool lifecycle
    # ------------------------------------------------------------------
    def _worker_pool(self):
        """The engine's persistent :class:`repro.workers.WorkerPool`."""
        if self._pool is None:
            from ..workers.pool import WorkerPool

            self._pool = WorkerPool(self.jobs, timeout=self.timeout)
            self._pool.start()
        return self._pool

    def _execute(self, pending: List[Tuple[int, JobSpec]]) -> List[JobResult]:
        """Dispatch one deduplicated batch: sequential or pooled.

        ``portfolio`` specs are intercepted on the pooled path — even a
        single-spec batch — and raced across workers (see
        :meth:`_race_portfolio`); everything else keeps the historical
        routing (in-process when it would not help to parallelize).
        """
        from .executor import _execute_sequential

        if self.jobs <= 1:
            return _execute_sequential(pending, self.timeout)
        races = [item for item in pending if item[1].kind == "portfolio"]
        rest = [item for item in pending if item[1].kind != "portfolio"]
        results: List[JobResult] = []
        if rest:
            if len(rest) == 1 and not races:
                return _execute_sequential(rest, self.timeout)
            results.extend(self._worker_pool().run_batch(rest))
        for index, spec in races:
            results.append(self._race_portfolio(index, spec))
        return results

    def _race_portfolio(self, index: int, spec: JobSpec) -> JobResult:
        """Race one solve across the kernel portfolio on the pool.

        Each portfolio kernel becomes a ``solve`` lane dispatched to a
        distinct worker; the first lane to return a verdict wins and the
        losers are cancelled through the pool's kill-and-restart
        machinery (:meth:`repro.workers.WorkerPool.race`).  The result
        value is ``(mapping, nodes, winner_kernel)`` — identical in
        shape to the sequential degenerate, but the winner (and its
        node count) depends on which kernel finished first, so raced
        values are witness-nondeterministic.  The solvability verdict
        itself is kernel-independent, hence deterministic.

        Budget overruns surface as ``error="budget"`` without the
        ``solve`` split-retry (a race already *is* the retry strategy).
        """
        request = as_solve_request(spec.payload, warn=False)
        lanes = portfolio_requests(request)
        with obs.span(
            "solver.portfolio",
            lanes=len(lanes),
            kernels=",".join(lane.kernel for lane in lanes),
        ) as race_span:
            raced = self._worker_pool().race(
                [JobSpec("solve", (lane,)) for lane in lanes]
            )
            winner_kernel = lanes[raced.index].kernel
            race_span.set_attr("winner_lane", raced.index)
            race_span.set_attr("winner_kernel", winner_kernel)
        if not raced.ok:
            return JobResult(
                index=index,
                kind=spec.kind,
                error=raced.error,
                nodes_explored=raced.nodes_explored,
                wall_time=raced.wall_time,
            )
        mapping, nodes = raced.value
        return JobResult(
            index=index,
            kind=spec.kind,
            value=(mapping, nodes, winner_kernel),
            wall_time=raced.wall_time,
            nodes_explored=nodes,
            kernel=winner_kernel,
        )

    def close(self) -> None:
        """Release the worker pool (idempotent; the engine stays usable —
        the next pooled batch starts a fresh pool)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def worker_stats(self) -> Optional[Dict[str, Any]]:
        """Pool dispatch/affinity counters, or ``None`` (no pool yet)."""
        if self._pool is None:
            return None
        return self._pool.stats()

    # ------------------------------------------------------------------
    def run_jobs(self, specs: Sequence[JobSpec]) -> List[JobResult]:
        """Execute a batch; results are in submission order.

        Cache hits never reach the executor, and identical specs in one
        batch are computed once: later duplicates receive the leader's
        result with ``coalesced=True`` (so CLI ``batch`` and the service
        batcher both pay for each distinct computation exactly once).
        ``solve`` jobs that blow their node budget are retried as
        domain-partitioned sub-jobs (see
        :func:`repro.tasks.solvability.split_search_domains`); if the
        budget still fires after ``split_retries`` levels, the result
        carries ``error="budget"`` and the aggregated node count.
        """
        specs = list(specs)
        with obs.span(
            "engine.batch", jobs=self.jobs, specs=len(specs)
        ) as batch_span:
            results: List[Optional[JobResult]] = [None] * len(specs)
            pending: List[Tuple[int, JobSpec]] = []
            digests: List[str] = []
            leaders: Dict[str, int] = {}
            followers: Dict[str, List[int]] = {}

            hits = 0
            with obs.span("engine.cache.lookup") as lookup_span:
                for index, spec in enumerate(specs):
                    key_digest = digest(spec.cache_key())
                    digests.append(key_digest)
                    started = time.perf_counter()
                    value = self.cache.get(key_digest)
                    if value is not MISS:
                        hits += 1
                        result = JobResult(
                            index=index,
                            kind=spec.kind,
                            value=value,
                            wall_time=time.perf_counter() - started,
                            cache_hit=True,
                        )
                        self._finish(results, result)
                    elif key_digest in leaders:
                        followers.setdefault(key_digest, []).append(index)
                        self.deduped += 1
                    else:
                        leaders[key_digest] = index
                        pending.append((index, spec))
                lookup_span.set_attr("hits", hits)
                lookup_span.set_attr("pending", len(pending))

            if pending:
                for result in self._execute(pending):
                    if (
                        result.error == "budget"
                        and specs[result.index].kind == "solve"
                    ):
                        result = self._split_retry(
                            specs[result.index], result
                        )
                    key_digest = digests[result.index]
                    if result.ok:
                        self.cache.put(key_digest, result.value)
                    self._finish(results, result)
                    for follower in followers.get(key_digest, ()):
                        self._finish(
                            results,
                            replace(result, index=follower, coalesced=True),
                        )

            for result in results:
                if result is None or not result.ok:
                    continue
                if result.kind == "solve":
                    result.nodes_explored = result.value[1]
                    payload = specs[result.index].payload
                    if len(payload) == 1 and isinstance(
                        payload[0], SolveRequest
                    ):
                        result.kernel = payload[0].kernel
                elif result.kind == "portfolio":
                    result.nodes_explored = result.value[1]
                    result.kernel = result.value[2]
            batch_span.set_attr("cache_hits", hits)
            batch_span.set_attr("computed", len(pending))
            batch_span.set_attr("coalesced", len(specs) - hits - len(pending))
            return [result for result in results if result is not None]

    def _finish(self, results: List[Optional[JobResult]], result: JobResult):
        results[result.index] = result
        if self.progress is not None:
            self.progress(result)

    # ------------------------------------------------------------------
    def _split_retry(self, spec: JobSpec, failed: JobResult) -> JobResult:
        """Node-budget-aware retry: partition the domain, escalate the budget.

        Each retry level splits the first branching vertex's domain into
        independent slices *and* doubles the per-slice node budget —
        splitting alone cannot shrink deep backtracking subtrees, so the
        geometric escalation is what guarantees termination, while the
        domain partition keeps slices independent for the worker pool.
        Slices are explored in canonical order, so the retry is fully
        deterministic.  After ``split_retries`` levels an unresolved
        slice surfaces as ``error="budget"`` with the aggregated node
        count.
        """
        with obs.span(
            "engine.split_retry",
            failed_nodes=failed.nodes_explored or 0,
            levels=self.split_retries,
        ) as retry_span:
            result = self._split_retry_impl(spec, failed)
            retry_span.set_attr("splits", result.splits)
            retry_span.set_attr("resolved", result.error is None)
            return result

    def _split_retry_impl(self, spec: JobSpec, failed: JobResult) -> JobResult:
        from dataclasses import replace as dc_replace

        request = as_solve_request(spec.payload, warn=False)
        total_nodes = failed.nodes_explored or 0
        splits_done = 0
        budget_hit = False
        # Frontier items: (solve request with escalated budget, level).
        # Slices are SolveRequests, so their override domains normalize
        # to structural vertex_key order at construction — the split
        # portfolio is platform- and hash-seed-stable.
        frontier: List[Tuple[SolveRequest, int]] = [
            (dc_replace(request, budget=request.budget * 2), 1)
        ]

        while frontier:
            current, level = frontier.pop(0)
            if level > self.split_retries:
                budget_hit = True
                continue
            sub_requests = split_request(current, parts=2) or [
                dc_replace(current, resume=None)
            ]
            splits_done += 1
            sub_pending = [
                (i, JobSpec("solve", (sub,)))
                for i, sub in enumerate(sub_requests)
            ]
            sub_results = self._execute(sub_pending)
            for sub_result, sub_request in zip(sub_results, sub_requests):
                if sub_result.error == "budget":
                    total_nodes += sub_result.nodes_explored or 0
                    frontier.append(
                        (
                            dc_replace(
                                sub_request, budget=sub_request.budget * 2
                            ),
                            level + 1,
                        )
                    )
                    continue
                if not sub_result.ok:
                    return JobResult(
                        index=failed.index,
                        kind=spec.kind,
                        error=sub_result.error,
                        wall_time=failed.wall_time + sub_result.wall_time,
                        splits=splits_done,
                    )
                mapping, nodes = sub_result.value
                total_nodes += nodes
                if mapping is not None:
                    return JobResult(
                        index=failed.index,
                        kind=spec.kind,
                        value=(mapping, total_nodes),
                        wall_time=failed.wall_time,
                        nodes_explored=total_nodes,
                        splits=splits_done,
                    )
        if budget_hit:
            return JobResult(
                index=failed.index,
                kind=spec.kind,
                error="budget",
                wall_time=failed.wall_time,
                nodes_explored=total_nodes,
                splits=splits_done,
            )
        return JobResult(
            index=failed.index,
            kind=spec.kind,
            value=(None, total_nodes),
            wall_time=failed.wall_time,
            nodes_explored=total_nodes,
            splits=splits_done,
        )

    # ------------------------------------------------------------------
    # Typed batch wrappers
    # ------------------------------------------------------------------
    def chr_many(self, requests: Iterable[Tuple[int, int]]) -> List[Any]:
        """Batch ``Chr^m s`` subdivisions for ``(n, m)`` requests."""
        specs = [JobSpec("chr", (n, m)) for n, m in requests]
        return [self._value(r) for r in self.run_jobs(specs)]

    def classify_many(self, adversaries: Iterable[Adversary]) -> List[Any]:
        """Per-adversary landscape classification (Figure 2 / E15).

        Returns :class:`repro.analysis.landscape.LandscapeEntry` records
        equal to the ones the legacy sequential path produces.
        """
        from ..analysis.landscape import LandscapeEntry

        adversaries = list(adversaries)
        specs = [JobSpec("classify", (a,)) for a in adversaries]
        entries = []
        for adversary, result in zip(adversaries, self.run_jobs(specs)):
            fair, ssc, sym, power, alpha_key = self._value(result)
            entries.append(
                LandscapeEntry(
                    adversary=adversary,
                    fair=fair,
                    superset_closed=ssc,
                    symmetric=sym,
                    power=power,
                    alpha_key=alpha_key,
                )
            )
        return entries

    def r_affine_many(
        self,
        alphas: Iterable[AgreementFunction],
        variant: str = DEFAULT_VARIANT,
    ) -> List[AffineTask]:
        """Batch ``R_A`` constructions (Definition 9)."""
        specs = [JobSpec("r_affine", (alpha, variant)) for alpha in alphas]
        return [self._value(r) for r in self.run_jobs(specs)]

    def _request_of(self, query) -> SolveRequest:
        """Coerce a query — request or ``(L, T, budget)`` triple — to a
        :class:`SolveRequest` carrying this engine's default kernel."""
        if isinstance(query, SolveRequest):
            return query
        affine, task, budget = query
        return SolveRequest(
            affine=affine, task=task, budget=budget, kernel=self.kernel
        )

    def solve_many(
        self,
        queries: Iterable,
    ) -> List[Tuple[Optional[Dict], int]]:
        """Batch FACT solvability queries.

        Each query is a :class:`SolveRequest` or an ``(L, T, budget)``
        triple (triples inherit the engine's kernel); each result is
        ``(mapping_or_None, nodes_explored)``.  Budget overruns that
        survive split-retry raise :class:`SearchBudgetExceeded` with the
        aggregated node count.
        """
        specs = [
            JobSpec("solve", (self._request_of(query),))
            for query in queries
        ]
        return [self._value(r) for r in self.run_jobs(specs)]

    def solve_results(self, queries: Iterable) -> List[SolveResult]:
        """Like :meth:`solve_many`, but typed: one
        :class:`SolveResult` (verdict/map/nodes/kernel) per query."""
        requests = [self._request_of(query) for query in queries]
        pairs = self.solve_many(requests)
        return [
            SolveResult(
                verdict="solvable" if mapping is not None else "unsolvable",
                mapping=mapping,
                nodes=nodes,
                kernel=request.kernel,
            )
            for request, (mapping, nodes) in zip(requests, pairs)
        ]

    def solve(
        self,
        affine: AffineTask,
        task: Task,
        budget: Optional[int] = None,
        *,
        kernel: Optional[str] = None,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Optional[Dict]:
        """One FACT query through the engine; returns the mapping."""
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        request = SolveRequest(
            affine=affine,
            task=task,
            budget=budget,
            kernel=kernel or self.kernel,
        )
        return self.solve_many([request])[0][0]

    def portfolio_many(
        self,
        queries: Iterable,
    ) -> List[Tuple[Optional[Dict], int, str]]:
        """Batch FACT queries raced across the kernel portfolio.

        Each query is a :class:`SolveRequest` or ``(L, T, budget)``
        triple; each result is ``(mapping_or_None, nodes, kernel)``
        where ``kernel`` names the portfolio member that produced the
        value.  On a pooled engine (``jobs > 1``) the lanes genuinely
        race on distinct workers and losers are cancelled; sequentially
        the canonical lane runs alone.  The query's own ``kernel`` field
        is ignored (and normalized for the cache key): the portfolio is
        always :data:`repro.solver.split.PORTFOLIO_KERNELS`.  Raced
        values are cached first-winner, so a cache hit may report a
        different kernel than a fresh race would elect — the verdict is
        kernel-independent either way.
        """
        specs = []
        for query in queries:
            request = replace(
                self._request_of(query),
                kernel=PORTFOLIO_KERNELS[0],
                resume=None,
            )
            specs.append(JobSpec("portfolio", (request,)))
        return [self._value(r) for r in self.run_jobs(specs)]

    def portfolio(
        self,
        affine: AffineTask,
        task: Task,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> SolveResult:
        """One portfolio-raced FACT query; the result's ``kernel`` is
        the winning lane's kernel."""
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        request = SolveRequest(affine=affine, task=task, budget=budget)
        mapping, nodes, kernel = self.portfolio_many([request])[0]
        return SolveResult(
            verdict="solvable" if mapping is not None else "unsolvable",
            mapping=mapping,
            nodes=nodes,
            kernel=kernel,
        )

    def certify_many(
        self,
        queries: Iterable[Tuple[AffineTask, Task, Optional[int]]],
    ) -> List[Dict]:
        """Batch certified FACT queries; each result is a certificate.

        Certificates are content-addressed-cached like ``solve`` values.
        Budget overruns come back as resumable ``budget`` stubs (part of
        the value, never an error), so no split-retry happens here —
        callers hold the stub and can choose to resume.
        """
        specs = [
            JobSpec("certify", (affine, task, budget))
            for affine, task, budget in queries
        ]
        return [self._value(r) for r in self.run_jobs(specs)]

    def certify(
        self,
        affine: AffineTask,
        task: Task,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Dict:
        """One certified FACT query; returns the certificate document."""
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        return self.certify_many([(affine, task, budget)])[0]

    def check_cert(self, cert: Dict) -> Dict:
        """Run the independent checker on one certificate (cached).

        Returns :meth:`repro.certify.checker.CheckReport.to_dict` output.
        The check itself only trusts :mod:`repro.certify.checker`; the
        engine merely caches the report under the certificate's content
        address.
        """
        specs = [JobSpec("check", (cert,))]
        return self._value(self.run_jobs(specs)[0])

    def resume_solve(
        self,
        affine: AffineTask,
        task: Task,
        stub: Dict,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Tuple[Optional[Dict], int]:
        """Re-issue a budget-interrupted solve, seeded from its stub.

        The stub must be a ``budget`` certificate for exactly this
        ``(affine, task)`` pair (digest-checked); its consistent prefix
        becomes the search's starting assignment, so only the unexplored
        remainder of the space is visited.  Resume positions encode the
        legacy tree, so the request runs on a tree-identical kernel
        even when the engine defaults to ``fc``.  Returns
        ``(mapping_or_None, nodes_explored)``.
        """
        from ..certify import witness

        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        statement = stub.get("statement", {}) if isinstance(stub, dict) else {}
        if stub.get("kind") != "budget":
            raise ValueError(f"not a budget stub: kind={stub.get('kind')!r}")
        if statement.get("affine_digest") != digest(affine) or statement.get(
            "task_digest"
        ) != digest(task):
            raise ValueError(
                "stub statement digests do not match (affine, task)"
            )
        partial = witness.partial_assignment_of(stub)
        request = SolveRequest(
            affine=affine,
            task=task,
            budget=budget,
            resume=partial,
            kernel=self.kernel,
        )
        return self._value(self.run_jobs([JobSpec("solve", (request,))])[0])

    def minimal_set_consensus_many(
        self,
        affines: Iterable[AffineTask],
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
    ) -> List[int]:
        """Per-affine-task minimal solvable ``k`` (the E11 table).

        Issues the whole ``(L, k)`` grid as one batch — per-``(R_A, T)``
        queries are independent, which is what the executor exploits.
        """
        from ..tasks.set_consensus import set_consensus_task

        budget = resolve_budget(budget, node_budget=node_budget)
        affines = list(affines)
        queries = []
        grid: List[Tuple[int, int]] = []
        for row, affine in enumerate(affines):
            for k in range(1, affine.n + 1):
                grid.append((row, k))
                queries.append(
                    (affine, set_consensus_task(affine.n, k), budget)
                )
        answers: Dict[int, int] = {}
        for (row, k), (mapping, _nodes) in zip(
            grid, self.solve_many(queries)
        ):
            if mapping is not None and (row not in answers or k < answers[row]):
                answers[row] = k
        if len(answers) != len(affines):
            raise AssertionError("n-set consensus is always solvable")
        return [answers[row] for row in range(len(affines))]

    def simulate(
        self,
        protocol: str,
        adversary: Optional[Adversary] = None,
        *,
        n: int = 3,
        t: int = 0,
        k: int = 1,
        schedules: int = 4,
        seed: int = 7,
    ) -> Dict:
        """Explore one protocol under generated fault plans (cached)."""
        spec = JobSpec(
            "simulate", (protocol, adversary, n, t, k, schedules, seed)
        )
        return self._value(self.run_jobs([spec])[0])

    def simulate_many(self, payloads: Iterable[tuple]) -> List[Dict]:
        """Batch protocol explorations (same payload shape as ``oracle``)."""
        specs = [JobSpec("simulate", tuple(p)) for p in payloads]
        return [self._value(r) for r in self.run_jobs(specs)]

    def oracle_many(self, payloads: Iterable[tuple]) -> List[Dict]:
        """Batch differential-oracle checks.

        Each payload is the 7-tuple an :class:`OracleCase
        <repro.sim.oracle.OracleCase>` produces via ``payload()`` —
        the full parameter set is the cache identity, so a changed
        grid never serves a stale verdict.
        """
        specs = [JobSpec("oracle", tuple(p)) for p in payloads]
        return [self._value(r) for r in self.run_jobs(specs)]

    def fuzz_many(
        self,
        alpha: AgreementFunction,
        affine: AffineTask,
        runs: int,
        seed: int = 0,
    ) -> List[Tuple[bool, int]]:
        """Batch Algorithm-1 fuzz cases (one schedule per job).

        Case seeds are derived deterministically from ``(seed, index)``,
        so the batch is reproducible and independent of ``jobs``.
        """
        from ..runtime.algorithm1 import fuzz_case_seed

        specs = [
            JobSpec("fuzz", (alpha, affine, fuzz_case_seed(seed, index)))
            for index in range(runs)
        ]
        return [self._value(r) for r in self.run_jobs(specs)]

    # ------------------------------------------------------------------
    def _value(self, result: JobResult) -> Any:
        if result.ok:
            return result.value
        if result.error == "budget":
            raise SearchBudgetExceeded(
                "node budget exceeded after split-retry",
                nodes_explored=result.nodes_explored or 0,
            )
        raise RuntimeError(
            f"engine job {result.kind}#{result.index} failed: {result.error}"
        )

    def stats(self) -> Dict[str, int]:
        """Aggregate cache + dedup statistics for this engine."""
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "deduped": self.deduped,
        }

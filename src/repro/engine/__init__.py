"""The compute engine: cached, batch-parallel expensive computation.

``repro.engine`` is the single entry point for everything costly in the
reproduction — ``Chr^m s`` subdivisions, affine-task (``R_A``)
constructions, per-adversary landscape classification, FACT solvability
queries, and Algorithm-1 fuzz batches:

* :mod:`~repro.engine.serialize` — canonical, deterministic codecs and
  content digests for every artifact type;
* :mod:`~repro.engine.cache` — a content-addressed on-disk store, so an
  artifact is computed once per machine, ever;
* :mod:`~repro.engine.executor` — sequential or process-pool batch
  execution with deterministic result order, per-job timeouts, and
  structured budget outcomes;
* :mod:`~repro.engine.jobs` — typed job specs and the batch API
  (:class:`Engine` with ``run_jobs`` / ``solve_many`` /
  ``classify_many`` / ``r_affine_many`` / ``fuzz_many``).

The sequential in-process path (``jobs=1``, no cache) is the default
everywhere and stays bit-identical with calling the underlying
functions directly; parallelism and persistence are strictly opt-in
(``--jobs N`` / ``--cache-dir`` on the CLI).  See ``docs/engine.md``.
"""

from ..solver.api import SolveRequest, SolveResult
from .cache import MISS, ArtifactCache, NullCache, default_cache_dir
from .jobs import Engine, JobResult, JobSpec
from .serialize import (
    SCHEME_VERSION,
    SerializationError,
    deserialize,
    digest,
    serialize,
    tasks_equivalent,
)

__all__ = [
    "ArtifactCache",
    "Engine",
    "JobResult",
    "JobSpec",
    "MISS",
    "NullCache",
    "SCHEME_VERSION",
    "SerializationError",
    "SolveRequest",
    "SolveResult",
    "default_cache_dir",
    "deserialize",
    "digest",
    "serialize",
    "tasks_equivalent",
]

"""Connectivity and homology of simplicial complexes.

The paper's concluding remarks contrast adversaries whose affine tasks
are *link-connected* (such as ``t``-resilience) with those that are not
(such as 1-obstruction-freedom, Figure 7a).  This module provides the
machinery to make those remarks executable:

* graph (0-)connectivity of a complex's 1-skeleton,
* link-connectivity (every vertex/simplex link is connected),
* Euler characteristic,
* homology ranks over GF(2) from boundary matrices (numpy),

which together distinguish the examples computed in the benchmarks.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from .complex import SimplicialComplex
from .simplex import dim


def one_skeleton_graph(K: SimplicialComplex) -> nx.Graph:
    """The 1-skeleton of ``K`` as an undirected graph."""
    graph = nx.Graph()
    graph.add_nodes_from(K.vertices)
    for edge in K.simplices_of_dim(1):
        a, b = tuple(edge)
        graph.add_edge(a, b)
    return graph


def is_connected(K: SimplicialComplex) -> bool:
    """Is the complex (0-)connected?  Empty complexes count as connected."""
    if K.is_empty():
        return True
    graph = one_skeleton_graph(K)
    return nx.is_connected(graph)


def connected_components(K: SimplicialComplex) -> int:
    """Number of connected components of the 1-skeleton."""
    if K.is_empty():
        return 0
    return nx.number_connected_components(one_skeleton_graph(K))


def is_link_connected(K: SimplicialComplex) -> bool:
    """Is the link of every simplex of codimension >= 2 connected?

    This is the notion the paper invokes when discussing why the
    ``t``-resilient characterization of Saraph et al. can rely on
    continuous maps while general fair adversaries cannot.
    """
    top = K.dimension
    for sigma in K.simplices:
        if dim(sigma) <= top - 2:
            link = K.link(sigma)
            if not link.is_empty() and not is_connected(link):
                return False
    return True


def euler_characteristic(K: SimplicialComplex) -> int:
    """``sum_d (-1)^d f_d`` over the f-vector."""
    return sum((-1) ** d * count for d, count in enumerate(K.f_vector()))


def boundary_matrix(K: SimplicialComplex, d: int) -> np.ndarray:
    """GF(2) boundary matrix from ``d``-simplices to ``(d-1)``-simplices."""
    rows = sorted(K.simplices_of_dim(d - 1), key=repr)
    cols = sorted(K.simplices_of_dim(d), key=repr)
    row_index = {sigma: i for i, sigma in enumerate(rows)}
    matrix = np.zeros((len(rows), len(cols)), dtype=np.uint8)
    for j, sigma in enumerate(cols):
        for vertex in sigma:
            face = sigma - {vertex}
            if face in row_index:
                matrix[row_index[face], j] ^= 1
    return matrix


def _gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) by Gaussian elimination."""
    work = matrix.copy() % 2
    rank = 0
    rows, cols = work.shape
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
        for row in range(rows):
            if row != pivot_row and work[row, col]:
                work[row] ^= work[pivot_row]
        pivot_row += 1
        rank += 1
        if pivot_row == rows:
            break
    return rank


def betti_numbers(K: SimplicialComplex) -> List[int]:
    """GF(2) Betti numbers ``b_0, ..., b_dim`` of the complex.

    ``b_d = dim ker ∂_d - dim im ∂_{d+1}`` with ``∂_0 = 0``.
    """
    if K.is_empty():
        return []
    top = K.dimension
    ranks: Dict[int, int] = {}
    for d in range(1, top + 1):
        ranks[d] = _gf2_rank(boundary_matrix(K, d))
    ranks[0] = 0
    ranks[top + 1] = 0
    betti = []
    for d in range(top + 1):
        n_d = len(K.simplices_of_dim(d))
        kernel = n_d - ranks[d]
        betti.append(kernel - ranks[d + 1])
    return betti


def homology_summary(K: SimplicialComplex) -> Dict[str, object]:
    """A compact homological profile used by benchmarks and reports."""
    betti = betti_numbers(K)
    return {
        "f_vector": K.f_vector(),
        "euler_characteristic": euler_characteristic(K),
        "betti_gf2": betti,
        "connected": is_connected(K),
        "link_connected": is_link_connected(K),
    }

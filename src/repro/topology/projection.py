"""The chromatic carrier projection ``Chr K -> K``.

Sending a subdivision vertex ``(c, sigma)`` to the vertex of ``sigma``
colored ``c`` is a chromatic simplicial map — the canonical retraction
used throughout ACT-style arguments ("forget the round").  Iterating it
collapses ``Chr^m K`` onto ``K`` one level at a time.

The map is carried by the carrier map (each simplex lands inside its
own carrier), which the tests verify alongside simpliciality.
"""

from __future__ import annotations

from typing import Dict

from .chromatic import ChromaticComplex, ChrVertex, color_of
from .maps import SimplicialMap
from .simplex import Vertex


def project_vertex(vertex: ChrVertex) -> Vertex:
    """``(c, sigma) -> the member of sigma colored c``."""
    if not isinstance(vertex, ChrVertex):
        raise TypeError(f"{vertex!r} is not a subdivision vertex")
    for member in vertex.carrier:
        if color_of(member) == vertex.color:
            return member
    raise ValueError(
        f"carrier of {vertex!r} has no member of its color; "
        "self-inclusion violated"
    )


def carrier_projection_map(
    subdivided: ChromaticComplex, base: ChromaticComplex
) -> SimplicialMap:
    """The projection ``Chr K -> K`` as a validated simplicial map."""
    vertex_map: Dict[Vertex, Vertex] = {
        v: project_vertex(v) for v in subdivided.vertices
    }
    return SimplicialMap(vertex_map, subdivided.complex, base.complex)


def project_to_base(vertex: Vertex) -> Vertex:
    """Collapse a ``Chr^m s`` vertex all the way to its process id."""
    current = vertex
    while isinstance(current, ChrVertex):
        current = project_vertex(current)
    return current

"""Enumeration of immediate-snapshot runs and ordered set partitions.

A one-shot immediate snapshot (IS) execution on a set of processes is,
combinatorially, an *ordered set partition* of that set: the processes
arrive in concurrency classes ``B1, B2, ..., Bk`` and each process in
``Bi`` returns the view ``B1 ∪ ... ∪ Bi``.  Facets of the standard
chromatic subdivision ``Chr s`` are in bijection with these ordered
partitions (Figure 3 of the paper shows the two 3-process extremes),
and their number is the Fubini (ordered Bell) number.

This module provides the enumeration, the bijection, and the Fubini
numbers used by tests and benchmarks as ground truth.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from .chromatic import ChrVertex, color_of

OrderedPartition = Tuple[FrozenSet, ...]


def ordered_set_partitions(items: Iterable) -> Iterator[OrderedPartition]:
    """Yield every ordered set partition of ``items``.

    Each partition is a tuple of non-empty, pairwise-disjoint frozensets
    whose union is ``items``.  The empty collection has exactly one
    (empty) ordered partition.
    """
    pool = sorted(set(items), key=repr)

    def generate(remaining: Tuple) -> Iterator[OrderedPartition]:
        if not remaining:
            yield ()
            return
        for block in _non_empty_subsets(remaining):
            block_set = frozenset(block)
            tail = tuple(x for x in remaining if x not in block_set)
            for suffix in generate(tail):
                yield (block_set,) + suffix

    yield from generate(tuple(pool))


def _non_empty_subsets(items: Sequence) -> Iterator[Tuple]:
    from itertools import combinations

    for size in range(1, len(items) + 1):
        yield from combinations(items, size)


@lru_cache(maxsize=None)
def fubini_number(n: int) -> int:
    """The number of ordered set partitions of an ``n``-set.

    ``a(n) = sum_{k=1..n} C(n, k) * a(n-k)`` with ``a(0) = 1``;
    the sequence starts 1, 1, 3, 13, 75, 541, 4683.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if n == 0:
        return 1
    from math import comb

    return sum(comb(n, k) * fubini_number(n - k) for k in range(1, n + 1))


def views_of_partition(partition: OrderedPartition) -> dict:
    """Map each item to its IS view under the ordered partition.

    A process in block ``Bi`` sees ``B1 ∪ ... ∪ Bi``.
    """
    views = {}
    seen: set = set()
    for block in partition:
        seen |= set(block)
        snapshot = frozenset(seen)
        for item in block:
            views[item] = snapshot
    return views


def partition_to_chr_facet(partition: OrderedPartition) -> FrozenSet[ChrVertex]:
    """The facet of ``Chr`` corresponding to an ordered IS run.

    The carrier of the vertex of each process is its IS view.  The
    partition blocks must consist of *colored* vertices (process ids or
    :class:`ChrVertex`); the resulting facet colors each vertex by its
    process.
    """
    views = views_of_partition(partition)
    return frozenset(
        ChrVertex(color_of(item), view) for item, view in views.items()
    )


def chr_facet_to_partition(facet: Iterable[ChrVertex]) -> OrderedPartition:
    """Invert :func:`partition_to_chr_facet`.

    Vertices of a ``Chr`` facet are grouped by carrier; ordering the
    distinct carriers by inclusion (they form a chain, by the IS
    containment property) recovers the blocks: the block of carrier
    ``V`` holds the members of ``V`` not in any smaller carrier.

    The items of the returned partition are the *underlying vertices*
    of the subdivided simplex: for each vertex ``(c, V)`` of the facet,
    the member of ``V`` colored ``c``.
    """
    facet = list(facet)
    carriers = sorted({v.carrier for v in facet}, key=len)
    for smaller, larger in zip(carriers, carriers[1:]):
        if not smaller < larger:
            raise ValueError("carriers do not form a chain; not an IS facet")
    blocks: List[FrozenSet] = []
    previous: FrozenSet = frozenset()
    for carrier in carriers:
        blocks.append(frozenset(carrier - previous))
        previous = carrier
    return tuple(blocks)


def all_is_views(items: Iterable) -> Iterator[dict]:
    """Yield the view map of every one-shot IS execution on ``items``."""
    for partition in ordered_set_partitions(items):
        yield views_of_partition(partition)


def is_valid_is_views(views: dict) -> bool:
    """Check the three IS properties for a map ``item -> view``.

    * self-inclusion: ``item in views[item]``;
    * containment: views are pairwise ordered by inclusion;
    * immediacy: ``item in views[other] => views[item] <= views[other]``.
    """
    items = list(views)
    for item in items:
        if item not in views[item]:
            return False
    for a in items:
        for b in items:
            va, vb = views[a], views[b]
            if not (va <= vb or vb <= va):
                return False
            if a in vb and not va <= vb:
                return False
    return True

"""Abstract simplicial complexes.

A :class:`SimplicialComplex` is stored by its facets (maximal simplices)
and materializes the full face poset lazily.  It implements exactly the
operators the paper relies on:

* closure ``Cl`` (:meth:`SimplicialComplex.closure`),
* star ``St`` (:meth:`SimplicialComplex.star`),
* link (:meth:`SimplicialComplex.link`),
* k-skeleton ``Skel^k`` (:meth:`SimplicialComplex.skeleton`),
* pure complement ``Pc`` (:meth:`SimplicialComplex.pure_complement`),
  the construct introduced in Section 2 of the paper,
* purity and dimension queries.

Simplices are ``frozenset`` objects (see :mod:`repro.topology.simplex`).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, List, Optional, Set

from .simplex import Simplex, Vertex, dim, faces


class SimplicialComplex:
    """A finite abstract simplicial complex, represented by its facets.

    Parameters
    ----------
    simplices:
        Any iterable of simplices (vertex ``frozenset``/sets).  The
        complex is their downward closure; non-maximal input simplices
        are absorbed into facets.

    Notes
    -----
    Instances are immutable and hashable-by-identity; equality compares
    the simplex sets.
    """

    def __init__(self, simplices: Iterable[Iterable[Vertex]]):
        candidates: List[Simplex] = sorted(
            {frozenset(sigma) for sigma in simplices if sigma},
            key=len,
            reverse=True,
        )
        facets: List[Simplex] = []
        for sigma in candidates:
            if not any(sigma < other or sigma == other for other in facets):
                facets.append(sigma)
        self._facets: FrozenSet[Simplex] = frozenset(facets)
        self._simplices: Optional[FrozenSet[Simplex]] = None
        self._vertices: Optional[FrozenSet[Vertex]] = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def facets(self) -> FrozenSet[Simplex]:
        """The maximal simplices of the complex."""
        return self._facets

    @property
    def simplices(self) -> FrozenSet[Simplex]:
        """All non-empty simplices (the downward closure of the facets)."""
        if self._simplices is None:
            closed: Set[Simplex] = set()
            for facet in self._facets:
                for face in faces(facet):
                    closed.add(face)
            self._simplices = frozenset(closed)
        return self._simplices

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set of the complex."""
        if self._vertices is None:
            collected: Set[Vertex] = set()
            for facet in self._facets:
                collected.update(facet)
            self._vertices = frozenset(collected)
        return self._vertices

    @property
    def dimension(self) -> int:
        """Maximum simplex dimension; ``-1`` for the empty complex."""
        if not self._facets:
            return -1
        return max(dim(facet) for facet in self._facets)

    def __contains__(self, sigma: Iterable[Vertex]) -> bool:
        sigma = frozenset(sigma)
        if not sigma:
            return False
        return any(sigma <= facet for facet in self._facets)

    def __len__(self) -> int:
        return len(self.simplices)

    def __iter__(self) -> Iterator[Simplex]:
        return iter(self.simplices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SimplicialComplex):
            return NotImplemented
        return self._facets == other._facets

    def __hash__(self) -> int:
        return hash(self._facets)

    def __repr__(self) -> str:
        return (
            f"SimplicialComplex(dim={self.dimension}, "
            f"vertices={len(self.vertices)}, facets={len(self._facets)})"
        )

    # ------------------------------------------------------------------
    # Structural predicates
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the complex has no simplices."""
        return not self._facets

    def is_pure(self, dimension: Optional[int] = None) -> bool:
        """True when every facet has the same dimension.

        When ``dimension`` is given, additionally require that common
        facet dimension to equal it.
        """
        if not self._facets:
            return True
        dims = {dim(facet) for facet in self._facets}
        if len(dims) != 1:
            return False
        if dimension is not None:
            return dims == {dimension}
        return True

    def is_facet(self, sigma: Iterable[Vertex]) -> bool:
        """``facet(sigma, K)``: is ``sigma`` maximal in this complex?"""
        return frozenset(sigma) in self._facets

    def simplices_of_dim(self, d: int) -> FrozenSet[Simplex]:
        """All simplices of dimension exactly ``d``."""
        return frozenset(sigma for sigma in self.simplices if dim(sigma) == d)

    def f_vector(self) -> List[int]:
        """The f-vector: entry ``d`` counts simplices of dimension ``d``."""
        if self.is_empty():
            return []
        counts = [0] * (self.dimension + 1)
        for sigma in self.simplices:
            counts[dim(sigma)] += 1
        return counts

    # ------------------------------------------------------------------
    # Operators from the paper
    # ------------------------------------------------------------------
    def star(self, simplices: Iterable[Iterable[Vertex]]) -> FrozenSet[Simplex]:
        """``St(S, K)``: all simplices of ``K`` having a face in ``S``.

        Following the paper, the star is the *set* of simplices
        ``{sigma in K | faces(sigma) ∩ S != ∅}`` — not necessarily a
        complex.
        """
        targets = {frozenset(sigma) for sigma in simplices}
        return frozenset(
            sigma
            for sigma in self.simplices
            if any(face in targets for face in faces(sigma))
        )

    def link(self, tau: Iterable[Vertex]) -> "SimplicialComplex":
        """The link of ``tau``: ``{sigma | sigma ∩ tau = ∅, sigma ∪ tau ∈ K}``."""
        tau = frozenset(tau)
        members = [
            sigma
            for sigma in self.simplices
            if not (sigma & tau) and (sigma | tau) in self
        ]
        return SimplicialComplex(members)

    def skeleton(self, k: int) -> "SimplicialComplex":
        """``Skel^k K``: the sub-complex of simplices of dimension <= k."""
        if k < 0:
            return SimplicialComplex([])
        return SimplicialComplex(
            sigma for sigma in self.simplices if dim(sigma) <= k
        )

    def pure_complement(
        self, simplices: Iterable[Iterable[Vertex]]
    ) -> "SimplicialComplex":
        """``Pc(S, K)`` (Section 2 of the paper).

        The maximal pure sub-complex of ``K`` of the same dimension as
        ``K`` that does not intersect ``S``:
        ``Cl({sigma in facets(K) | faces(sigma) ∩ S = ∅})``.

        Only facets of top dimension are retained so that the result is
        pure of ``K``'s dimension.
        """
        targets = {frozenset(sigma) for sigma in simplices}
        top = self.dimension
        kept = [
            facet
            for facet in self._facets
            if dim(facet) == top
            and not any(face in targets for face in faces(facet))
        ]
        return SimplicialComplex(kept)

    def restrict(self, allowed_vertices: Iterable[Vertex]) -> "SimplicialComplex":
        """The full sub-complex induced on a vertex subset."""
        allowed = frozenset(allowed_vertices)
        members = [sigma for sigma in self.simplices if sigma <= allowed]
        return SimplicialComplex(members)

    def sub_complex(
        self, predicate: Callable[[Simplex], bool]
    ) -> "SimplicialComplex":
        """Downward closure of the simplices satisfying ``predicate``."""
        return SimplicialComplex(
            sigma for sigma in self.simplices if predicate(sigma)
        )

    def union(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """Union of two complexes (closure of the facet union)."""
        return SimplicialComplex(list(self._facets) + list(other._facets))

    def intersection(self, other: "SimplicialComplex") -> "SimplicialComplex":
        """Intersection of two complexes."""
        return SimplicialComplex(self.simplices & other.simplices)

    def is_sub_complex_of(self, other: "SimplicialComplex") -> bool:
        """True when every simplex of this complex belongs to ``other``."""
        return self.simplices <= other.simplices


def closure(simplices: Iterable[Iterable[Vertex]]) -> SimplicialComplex:
    """``Cl(S)``: the complex formed by all faces of simplices in ``S``."""
    return SimplicialComplex(simplices)


def standard_simplex_complex(n: int) -> SimplicialComplex:
    """The standard ``(n-1)``-simplex on vertices ``0..n-1`` as a complex."""
    if n <= 0:
        raise ValueError("the standard simplex needs at least one vertex")
    return SimplicialComplex([frozenset(range(n))])

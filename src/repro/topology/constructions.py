"""Standard constructions: join, cone, suspension, spheres.

The combinatorial toolbox surrounding the paper's arguments —
Herlihy–Rajsbaum's superset-closed characterization goes through
(c-2)-connectedness and Nerve-lemma gluing, whose basic vocabulary is
joins and cones.  These constructions (with their homology signatures
validated in the tests) round out the topology substrate.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable

from .complex import SimplicialComplex


def join(K: SimplicialComplex, L: SimplicialComplex) -> SimplicialComplex:
    """The join ``K * L``: simplices ``sigma ∪ tau``.

    Vertex sets must be disjoint.
    """
    if K.vertices & L.vertices:
        raise ValueError("join requires disjoint vertex sets")
    if K.is_empty():
        return L
    if L.is_empty():
        return K
    return SimplicialComplex(
        [facet_k | facet_l for facet_k in K.facets for facet_l in L.facets]
    )


def cone(K: SimplicialComplex, apex: Hashable) -> SimplicialComplex:
    """The cone over ``K`` with a fresh apex (always contractible)."""
    if apex in K.vertices:
        raise ValueError("apex must be a fresh vertex")
    if K.is_empty():
        return SimplicialComplex([{apex}])
    return SimplicialComplex(
        [facet | {apex} for facet in K.facets]
    )


def suspension(
    K: SimplicialComplex, north: Hashable = "N", south: Hashable = "S"
) -> SimplicialComplex:
    """The suspension ``S^0 * K`` (two cones glued along ``K``)."""
    if {north, south} & K.vertices or north == south:
        raise ValueError("poles must be fresh and distinct")
    return cone(K, north).union(cone(K, south))


def sphere(dimension: int, tag: str = "v") -> SimplicialComplex:
    """The boundary of a ``(dimension + 1)``-simplex: a combinatorial
    ``dimension``-sphere."""
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    vertices = [f"{tag}{i}" for i in range(dimension + 2)]
    return SimplicialComplex(
        [
            frozenset(combo)
            for combo in combinations(vertices, dimension + 1)
        ]
    )


def disjoint_union(
    K: SimplicialComplex, L: SimplicialComplex
) -> SimplicialComplex:
    """The disjoint union (vertex sets must already be disjoint)."""
    if K.vertices & L.vertices:
        raise ValueError("disjoint union requires disjoint vertex sets")
    return K.union(L)

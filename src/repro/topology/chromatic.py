"""Chromatic simplicial complexes.

A chromatic complex is a simplicial complex together with a
non-collapsing simplicial coloring map ``chi`` onto the standard simplex
``s`` — in distributed-computing terms, every vertex is owned by a
process, and no simplex contains two vertices of the same process.

The module also fixes the library-wide representation of subdivision
vertices, :class:`ChrVertex`: a vertex of ``Chr K`` is the pair
``(color, carrier)`` of the paper, where ``carrier`` is (the vertex set
of) a simplex of ``K`` containing a vertex of that color.  Iterating the
construction nests carriers: a ``Chr² s`` vertex carries a frozenset of
``ChrVertex`` objects, each of which carries a frozenset of process
ids.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, NamedTuple, Optional

from .complex import SimplicialComplex
from .simplex import Vertex

ProcessId = int
ColorSet = FrozenSet[ProcessId]


class ChrVertex(NamedTuple):
    """A vertex ``(color, carrier)`` of a standard chromatic subdivision.

    ``color`` is the owning process id; ``carrier`` is the simplex of
    the subdivided complex that carries the vertex — for a first
    subdivision of ``s`` this is a set of process ids (the immediate
    snapshot view), for deeper subdivisions a set of :class:`ChrVertex`.
    """

    color: ProcessId
    carrier: frozenset

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ChrVertex({self.color}, {sorted(map(repr, self.carrier))})"


def color_of(vertex: Vertex) -> ProcessId:
    """The process color of a vertex.

    Process ids themselves (``int``) are their own color — this makes
    the standard simplex ``s`` chromatic with ``chi`` the identity, as
    in the paper.  Subdivision vertices carry their color explicitly.
    """
    if isinstance(vertex, ChrVertex):
        return vertex.color
    if isinstance(vertex, int):
        return vertex
    color = getattr(vertex, "color", None)
    if isinstance(color, int):
        return color
    raise TypeError(f"vertex {vertex!r} has no color")


def chi(sigma: Iterable[Vertex]) -> ColorSet:
    """``chi(sigma)``: the set of colors of the vertices of ``sigma``."""
    return frozenset(color_of(v) for v in sigma)


def is_rainbow(sigma: Iterable[Vertex]) -> bool:
    """True when all vertices of ``sigma`` have pairwise distinct colors."""
    sigma = list(sigma)
    return len({color_of(v) for v in sigma}) == len(sigma)


class ChromaticComplex:
    """A simplicial complex whose vertices are properly colored.

    The coloring is implicit (via :func:`color_of`); construction
    validates that every simplex is rainbow (``chi`` is non-collapsing).
    """

    def __init__(self, simplices: Iterable[Iterable[Vertex]]):
        self._complex = SimplicialComplex(simplices)
        for facet in self._complex.facets:
            if not is_rainbow(facet):
                raise ValueError(
                    f"simplex {set(facet)!r} repeats a color; "
                    "chromatic complexes must be properly colored"
                )

    # -- delegation -----------------------------------------------------
    @property
    def complex(self) -> SimplicialComplex:
        """The underlying uncolored simplicial complex."""
        return self._complex

    @property
    def facets(self):
        return self._complex.facets

    @property
    def simplices(self):
        return self._complex.simplices

    @property
    def vertices(self):
        return self._complex.vertices

    @property
    def dimension(self) -> int:
        return self._complex.dimension

    def __contains__(self, sigma) -> bool:
        return sigma in self._complex

    def __len__(self) -> int:
        return len(self._complex)

    def __iter__(self):
        return iter(self._complex)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChromaticComplex):
            return self._complex == other._complex
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._complex)

    def __repr__(self) -> str:
        return (
            f"ChromaticComplex(dim={self.dimension}, "
            f"colors={sorted(self.colors())}, facets={len(self.facets)})"
        )

    # -- chromatic structure --------------------------------------------
    def colors(self) -> ColorSet:
        """All colors appearing in the complex."""
        return chi(self.vertices)

    def vertices_of_color(self, color: ProcessId) -> FrozenSet[Vertex]:
        """All vertices owned by process ``color``."""
        return frozenset(v for v in self.vertices if color_of(v) == color)

    def is_pure(self, dimension: Optional[int] = None) -> bool:
        return self._complex.is_pure(dimension)

    def f_vector(self):
        return self._complex.f_vector()

    def skeleton(self, k: int) -> "ChromaticComplex":
        return ChromaticComplex(self._complex.skeleton(k).facets)

    def sub_complex(self, predicate) -> "ChromaticComplex":
        return ChromaticComplex(self._complex.sub_complex(predicate).facets)

    def restrict_colors(self, colors: Iterable[ProcessId]) -> "ChromaticComplex":
        """The sub-complex of simplices colored within ``colors``."""
        allowed = frozenset(colors)
        return ChromaticComplex(
            sigma for sigma in self.simplices if chi(sigma) <= allowed
        )


def standard_simplex(n: int) -> ChromaticComplex:
    """The standard chromatic ``(n-1)``-simplex ``s`` on processes ``0..n-1``.

    Vertices are the process ids themselves and ``chi`` is the identity,
    exactly as in Appendix A of the paper.
    """
    if n <= 0:
        raise ValueError("need at least one process")
    return ChromaticComplex([frozenset(range(n))])

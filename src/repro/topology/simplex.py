"""Simplices as hashable vertex sets.

Throughout the library a *simplex* is represented by a ``frozenset`` of
hashable vertices.  This module collects the small vocabulary of
operations on simplices used everywhere else: faces, dimension,
boundary, canonical construction.

The representation choice follows the paper's combinatorial language
(Appendix A): a simplex *is* its vertex set, a face *is* a subset, and
all structure (colors, carriers) lives on the vertices themselves or in
the enclosing :class:`~repro.topology.complex.SimplicialComplex`.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import FrozenSet, Hashable, Iterable, Iterator

Vertex = Hashable
Simplex = FrozenSet[Vertex]


def simplex(vertices: Iterable[Vertex]) -> Simplex:
    """Build a simplex (a ``frozenset``) from an iterable of vertices."""
    return frozenset(vertices)


EMPTY_SIMPLEX: Simplex = frozenset()


def dim(sigma: Simplex) -> int:
    """Dimension of a simplex: ``|sigma| - 1``.

    The empty simplex has dimension ``-1`` by the usual convention.
    """
    return len(sigma) - 1


def faces(sigma: Simplex, *, include_empty: bool = False) -> Iterator[Simplex]:
    """Yield every face (subset) of ``sigma``.

    Faces are yielded in increasing size.  By default the empty face is
    omitted, matching the paper's convention that simplices are
    non-empty vertex sets.
    """
    start = 0 if include_empty else 1
    vertices = sorted(sigma, key=repr)
    for size in range(start, len(vertices) + 1):
        for combo in combinations(vertices, size):
            yield frozenset(combo)


def proper_faces(sigma: Simplex) -> Iterator[Simplex]:
    """Yield the non-empty faces of ``sigma`` other than ``sigma`` itself."""
    for face in faces(sigma):
        if len(face) < len(sigma):
            yield face


def boundary(sigma: Simplex) -> Iterator[Simplex]:
    """Yield the codimension-1 faces of ``sigma``.

    For a ``d``-simplex this yields its ``d + 1`` facets of dimension
    ``d - 1``; for a vertex it yields nothing.
    """
    if len(sigma) <= 1:
        return
    for vertex in sigma:
        yield sigma - {vertex}


def is_face(tau: Simplex, sigma: Simplex) -> bool:
    """True when ``tau`` is a face of ``sigma`` (i.e. a subset)."""
    return tau <= sigma


def is_proper_face(tau: Simplex, sigma: Simplex) -> bool:
    """True when ``tau`` is a face of ``sigma`` distinct from ``sigma``."""
    return tau < sigma


def vertices_of(simplices: Iterable[Simplex]) -> Simplex:
    """Union of the vertex sets of the given simplices."""
    return frozenset(chain.from_iterable(simplices))


#: Memoized structural keys.  Vertices recur constantly in sort calls
#: (ordering search variables alone is quadratic in vertex count), and
#: the key of a subdivision vertex is a deep recursion over nested
#: carriers — computing it once per distinct vertex instead of once per
#: comparison is one of the larger constant-factor wins in the search
#: setup path.  Entries are keyed by ``(type, value)`` because equal
#: values of different types (``1``/``1.0``/``True``) key differently;
#: the memo is cleared wholesale at a size bound so long-lived server
#: processes cannot grow it without limit.
_VERTEX_KEY_MEMO: dict = {}
_VERTEX_KEY_MEMO_LIMIT = 1 << 20


def vertex_key(vertex: Vertex) -> tuple:
    """A stable structural sort key for vertices.

    Orders process ids numerically, tuple-like vertices (``ChrVertex``,
    ``OutputVertex``) by their recursively-keyed fields, and vertex sets
    (carriers) by their sorted member keys.  Unlike ``repr``-based
    ordering the key depends only on the vertex's structure, so sort
    orders — and anything derived from them, such as backtracking-search
    node counts — are reproducible across runs, platforms and worker
    processes.
    """
    try:
        memo_key = (vertex.__class__, vertex)
        cached = _VERTEX_KEY_MEMO.get(memo_key)
    except TypeError:  # unhashable vertex: compute without caching
        return _vertex_key(vertex)
    if cached is None:
        cached = _vertex_key(vertex)
        if len(_VERTEX_KEY_MEMO) >= _VERTEX_KEY_MEMO_LIMIT:
            _VERTEX_KEY_MEMO.clear()
        _VERTEX_KEY_MEMO[memo_key] = cached
    return cached


def _vertex_key(vertex: Vertex) -> tuple:
    """The uncached structural recursion behind :func:`vertex_key`."""
    if isinstance(vertex, bool):
        return (3, "bool", repr(vertex))
    if isinstance(vertex, int):
        return (0, vertex)
    if isinstance(vertex, tuple):
        return (1, tuple(vertex_key(field) for field in vertex))
    if isinstance(vertex, (frozenset, set)):
        return (2, tuple(sorted(vertex_key(member) for member in vertex)))
    if isinstance(vertex, str):
        return (3, "str", vertex)
    return (4, type(vertex).__name__, repr(vertex))


def simplex_key(sigma: Iterable[Vertex]) -> tuple:
    """A stable structural sort key for simplices: size, then vertex keys."""
    member_keys = tuple(sorted(vertex_key(v) for v in sigma))
    return (len(member_keys), member_keys)


def closure_of(simplices: Iterable[Simplex]) -> frozenset:
    """The set of all non-empty faces of the given simplices.

    This is the combinatorial closure operator ``Cl`` of the paper,
    returned as a plain ``frozenset`` of simplices (wrap it in a
    :class:`~repro.topology.complex.SimplicialComplex` when complex
    structure is needed).
    """
    closed = set()
    for sigma in simplices:
        for face in faces(sigma):
            closed.add(face)
    return frozenset(closed)

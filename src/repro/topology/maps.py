"""Simplicial maps, chromatic maps, and carrier maps.

These are the morphisms of the asynchronous computability theorems: the
FACT statement asks for a *chromatic simplicial map*
``phi : R_A^l(I) -> O`` *carried by* the task's carrier map ``Delta``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Mapping

from .chromatic import ChromaticComplex, color_of
from .complex import SimplicialComplex
from .simplex import Simplex, Vertex


class SimplicialMap:
    """A vertex map inducing a simplicial map between complexes.

    Parameters
    ----------
    vertex_map:
        Mapping from every vertex of ``domain`` to a vertex of
        ``codomain``.
    domain, codomain:
        The complexes between which the map acts.  Construction
        validates simpliciality: the image of every simplex of the
        domain must be a simplex of the codomain.
    """

    def __init__(
        self,
        vertex_map: Mapping[Vertex, Vertex],
        domain: SimplicialComplex,
        codomain: SimplicialComplex,
    ):
        missing = domain.vertices - set(vertex_map)
        if missing:
            raise ValueError(f"vertex map misses {len(missing)} domain vertices")
        self.vertex_map: Dict[Vertex, Vertex] = dict(vertex_map)
        self.domain = domain
        self.codomain = codomain
        for facet in domain.facets:
            image = self.image(facet)
            if image not in codomain:
                raise ValueError(
                    f"image {set(image)!r} of facet {set(facet)!r} "
                    "is not a simplex of the codomain"
                )

    def __call__(self, vertex: Vertex) -> Vertex:
        return self.vertex_map[vertex]

    def image(self, sigma: Iterable[Vertex]) -> Simplex:
        """``f(sigma)``: the image simplex (vertex images, collapsed)."""
        return frozenset(self.vertex_map[v] for v in sigma)

    def is_non_collapsing(self) -> bool:
        """True when ``dim f(sigma) = dim sigma`` for every simplex."""
        return all(
            len(self.image(sigma)) == len(sigma) for sigma in self.domain.simplices
        )

    def is_chromatic(self) -> bool:
        """True when every vertex maps to a vertex of the same color."""
        return all(
            color_of(v) == color_of(image) for v, image in self.vertex_map.items()
        )

    def compose(self, earlier: "SimplicialMap") -> "SimplicialMap":
        """``self ∘ earlier`` (apply ``earlier`` first)."""
        return SimplicialMap(
            {v: self.vertex_map[w] for v, w in earlier.vertex_map.items()},
            earlier.domain,
            self.codomain,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimplicialMap({len(self.vertex_map)} vertices, "
            f"{self.domain!r} -> {self.codomain!r})"
        )


class CarrierMap:
    """A carrier map ``Phi : A -> 2^B`` given by a per-simplex rule.

    ``rule(sigma)`` must return the sub-complex (as a
    :class:`SimplicialComplex` or iterable of simplices) assigned to
    ``sigma``.  :meth:`is_monotone` checks the carrier-map law
    ``Phi(tau ∩ sigma) ⊆ Phi(tau) ∩ Phi(sigma)``; for the monotone
    (task, Definition-of-Delta) case it reduces to
    ``tau ⊆ sigma => Phi(tau) ⊆ Phi(sigma)``.
    """

    def __init__(
        self,
        rule: Callable[[Simplex], Iterable[Simplex]],
        domain: SimplicialComplex,
    ):
        self._rule = rule
        self.domain = domain
        self._cache: Dict[Simplex, FrozenSet[Simplex]] = {}

    def __call__(self, sigma: Iterable[Vertex]) -> FrozenSet[Simplex]:
        sigma = frozenset(sigma)
        if sigma not in self._cache:
            value = self._rule(sigma)
            if isinstance(value, SimplicialComplex):
                simplices = value.simplices
            elif isinstance(value, ChromaticComplex):
                simplices = value.simplices
            else:
                simplices = SimplicialComplex(value).simplices
            self._cache[sigma] = frozenset(simplices)
        return self._cache[sigma]

    def is_monotone(self) -> bool:
        """``tau ⊆ sigma => Phi(tau) ⊆ Phi(sigma)`` over the domain."""
        simplices = sorted(self.domain.simplices, key=len)
        for tau in simplices:
            for sigma in simplices:
                if tau < sigma and not self(tau) <= self(sigma):
                    return False
        return True

    def carries(self, phi: SimplicialMap) -> bool:
        """Is the simplicial map ``phi`` carried by this carrier map?

        Requires ``phi(sigma) ∈ Phi(sigma)`` for every simplex of the
        domain of ``phi`` (whose simplices must be meaningful inputs to
        the rule).
        """
        return all(
            phi.image(sigma) in self(sigma) for sigma in phi.domain.simplices
        )


def identity_map(K: SimplicialComplex) -> SimplicialMap:
    """The identity simplicial map on ``K``."""
    return SimplicialMap({v: v for v in K.vertices}, K, K)


def carrier_projection(
    subdivided: ChromaticComplex,
    carrier_fn: Callable[[Simplex], FrozenSet],
) -> CarrierMap:
    """The carrier map ``sigma -> Cl(carrier(sigma))`` of a subdivision."""

    def rule(sigma: Simplex):
        return SimplicialComplex([carrier_fn(sigma)])

    return CarrierMap(rule, subdivided.complex)

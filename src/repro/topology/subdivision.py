"""The standard chromatic subdivision ``Chr`` and its iterations.

The facets of ``Chr(sigma)`` for a (rainbow) simplex ``sigma`` are in
bijection with the ordered set partitions of ``sigma``'s vertices: the
run with concurrency classes ``B1, ..., Bk`` induces the facet
``{ (chi(v), B1 ∪ ... ∪ Bi) : v in Bi }``.  Subdividing every facet of a
chromatic complex — boundary faces agree because ordered partitions of
a face name the same :class:`~repro.topology.chromatic.ChrVertex`
objects — yields ``Chr K``; iterating gives ``Chr^m K``.

Carriers are the second central notion: the carrier of a subdivision
vertex ``(c, sigma)`` is ``sigma``, and the carrier of a simplex is the
union (equivalently the inclusion-maximum) of its vertices' carriers.
``carrier_in_s`` lowers carriers all the way down to faces of the
standard simplex (sets of process ids), matching
``carrier(sigma, s) = carrier(carrier(sigma, Chr s), s)`` from the
paper.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterable

from .chromatic import ChromaticComplex, ChrVertex, ProcessId, standard_simplex
from .enumeration import ordered_set_partitions, partition_to_chr_facet
from .simplex import Simplex


def subdivide_simplex(sigma: Iterable) -> FrozenSet[Simplex]:
    """The facets of ``Chr(sigma)`` for one rainbow simplex ``sigma``."""
    vertices = frozenset(sigma)
    return frozenset(
        partition_to_chr_facet(partition)
        for partition in ordered_set_partitions(vertices)
    )


def chromatic_subdivision(K: ChromaticComplex) -> ChromaticComplex:
    """``Chr K``: subdivide every facet of a chromatic complex."""
    facets = []
    for facet in K.facets:
        facets.extend(subdivide_simplex(facet))
    return ChromaticComplex(facets)


def iterated_subdivision(K: ChromaticComplex, m: int) -> ChromaticComplex:
    """``Chr^m K``: the ``m``-th iterated standard chromatic subdivision."""
    if m < 0:
        raise ValueError("subdivision depth must be non-negative")
    result = K
    for _ in range(m):
        result = chromatic_subdivision(result)
    return result


@lru_cache(maxsize=None)
def chr_complex(n: int, m: int = 1) -> ChromaticComplex:
    """``Chr^m s`` for the standard simplex on ``n`` processes (cached)."""
    return iterated_subdivision(standard_simplex(n), m)


# ----------------------------------------------------------------------
# Carriers
# ----------------------------------------------------------------------
def carrier_of_vertex(vertex: ChrVertex) -> frozenset:
    """The carrier of a subdivision vertex ``(c, sigma)``: the simplex ``sigma``."""
    return vertex.carrier


def carrier(sigma: Iterable) -> frozenset:
    """Carrier of a simplex of ``Chr K`` in ``K``: union of vertex carriers.

    By the IS containment property the carriers of a simplex's vertices
    form a chain, so the union equals the inclusion-maximum.
    """
    result: frozenset = frozenset()
    for vertex in sigma:
        if not isinstance(vertex, ChrVertex):
            raise TypeError(f"{vertex!r} is not a subdivision vertex")
        result = result | vertex.carrier
    return result


def carrier_in_s(sigma: Iterable) -> FrozenSet[ProcessId]:
    """Lower the carrier of a ``Chr^m s`` simplex all the way to ``s``.

    For a simplex of ``Chr² s`` this is
    ``carrier(carrier(sigma, Chr s), s)``: the union of all snapshots
    seen by its processes across both IS rounds — i.e. the witnessed
    participating set.  Vertices of ``s`` itself (process ids) lower to
    themselves.
    """
    current = frozenset(sigma)
    while current and all(isinstance(v, ChrVertex) for v in current):
        current = carrier(current)
    if not all(isinstance(v, int) for v in current):
        raise TypeError("mixed-depth simplex cannot be lowered to s")
    return current


def carrier_colors(sigma: Iterable) -> FrozenSet[ProcessId]:
    """``chi(carrier(sigma, s))``, the colors of the base carrier."""
    return carrier_in_s(sigma)


def own_vertex_in_carrier(vertex: ChrVertex) -> ChrVertex:
    """The vertex ``v'`` of ``carrier(v, Chr K)`` with ``chi(v') = chi(v)``.

    For ``v`` a vertex of ``Chr² s`` this is the process's own
    first-round IS vertex (self-inclusion guarantees existence).
    """
    for candidate in vertex.carrier:
        if isinstance(candidate, ChrVertex) and candidate.color == vertex.color:
            return candidate
    raise ValueError(
        f"carrier of {vertex!r} has no vertex of color {vertex.color}; "
        "self-inclusion violated"
    )


def subdivision_restricted_to(
    subdivided: ChromaticComplex, base_face: Iterable[ProcessId]
) -> ChromaticComplex:
    """``Chr^m(t)`` inside ``Chr^m s``: simplices carried by the face ``t``.

    Used to evaluate the affine-task carrier map
    ``Delta(t) = L ∩ Chr^l(t)``.
    """
    allowed = frozenset(base_face)
    return subdivided.sub_complex(lambda sigma: carrier_in_s(sigma) <= allowed)

"""Geometric realization of chromatic subdivisions.

Appendix A of the paper fixes coordinates: the standard simplex ``s`` on
``n`` processes is realized as
``{ x in [0,1]^n : sum x_i = 1 }`` with process ``i`` at the unit vector
``e_i``, and a subdivision vertex ``(i, t)`` of ``Chr s`` at

    ``(1 / (2k - 1)) * e_i + (2 / (2k - 1)) * sum_{j in t, j != i} e_j``

where ``k = |t|``.  Iterating the formula embeds ``Chr^m s``.  These
coordinates let us *verify numerically* that ``Chr`` is a subdivision:
every subdivision vertex lies in the realization of its carrier, facet
realizations have positive volume, and volumes add up to the volume of
the subdivided simplex.
"""

from __future__ import annotations

from math import factorial
from typing import Dict

import numpy as np

from .chromatic import ChromaticComplex, ChrVertex, ProcessId
from .simplex import Simplex, Vertex


def base_coordinates(n: int) -> Dict[ProcessId, np.ndarray]:
    """Unit-vector coordinates of the standard simplex's vertices."""
    return {i: np.eye(n)[i] for i in range(n)}


def realize_vertex(vertex: Vertex, n: int) -> np.ndarray:
    """Coordinates of a vertex of ``Chr^m s`` in ``R^n``.

    Process ids realize as unit vectors; a :class:`ChrVertex`
    ``(i, t)`` realizes via the paper's barycentric formula applied to
    the (recursively realized) carrier.
    """
    if isinstance(vertex, int):
        coords = np.zeros(n)
        coords[vertex] = 1.0
        return coords
    if not isinstance(vertex, ChrVertex):
        raise TypeError(f"cannot realize {vertex!r}")
    carrier_points = {v: realize_vertex(v, n) for v in vertex.carrier}
    own = next(v for v in vertex.carrier if _color(v) == vertex.color)
    k = len(vertex.carrier)
    weight_own = 1.0 / (2 * k - 1)
    weight_other = 2.0 / (2 * k - 1)
    point = weight_own * carrier_points[own]
    for v, coords in carrier_points.items():
        if v != own:
            point = point + weight_other * coords
    return point


def _color(vertex: Vertex) -> ProcessId:
    return vertex.color if isinstance(vertex, ChrVertex) else vertex


def realize_complex(K: ChromaticComplex, n: int) -> Dict[Vertex, np.ndarray]:
    """Coordinates for every vertex of a subdivision complex."""
    return {v: realize_vertex(v, n) for v in K.vertices}


def barycentric_in_carrier(vertex: ChrVertex, n: int, atol: float = 1e-9) -> bool:
    """Does the realized vertex lie inside the realization of its carrier?

    A point lies in ``|t|`` iff its coordinates are a convex combination
    of ``t``'s realized vertices; with affine independence this reduces
    to support inclusion plus the simplex constraint.
    """
    point = realize_vertex(vertex, n)
    carrier_points = np.array([realize_vertex(v, n) for v in vertex.carrier])
    # Solve for convex-combination weights (least squares).
    weights, residuals, _, _ = np.linalg.lstsq(carrier_points.T, point, rcond=None)
    reconstructed = carrier_points.T @ weights
    if not np.allclose(reconstructed, point, atol=atol):
        return False
    return bool(
        np.all(weights >= -atol) and abs(float(weights.sum()) - 1.0) <= 1e-6
    )


def simplex_volume(points: np.ndarray) -> float:
    """(d!)-normalized volume of a d-simplex given as a (d+1, n) array.

    The volume is computed intrinsically via the Gram determinant, so it
    is meaningful for simplices embedded in the hyperplane
    ``sum x_i = 1``.
    """
    if len(points) <= 1:
        return 0.0
    edges = points[1:] - points[0]
    gram = edges @ edges.T
    det = float(np.linalg.det(gram))
    d = len(points) - 1
    return float(np.sqrt(max(det, 0.0)) / factorial(d))


def facet_volumes(K: ChromaticComplex, n: int) -> Dict[Simplex, float]:
    """Intrinsic volume of every facet's geometric realization."""
    coords = realize_complex(K, n)
    volumes: Dict[Simplex, float] = {}
    for facet in K.facets:
        points = np.array([coords[v] for v in sorted(facet, key=repr)])
        volumes[facet] = simplex_volume(points)
    return volumes


def subdivision_volume_check(
    K: ChromaticComplex, n: int, rtol: float = 1e-6
) -> bool:
    """Do the facet volumes of a subdivision of ``s`` sum to ``vol |s|``?

    A necessary geometric condition for ``K`` to be a subdivision of the
    standard simplex (together with non-overlap, which positivity of all
    volumes plus the count strongly suggests at these sizes).
    """
    base = np.eye(n)
    total = simplex_volume(base)
    pieces = sum(facet_volumes(K, n).values())
    return bool(np.isclose(pieces, total, rtol=rtol))

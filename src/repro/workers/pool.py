"""Persistent warm-worker pool behind the typed job submission API.

The engine's old fan-out built a ``ProcessPoolExecutor`` per batch:
every batch paid process startup, every chunk re-shipped full payloads,
and every worker re-derived the solver setups that give the bitset
kernel its warm advantage — which is how "add a second worker" came to
mean "go slower" (``speedup_multiworker_cold: 0.61`` historically).

:class:`WorkerPool` replaces that with long-lived worker processes and
an explicit lifecycle — ``start`` / ``submit`` / ``drain`` / ``close``
(also a context manager) — consumed by :class:`repro.engine.jobs.Engine`
and, through it, the service batcher, the sweep driver and the fleet:

* **Workers survive across batches.**  A worker keeps a digest-keyed
  cache of deserialized payload components, so the ``Task`` object (and
  the ``task._solver_setup`` interning tables cached on it) is built
  once and reused by every later job that references the same digest.
* **The wire carries digests + deltas** (see :mod:`repro.workers.wire`):
  a shared component's full canonical text crosses the pipe once per
  worker; afterwards jobs ship a digest reference and a small delta.
* **Affinity routing.**  Jobs exposing a solver setup digest are routed
  to the worker that already holds that setup, spilling to the least
  loaded worker only when the home worker is backed up — observable as
  ``workers.dispatch`` / ``workers.affinity_hit`` spans and in
  :meth:`WorkerPool.stats`.
* **Failure containment.**  A worker that dies mid-job (SIGKILL, hard
  crash) is restarted and its in-flight job re-dispatched exactly once
  before the job surfaces as an error; queued-but-unsent jobs are
  re-routed without penalty.  A job whose payload cannot be encoded
  fails alone at submit time.  Per-job wall-clock timeouts kill the
  running worker and surface ``error="timeout"``, exactly like the old
  pool.

Dispatch keeps **at most one in-flight job per worker** — the parent
only writes to a worker that is idle in ``recv``, so a large job text
and a large result can never wedge the duplex pipe against each other.
Parent-side per-worker backlogs preserve routing while a worker is
busy.
"""

from __future__ import annotations

import time
import traceback
import weakref
import multiprocessing
from collections import deque
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..engine.serialize import deserialize, serialize
from .wire import affinity_key, component_digest, decompose, recompose

__all__ = ["JobTicket", "WorkerPool"]

#: How deep a home worker's queue may be before an affinity job spills
#: to the least-loaded worker (counting the in-flight job).
_SPILL_DEPTH = 2


# ----------------------------------------------------------------------
# Worker process entry point
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:
    """Serve jobs until shutdown/EOF; never raises out.

    Messages in: ``("job", ticket_id, kind, parts, delta_text, carrier)``
    or ``("shutdown",)``.  Messages out: ``("result", ticket_id, status,
    data, wall, span_dicts)`` with ``status`` in ``ok|budget|error``.
    """
    from ..engine.jobs import JOB_KINDS
    from ..engine.serialize import deserialize, serialize
    from ..tasks.solvability import SearchBudgetExceeded

    # digest -> deserialized component object.  This map is the pool's
    # whole point: the same Task object comes back for every job that
    # references its digest, so the solver setup cached on it is warm.
    objects: Dict[str, Any] = {}

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] != "job":
            return
        _tag, ticket_id, kind, parts, delta_text, carrier = message

        # Workers forked from a traced parent inherit its tracer; reset
        # so worker tracing is governed only by the carrier sent along.
        tracer = obs.enable() if carrier is not None else None
        if carrier is None:
            obs.disable()

        started = time.perf_counter()
        status: str = "error"
        data: Any = None
        with obs.attach(carrier):
            try:
                with obs.span("engine.codec.decode", kind=kind):
                    shared = []
                    for part in parts:
                        if part[0] == "val":
                            objects[part[1]] = deserialize(part[2])
                        shared.append(objects[part[1]])
                    payload = recompose(kind, shared, delta_text)
                with obs.span("engine.compute", kind=kind):
                    value = JOB_KINDS[kind](payload)
                with obs.span("engine.codec.encode", kind=kind):
                    data = serialize(value)
                status = "ok"
            except SearchBudgetExceeded as exc:
                status, data = "budget", exc.nodes_explored
            except BaseException:
                status, data = "error", traceback.format_exc(limit=8)
        wall = time.perf_counter() - started

        span_dicts: List[Dict[str, Any]] = []
        if tracer is not None:
            span_dicts = [span.to_dict() for span in tracer.drain()]
            obs.disable()
        try:
            conn.send(("result", ticket_id, status, data, wall, span_dicts))
        except (OSError, ValueError):
            return


def _reap(processes: List) -> None:
    """Finalizer: no worker outlives its pool object."""
    for process in processes:
        try:
            if process.is_alive():
                process.terminate()
        except (OSError, ValueError):
            pass


# ----------------------------------------------------------------------
# Parent-side bookkeeping
# ----------------------------------------------------------------------
class JobTicket:
    """One accepted job: resolves to a ``JobResult`` exactly once."""

    __slots__ = (
        "ticket_id",
        "index",
        "spec",
        "carrier",
        "shared",
        "delta_text",
        "affinity",
        "affinity_hit",
        "result",
        "redispatched",
        "worker",
        "dispatched_at",
    )

    def __init__(self, ticket_id: int, index: int, spec, carrier):
        self.ticket_id = ticket_id
        self.index = index
        self.spec = spec
        self.carrier = carrier
        self.shared: List[Tuple[str, Any]] = []
        self.delta_text: Optional[str] = None
        self.affinity: Optional[str] = None
        self.affinity_hit = False
        self.result = None
        self.redispatched = 0
        self.worker: Optional[int] = None
        self.dispatched_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.result is not None


class _WorkerSlot:
    __slots__ = ("index", "process", "conn", "current", "backlog", "sent", "jobs_done")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.current: Optional[JobTicket] = None
        self.backlog: Deque[JobTicket] = deque()
        self.sent: set = set()
        self.jobs_done = 0

    def load(self) -> int:
        return len(self.backlog) + (self.current is not None)


class WorkerPool:
    """Typed, persistent worker pool: ``start/submit/drain/close``.

    Parameters
    ----------
    workers:
        Worker process count (>= 1).
    timeout:
        Optional per-job wall-clock budget, measured from dispatch; an
        overrun kills the worker and surfaces ``error="timeout"``.
    max_redispatch:
        How many times a job whose worker died mid-run is re-dispatched
        before it surfaces as an error (default 1 — exactly once).
    mp_context:
        A ``multiprocessing`` context (default: the platform default,
        ``fork`` on Linux, which is what keeps worker startup cheap).
    """

    def __init__(
        self,
        workers: int,
        *,
        timeout: Optional[float] = None,
        max_redispatch: int = 1,
        mp_context=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.timeout = timeout
        self.max_redispatch = max_redispatch
        self._ctx = mp_context or multiprocessing.get_context()
        self._slots: List[_WorkerSlot] = []
        self._procbox: List = []  # shared with the finalizer, updated in place
        self._finalizer = None
        self._tickets: Dict[int, JobTicket] = {}
        self._next_ticket = 0
        self._unresolved = 0
        self._affinity: Dict[str, int] = {}
        self._started = False
        self._closing = False
        self._counters: Dict[str, int] = {
            "dispatched": 0,
            "completed": 0,
            "affinity_routed": 0,
            "affinity_hits": 0,
            "worker_restarts": 0,
            "redispatched": 0,
            "timeouts": 0,
            "codec_errors": 0,
            "races": 0,
            "race_cancelled": 0,
        }

    def __repr__(self) -> str:
        state = "running" if self._started else "stopped"
        return f"WorkerPool(workers={self.workers}, {state})"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the workers (idempotent; ``submit`` auto-starts)."""
        if self._started:
            return self
        self._slots = [_WorkerSlot(i) for i in range(self.workers)]
        self._procbox[:] = [None] * self.workers
        for slot in self._slots:
            self._spawn(slot)
        if self._finalizer is None or not self._finalizer.alive:
            self._finalizer = weakref.finalize(self, _reap, self._procbox)
        self._started = True
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _spawn(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"repro-worker-{slot.index}",
        )
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.sent = set()
        slot.current = None
        self._procbox[slot.index] = process

    def close(self, timeout: float = 5.0) -> None:
        """Stop the workers; idempotent, and the pool may be restarted.

        Jobs still unresolved when ``close`` is called resolve to an
        error result (the engine always drains its batches first, so
        this only fires on direct, unconventional use).
        """
        if not self._started:
            return
        self._closing = True
        try:
            for slot in self._slots:
                try:
                    slot.conn.send(("shutdown",))
                except (OSError, ValueError):
                    pass
            deadline = time.monotonic() + timeout
            for slot in self._slots:
                slot.process.join(max(0.0, deadline - time.monotonic()))
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(1.0)
                if slot.process.is_alive():  # pragma: no cover - stuck in D state
                    slot.process.kill()
                    slot.process.join(1.0)
                try:
                    slot.conn.close()
                except (OSError, ValueError):
                    pass
            for ticket in list(self._tickets.values()):
                if not ticket.done:
                    self._resolve(ticket, self._error_result(ticket, "worker pool closed"))
        finally:
            self._slots = []
            self._procbox[:] = []
            self._affinity.clear()
            self._tickets.clear()
            self._unresolved = 0
            self._started = False
            self._closing = False

    def pids(self) -> List[int]:
        """Live worker PIDs (test/diagnostic surface)."""
        return [slot.process.pid for slot in self._slots if slot.process is not None]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec, index: int = 0) -> JobTicket:
        """Accept one ``JobSpec``; returns a ticket that will resolve.

        A payload the canonical codec cannot encode resolves the ticket
        immediately with an error result — a poisoned job fails alone,
        it never reaches (or takes down) a worker.
        """
        self.start()
        ticket = JobTicket(self._next_ticket, index, spec, obs.current_carrier())
        self._next_ticket += 1
        self._tickets[ticket.ticket_id] = ticket
        self._unresolved += 1
        try:
            shared, delta_text = decompose(spec.kind, spec.payload)
            ticket.shared = [(component_digest(c), c) for c in shared]
            ticket.delta_text = delta_text
            ticket.affinity = affinity_key(spec.kind, spec.payload)
        except Exception:
            self._counters["codec_errors"] += 1
            self._resolve(
                ticket, self._error_result(ticket, traceback.format_exc(limit=8))
            )
            return ticket
        self._assign(ticket)
        return ticket

    def run_batch(self, pending: Sequence[Tuple[int, Any]]) -> List:
        """Run ``(index, spec)`` pairs; results in submission order.

        The drop-in equivalent of the old ``execute_batch`` parallel
        path, including result-shape and timeout semantics — this is
        what ``Engine.run_jobs`` calls.
        """
        tickets = [self.submit(spec, index=index) for index, spec in pending]
        self._wait(tickets)
        results = [ticket.result for ticket in tickets]
        results.sort(key=lambda result: result.index)
        for ticket in tickets:
            self._tickets.pop(ticket.ticket_id, None)
        return results

    def drain(self) -> None:
        """Block until every accepted job has resolved."""
        if not self._started:
            return
        while self._unresolved > 0:
            self._collect_once()

    # ------------------------------------------------------------------
    # Racing
    # ------------------------------------------------------------------
    def race(self, specs: Sequence):
        """Race equivalent specs on distinct workers; first verdict wins.

        Every lane answers the *same* question (the portfolio job kind
        races one solve across kernels), so the first lane to resolve
        without error settles the race and the remaining lanes are pure
        redundancy: they are **cancelled** — resolved to
        ``error="cancelled"`` first, then their workers killed and
        restarted.  Resolving before the kill is what makes delivery
        exactly-once: :meth:`_restart` never re-dispatches a resolved
        ticket, and a result a dying worker managed to flush is ignored
        because the ticket has already left the routing table.

        Lanes bypass affinity routing deliberately — they share one
        setup digest by construction, and stacking them on the home
        worker would serialize the race.  Lanes are laid out over the
        least-loaded distinct workers; with fewer workers than lanes
        the surplus lanes queue behind the first (a degenerate but
        correct race — whichever dispatched lane finishes first still
        wins, and queued losers cancel before ever running).

        Returns the winning lane's ``JobResult`` (``index`` is the lane
        number).  If no lane wins, lane 0's result is returned — lane 0
        is the caller's canonical kernel, so budget/error semantics
        stay deterministic.
        """
        if not specs:
            raise ValueError("a race needs at least one spec")
        self.start()
        self._counters["races"] += 1
        tickets: List[JobTicket] = []
        order = sorted(self._slots, key=lambda s: (s.load(), s.index))
        with obs.span("workers.race", lanes=len(specs)) as race_span:
            for lane, spec in enumerate(specs):
                ticket = JobTicket(
                    self._next_ticket, lane, spec, obs.current_carrier()
                )
                self._next_ticket += 1
                self._tickets[ticket.ticket_id] = ticket
                self._unresolved += 1
                tickets.append(ticket)
                try:
                    shared, delta_text = decompose(spec.kind, spec.payload)
                    ticket.shared = [
                        (component_digest(c), c) for c in shared
                    ]
                    ticket.delta_text = delta_text
                except Exception:
                    self._counters["codec_errors"] += 1
                    self._resolve(
                        ticket,
                        self._error_result(
                            ticket, traceback.format_exc(limit=8)
                        ),
                    )
                    continue
                slot = order[lane % len(order)]
                slot.backlog.append(ticket)
                self._pump(slot)
            winner: Optional[JobTicket] = None
            while winner is None and any(not t.done for t in tickets):
                self._collect_once()
                for ticket in tickets:
                    if ticket.done and ticket.result.error is None:
                        winner = ticket
                        break
            if winner is None:
                winner = tickets[0]
            self._cancel_lanes(
                [ticket for ticket in tickets if ticket is not winner]
            )
            race_span.set_attr("winner_lane", winner.index)
        return winner.result

    def _cancel_lanes(self, tickets: Sequence[JobTicket]) -> None:
        """Resolve-then-kill the losing lanes of a race."""
        for ticket in tickets:
            if ticket.done:
                continue
            self._counters["race_cancelled"] += 1
            in_flight = (
                ticket.worker is not None
                and self._slots[ticket.worker].current is ticket
            )
            self._resolve(ticket, self._error_result(ticket, "cancelled"))
            if in_flight:
                # The worker is burning CPU on a lost race; reclaim it.
                self._restart(self._slots[ticket.worker])

    # ------------------------------------------------------------------
    # Routing and dispatch
    # ------------------------------------------------------------------
    def _assign(self, ticket: JobTicket) -> None:
        slot = self._route(ticket)
        slot.backlog.append(ticket)
        self._pump(slot)

    def _route(self, ticket: JobTicket) -> _WorkerSlot:
        key = ticket.affinity
        if key is None:
            return min(self._slots, key=lambda s: (s.load(), s.index))
        self._counters["affinity_routed"] += 1
        home = self._affinity.get(key)
        if home is not None and self._slots[home].load() < _SPILL_DEPTH:
            chosen = self._slots[home]
        else:
            # Least-loaded, ties preferring the home worker, then the
            # lowest index — pins are sticky unless another worker is
            # strictly less loaded.
            chosen = min(
                self._slots,
                key=lambda s: (s.load(), 0 if s.index == home else 1, s.index),
            )
        ticket.affinity_hit = chosen.index == home
        if ticket.affinity_hit:
            self._counters["affinity_hits"] += 1
            with obs.span("workers.affinity_hit", kind=ticket.spec.kind):
                pass
        self._affinity[key] = chosen.index
        return chosen

    def _pump(self, slot: _WorkerSlot) -> None:
        """Send backlog work to an idle worker (one in flight, ever)."""
        while slot.current is None and slot.backlog:
            ticket = slot.backlog.popleft()
            if ticket.done:
                continue
            try:
                parts: List[tuple] = []
                for part_digest, component in ticket.shared:
                    if part_digest in slot.sent:
                        parts.append(("ref", part_digest))
                    else:
                        parts.append(("val", part_digest, serialize(component)))
                message = (
                    "job",
                    ticket.ticket_id,
                    ticket.spec.kind,
                    parts,
                    ticket.delta_text,
                    ticket.carrier,
                )
            except Exception:
                self._counters["codec_errors"] += 1
                self._resolve(
                    ticket, self._error_result(ticket, traceback.format_exc(limit=8))
                )
                continue
            try:
                slot.conn.send(message)
            except (OSError, ValueError):
                slot.backlog.appendleft(ticket)
                self._restart(slot)
                return
            for part_digest, _ in ticket.shared:
                slot.sent.add(part_digest)
            slot.current = ticket
            ticket.worker = slot.index
            ticket.dispatched_at = time.monotonic()
            self._counters["dispatched"] += 1
            with obs.span(
                "workers.dispatch",
                kind=ticket.spec.kind,
                worker=slot.index,
                affinity_hit=ticket.affinity_hit,
                redispatch=ticket.redispatched,
            ):
                pass

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _wait(self, tickets: List[JobTicket]) -> None:
        while any(not ticket.done for ticket in tickets):
            self._collect_once()

    def _collect_once(self, poll_timeout: float = 0.1) -> None:
        if not self._started or not self._slots:
            return
        wait_for = poll_timeout
        if self.timeout is not None:
            now = time.monotonic()
            for slot in self._slots:
                ticket = slot.current
                if ticket is not None and ticket.dispatched_at is not None:
                    remaining = ticket.dispatched_at + self.timeout - now
                    wait_for = max(0.0, min(wait_for, remaining))
        readers: Dict[Any, _WorkerSlot] = {}
        for slot in self._slots:
            readers[slot.conn] = slot
            readers[slot.process.sentinel] = slot
        try:
            ready = _connection_wait(list(readers), wait_for)
        except OSError:  # pragma: no cover - racing a dying worker
            ready = []
        dead: List[_WorkerSlot] = []
        for handle in ready:
            slot = readers[handle]
            if handle is slot.conn:
                try:
                    message = slot.conn.recv()
                except (EOFError, OSError):
                    if slot not in dead:
                        dead.append(slot)
                    continue
                self._handle_result(slot, message)
            else:  # process sentinel: the worker exited
                if slot not in dead:
                    dead.append(slot)
        for slot in dead:
            if slot.process.is_alive():
                continue  # stale sentinel after an in-loop restart
            # A worker may die right after sending its last result:
            # drain the pipe before declaring its job lost.
            try:
                while slot.conn.poll(0):
                    self._handle_result(slot, slot.conn.recv())
            except (EOFError, OSError):
                pass
            self._restart(slot)
        self._check_timeouts()

    def _check_timeouts(self) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for slot in self._slots:
            ticket = slot.current
            if (
                ticket is not None
                and ticket.dispatched_at is not None
                and now - ticket.dispatched_at > self.timeout
            ):
                self._counters["timeouts"] += 1
                self._resolve(ticket, self._error_result(ticket, "timeout"))
                slot.current = None
                # The worker is wedged in the job; reclaim it by force.
                self._restart(slot)

    def _handle_result(self, slot: _WorkerSlot, message: tuple) -> None:
        _tag, ticket_id, status, data, wall, span_dicts = message
        slot.jobs_done += 1
        if slot.current is not None and slot.current.ticket_id == ticket_id:
            slot.current = None
        if span_dicts:
            tracer = obs.get_tracer()
            if tracer is not None:
                tracer.ingest(span_dicts)
        ticket = self._tickets.get(ticket_id)
        if ticket is not None and not ticket.done:
            self._resolve(ticket, self._result_of(ticket, status, data, wall))
        self._pump(slot)

    def _result_of(self, ticket: JobTicket, status: str, data, wall: float):
        from ..engine.jobs import JobResult

        if status == "ok":
            try:
                with obs.span("engine.codec.decode", kind=ticket.spec.kind):
                    value = deserialize(data)
            except Exception:
                self._counters["codec_errors"] += 1
                return JobResult(
                    index=ticket.index,
                    kind=ticket.spec.kind,
                    error=traceback.format_exc(limit=8),
                    wall_time=wall,
                )
            return JobResult(
                index=ticket.index,
                kind=ticket.spec.kind,
                value=value,
                wall_time=wall,
            )
        if status == "budget":
            return JobResult(
                index=ticket.index,
                kind=ticket.spec.kind,
                error="budget",
                nodes_explored=data,
                wall_time=wall,
            )
        return JobResult(
            index=ticket.index, kind=ticket.spec.kind, error=data, wall_time=wall
        )

    def _error_result(self, ticket: JobTicket, message: str):
        from ..engine.jobs import JobResult

        return JobResult(index=ticket.index, kind=ticket.spec.kind, error=message)

    def _resolve(self, ticket: JobTicket, result) -> None:
        ticket.result = result
        self._unresolved -= 1
        self._counters["completed"] += 1
        # Resolved tickets leave the routing table: a stale message from
        # a worker we since timed out / restarted must not re-resolve.
        self._tickets.pop(ticket.ticket_id, None)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _restart(self, slot: _WorkerSlot) -> None:
        """Replace a dead/wedged worker; re-route its orphaned jobs.

        The in-flight job (if still unresolved) is re-dispatched at most
        ``max_redispatch`` times — exactly once by default — then fails;
        parent-side backlog jobs were never sent anywhere, so they
        re-route without penalty.
        """
        if self._closing:
            return
        victim = slot.current
        slot.current = None
        backlog = list(slot.backlog)
        slot.backlog.clear()
        try:
            slot.conn.close()
        except (OSError, ValueError):
            pass
        if slot.process.is_alive():
            slot.process.terminate()
        slot.process.join(5.0)
        if slot.process.is_alive():  # pragma: no cover - stuck in D state
            slot.process.kill()
            slot.process.join(1.0)
        self._counters["worker_restarts"] += 1
        self._spawn(slot)
        if victim is not None and not victim.done:
            victim.redispatched += 1
            if victim.redispatched > self.max_redispatch:
                self._resolve(
                    victim,
                    self._error_result(
                        victim,
                        f"worker died while running {victim.spec.kind} job "
                        f"(re-dispatched {victim.redispatched - 1} time(s))",
                    ),
                )
            else:
                self._counters["redispatched"] += 1
                self._assign(victim)
        for ticket in backlog:
            if not ticket.done:
                self._assign(ticket)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Dispatch/affinity/failure counters plus per-worker load."""
        out: Dict[str, Any] = dict(self._counters)
        routed = out["affinity_routed"]
        out["affinity_hit_rate"] = (
            out["affinity_hits"] / routed if routed else None
        )
        out["workers"] = self.workers
        out["alive"] = sum(
            1
            for slot in self._slots
            if slot.process is not None and slot.process.is_alive()
        )
        out["jobs_per_worker"] = [slot.jobs_done for slot in self._slots]
        return out

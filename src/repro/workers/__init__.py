"""Persistent warm workers: the engine's process-parallel substrate.

This package is what makes ``jobs > 1`` actually pay (see ROADMAP):

* :mod:`~repro.workers.pool` — :class:`WorkerPool`, long-lived worker
  processes with an explicit ``start/submit/drain/close`` lifecycle,
  setup-digest affinity routing, bounded crash re-dispatch, and per-job
  timeouts.  :class:`repro.engine.jobs.Engine` owns one per process;
  the service batcher, sweep driver and fleet shards all ride on it.
* :mod:`~repro.workers.wire` — digest + compact-delta payload
  decomposition over the canonical codec, so a multi-KB task crosses
  the pipe once per worker and stays warm there.
* :mod:`~repro.workers.shm` — the mmap-backed cross-process read layer
  behind :class:`repro.engine.cache.ArtifactCache` (opt-in via
  ``ArtifactCache(shared=True)`` / ``--shared-cache`` /
  ``REPRO_SHARED_CACHE=1``).

See ``docs/engine.md`` ("worker pool & affinity") for the API and the
migration table from the old ``execute_batch`` entry point.
"""

from .pool import JobTicket, WorkerPool
from .shm import DEFAULT_CAPACITY, SharedArtifactSegment
from .wire import affinity_key, decompose, recompose

__all__ = [
    "DEFAULT_CAPACITY",
    "JobTicket",
    "SharedArtifactSegment",
    "WorkerPool",
    "affinity_key",
    "decompose",
    "recompose",
]

"""A cross-process, mmap-backed read layer for the artifact cache.

One machine runs many repro processes — service shards, fleet edges,
sweep drivers, worker pools — all sharing one content-addressed
:class:`~repro.engine.cache.ArtifactCache` directory.  Each process
used to pay the full read-and-deserialize cost for every warm artifact
it touched.  This module adds a shared append-only segment (a plain
file, ``mmap``-ed by every attached process) that mirrors hot artifact
*texts* so a warm hit costs one in-memory lookup; the per-process
deserialized-object memo above it (see ``ArtifactCache``) then makes
repeats free.

Why a file + ``mmap`` rather than ``multiprocessing.shared_memory``:
the attaching processes are not related (fleet shards are exec'd
subprocesses, sweeps attach hours later), so POSIX-name lifetime
management and the resource tracker's unlink-on-exit semantics are
exactly the wrong tool.  A file under the cache root has the same
lifetime as the cache it accelerates, and the OS page cache makes the
mapping shared machine-wide.

Layout::

    header : magic(8) capacity(u64) cursor(u64)
    record : magic(4) digest(64, ascii hex) length(u32) crc32(u32) payload …
             (records are 8-byte aligned; ``cursor`` is the committed
             byte bound — readers never look past it)

Writers append under an ``fcntl`` file lock and publish by advancing
``cursor`` *last*, so a crashed writer leaves garbage past the cursor,
never inside it.  Readers validate record magic and CRC anyway: any
torn or corrupt state marks the segment unusable for this process and
every lookup falls back to the on-disk store.  The segment is an
accelerator, never an authority.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = ["DEFAULT_CAPACITY", "SharedArtifactSegment"]

_SEGMENT_MAGIC = b"RPROSHM1"
_RECORD_MAGIC = b"ra1\n"
_HEADER = struct.Struct("<8sQQ")  # magic, capacity, committed cursor
_CURSOR_OFFSET = 16
_RECORD = struct.Struct("<4s64sII")  # magic, hex digest, length, crc32
_DIGEST_LEN = 64
_HEX = frozenset(b"0123456789abcdef")

#: 64 MiB: roomy for every committed workload's artifact set while
#: staying a sparse file until actually written.
DEFAULT_CAPACITY = 64 * 1024 * 1024


def _aligned(size: int) -> int:
    return (size + 7) & ~7


class SharedArtifactSegment:
    """One process's view of the shared artifact segment.

    All methods are total: construction and lookups degrade to "not
    usable" / "not found" instead of raising, because the disk store
    behind this layer is always correct.  ``usable`` reports whether
    this process trusts the segment; it latches to ``False`` on the
    first sign of corruption.
    """

    def __init__(
        self,
        path: os.PathLike,
        capacity: int = DEFAULT_CAPACITY,
    ):
        self.path = Path(path)
        self.usable = False
        self.hits = 0
        self.published = 0
        self.rejected_full = 0
        self.corruption_detected = 0
        self._mmap: Optional[mmap.mmap] = None
        self._file = None
        self._index: Dict[str, Tuple[int, int, int]] = {}  # off, len, crc
        self._scanned = _HEADER.size
        self._capacity = capacity
        try:
            self._attach(capacity)
        except OSError:
            self.close()

    # ------------------------------------------------------------------
    def _attach(self, capacity: int) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a+b")
        self._lock()
        try:
            self._file.seek(0, os.SEEK_END)
            size = self._file.tell()
            if size == 0:
                header = _HEADER.pack(_SEGMENT_MAGIC, capacity, _HEADER.size)
                self._file.write(header)
                self._file.truncate(_HEADER.size + capacity)
                self._file.flush()
            else:
                self._file.seek(0)
                raw = self._file.read(_HEADER.size)
                if len(raw) < _HEADER.size:
                    self._note_corruption()
                    return
                magic, stored_capacity, _cursor = _HEADER.unpack(raw)
                if magic != _SEGMENT_MAGIC:
                    self._note_corruption()
                    return
                capacity = stored_capacity
                if size < _HEADER.size + capacity:
                    # Truncated segment: the map below would not cover
                    # the declared capacity.
                    self._note_corruption()
                    return
        finally:
            self._unlock()
        self._capacity = capacity
        self._mmap = mmap.mmap(self._file.fileno(), _HEADER.size + capacity)
        self.usable = True

    def _lock(self) -> None:
        if fcntl is not None and self._file is not None:
            fcntl.flock(self._file.fileno(), fcntl.LOCK_EX)

    def _unlock(self) -> None:
        if fcntl is not None and self._file is not None:
            fcntl.flock(self._file.fileno(), fcntl.LOCK_UN)

    def _note_corruption(self) -> None:
        self.corruption_detected += 1
        self.usable = False

    # ------------------------------------------------------------------
    def _cursor(self) -> int:
        assert self._mmap is not None
        return struct.unpack_from("<Q", self._mmap, _CURSOR_OFFSET)[0]

    def _set_cursor(self, value: int) -> None:
        assert self._mmap is not None
        struct.pack_into("<Q", self._mmap, _CURSOR_OFFSET, value)

    def _refresh(self) -> None:
        """Fold records committed by any process into the local index."""
        if not self.usable or self._mmap is None:
            return
        limit = _HEADER.size + self._capacity
        cursor = self._cursor()
        if cursor < _HEADER.size or cursor > limit:
            self._note_corruption()
            return
        position = self._scanned
        mm = self._mmap
        while position < cursor:
            if position + _RECORD.size > cursor:
                self._note_corruption()
                return
            magic, digest_raw, length, crc = _RECORD.unpack_from(mm, position)
            payload_offset = position + _RECORD.size
            if (
                magic != _RECORD_MAGIC
                or payload_offset + length > cursor
                or not _HEX.issuperset(digest_raw)
            ):
                self._note_corruption()
                return
            self._index[digest_raw.decode("ascii")] = (
                payload_offset,
                length,
                crc,
            )
            position = _aligned(payload_offset + length)
        self._scanned = position

    # ------------------------------------------------------------------
    def get_text(self, key_digest: str) -> Optional[str]:
        """The mirrored artifact text, or ``None`` (not here / not trusted)."""
        if not self.usable or self._mmap is None:
            return None
        if key_digest not in self._index:
            self._refresh()
        entry = self._index.get(key_digest)
        if entry is None:
            return None
        offset, length, crc = entry
        payload = self._mmap[offset : offset + length]
        if zlib.crc32(payload) != crc:
            # Torn or overwritten bytes inside the committed bound:
            # stop trusting the whole segment, the disk store is the
            # authority.
            self._note_corruption()
            return None
        try:
            text = payload.decode("utf-8")
        except UnicodeDecodeError:
            self._note_corruption()
            return None
        self.hits += 1
        return text

    def put_text(self, key_digest: str, text: str) -> bool:
        """Mirror one artifact text; ``False`` when full/untrusted."""
        if not self.usable or self._mmap is None:
            return False
        if len(key_digest) != _DIGEST_LEN:
            return False
        payload = text.encode("utf-8")
        need = _aligned(_RECORD.size + len(payload))
        limit = _HEADER.size + self._capacity
        self._lock()
        try:
            cursor = self._cursor()
            if cursor < _HEADER.size or cursor > limit:
                self._note_corruption()
                return False
            if cursor + need > limit:
                self.rejected_full += 1
                return False
            _RECORD.pack_into(
                self._mmap,
                cursor,
                _RECORD_MAGIC,
                key_digest.encode("ascii"),
                len(payload),
                zlib.crc32(payload),
            )
            self._mmap[cursor + _RECORD.size : cursor + _RECORD.size + len(payload)] = (
                payload
            )
            # Publish last: the cursor is the commit point other
            # processes scan up to.
            self._set_cursor(cursor + need)
        except (OSError, ValueError):
            self._note_corruption()
            return False
        finally:
            self._unlock()
        self._index[key_digest] = (
            cursor + _RECORD.size,
            len(payload),
            zlib.crc32(payload),
        )
        self.published += 1
        return True

    def reset(self) -> None:
        """Rewind the committed cursor (cache ``clear()`` support).

        Readers attached before the reset may retain pre-reset index
        entries; this is a maintenance operation, not a concurrent one.
        """
        if not self.usable or self._mmap is None:
            return
        self._lock()
        try:
            self._set_cursor(_HEADER.size)
        finally:
            self._unlock()
        self._index.clear()
        self._scanned = _HEADER.size

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "usable": int(self.usable),
            "hits": self.hits,
            "published": self.published,
            "rejected_full": self.rejected_full,
            "corruption_detected": self.corruption_detected,
            "indexed": len(self._index),
        }

    def close(self) -> None:
        if self._mmap is not None:
            try:
                self._mmap.close()
            except (BufferError, ValueError):
                pass
            self._mmap = None
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        self.usable = False

    def __del__(self):  # pragma: no cover - GC ordering dependent
        self.close()

"""Wire decomposition for worker dispatch: digests + compact deltas.

The old pool shipped every job as one monolithic canonical-serialized
payload, so a batch of 200 solves against the same ``(affine, task)``
pair serialized — and each worker deserialized — the same multi-KB
task description 200 times, and every deserialization produced a fresh
``Task`` object whose ``_solver_setup`` cache started cold.

This module splits a payload into:

* **shared parts** — the big, reusable components (the affine task and
  the task of ``solve``/``certify`` jobs), addressed by their canonical
  digest.  The pool sends each part's full text to a given worker at
  most once (``("val", digest, text)``); afterwards the digest alone
  (``("ref", digest)``) suffices, and the worker resolves it from its
  payload-object cache.  Because the *same deserialized object* is
  reused across jobs, the solver setup cached on it stays warm.
* **a delta** — the small per-job remainder (budget, overrides, resume
  seed, kernel), always sent inline as canonical text.

``affinity_key`` exposes the :func:`repro.solver.api.setup_digest` of
jobs that carry a solver setup, which is what the pool routes worker
affinity by.  Kinds without shared structure degrade gracefully to a
single generic delta and no affinity.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..engine.serialize import digest, serialize
from ..solver.api import SolveRequest, setup_digest

__all__ = [
    "WirePart",
    "affinity_key",
    "component_digest",
    "decompose",
    "recompose",
]

#: ("val", digest, text) introduces a shared part to a worker;
#: ("ref", digest) names one the worker has already seen.
WirePart = Tuple[str, ...]


def _solve_request_of(kind: str, payload: tuple) -> Optional[SolveRequest]:
    if kind == "solve" and len(payload) == 1 and isinstance(payload[0], SolveRequest):
        return payload[0]
    return None


def decompose(kind: str, payload: tuple) -> Tuple[List[Any], str]:
    """``(shared_components, delta_text)`` for one job payload.

    Shared components come back as live objects (the caller digests
    and interns them per worker); the delta is already canonical text.
    """
    request = _solve_request_of(kind, payload)
    if request is not None:
        delta = serialize(
            (
                request.budget,
                request.domain_overrides,
                request.resume,
                request.kernel,
            )
        )
        return [request.affine, request.task], delta
    if kind == "certify" and len(payload) == 3:
        affine, task, budget = payload
        return [affine, task], serialize((budget,))
    return [], serialize(payload)


def recompose(kind: str, shared: Sequence[Any], delta_text: str) -> tuple:
    """Inverse of :func:`decompose`, run worker-side.

    ``shared`` holds the resolved component objects in decomposition
    order (empty for generic payloads); ``delta_text`` is canonical
    text that the caller has *not* deserialized yet — this function
    owns the codec step so the worker can span/account it.
    """
    from ..engine.serialize import deserialize

    delta = deserialize(delta_text)
    if shared and kind == "solve":
        budget, overrides, resume, kernel = delta
        return (
            SolveRequest(
                affine=shared[0],
                task=shared[1],
                budget=budget,
                domain_overrides=overrides,
                resume=resume,
                kernel=kernel,
            ),
        )
    if shared and kind == "certify":
        (budget,) = delta
        return (shared[0], shared[1], budget)
    return delta


def component_digest(component: Any) -> str:
    """The interning address of one shared component."""
    return digest(component)


def affinity_key(kind: str, payload: tuple) -> Optional[str]:
    """The setup digest this job wants a warm worker for, if any."""
    request = _solve_request_of(kind, payload)
    if request is not None:
        return setup_digest(request.affine, request.task)
    if kind == "certify" and len(payload) == 3:
        return setup_digest(payload[0], payload[1])
    return None

"""Algorithm 1: solving ``R_A`` in the α-model (Section 5).

Each process runs two immediate snapshots separated by a *wait phase*:

1. ``IS1[i] <- FirstIS(input_i)`` — announce the first-round view;
2. wait until  ``crit ∨ (rank < conc)``  where

   * ``crit`` — the process belongs to a critical simplex: removing the
     processes that share its ``IS1`` view drops the agreement power of
     that view;
   * ``rank`` — how many processes it saw in round 1 have a *different*
     first view and no second view yet (potential contenders ahead of
     it);
   * ``conc`` — the concurrency allowance: the agreement power of its
     own view, or any level published in the ``Conc`` registers by
     terminated critical simplices;

3. ``IS2[i] <- SecondIS(IS1[i])``; publish ``Conc[i] = alpha(IS1[i])``
   if a critical simplex sharing the process's view has fully finished.

Theorem 7: in any α-model run, all correct processes return and the
returned second-round views form a simplex of ``R_A`` — both properties
are validated experimentally by the harness in this module (E8).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Generator, List, Optional, Tuple

from ..adversaries.agreement import AgreementFunction
from ..core.affine import AffineTask
from ..topology.chromatic import ChrVertex
from .immediate_snapshot import immediate_snapshot_protocol
from .memory import SharedMemory
from .scheduler import (
    ExecutionPlan,
    RunResult,
    random_alpha_model_plan,
    run_plan,
)


def algorithm1_protocol(
    pid: int,
    n: int,
    memory: SharedMemory,
    alpha: AgreementFunction,
) -> Generator:
    """Algorithm 1 for process ``pid`` (input = its own id).

    Returns ``(view1, view2)`` where ``view1`` is the set of processes
    seen in the first IS and ``view2`` maps each process seen in the
    second IS to its first view.
    """
    first_is = memory.snapshot_array("FirstIS")
    second_is = memory.snapshot_array("SecondIS")
    is1 = memory.snapshot_array("IS1")
    is2 = memory.snapshot_array("IS2")
    conc_regs = memory.snapshot_array("Conc", initial=0)

    # Line 5: first immediate snapshot on the initial state.
    first_view = yield from immediate_snapshot_protocol(pid, n, first_is, pid)
    view1: FrozenSet[int] = frozenset(first_view)
    yield ("update", is1, view1)

    # Lines 6-9: the wait phase.
    while True:
        is1_now = yield ("scan", is1)
        is2_now = yield ("scan", is2)
        conc_now = yield ("scan", conc_regs)
        same_view = {
            j for j in range(n) if is1_now[j] == view1
        }
        crit = alpha(view1) > alpha(view1 - same_view)
        rank = sum(
            1
            for j in view1
            if not is2_now[j] and is1_now[j] != view1
        )
        conc = max(alpha(view1), max(conc_now))
        if crit or rank < conc:
            break

    # Line 10: second immediate snapshot on the first view.
    second_view = yield from immediate_snapshot_protocol(
        pid, n, second_is, view1
    )
    view2: Dict[int, FrozenSet[int]] = dict(second_view)
    yield ("update", is2, view2)

    # Lines 11-12: publish the concurrency level of a terminated
    # critical simplex.
    is1_now = yield ("scan", is1)
    is2_now = yield ("scan", is2)
    finished_same_view = {
        j
        for j in range(n)
        if is1_now[j] == view1 and is2_now[j]
    }
    if alpha(view1) > alpha(view1 - finished_same_view):
        yield ("update", conc_regs, alpha(view1))

    return view1, view2


# ----------------------------------------------------------------------
# Harness: run the protocol, map outputs into Chr² s, check against R_A
# ----------------------------------------------------------------------
def outputs_to_simplex(
    outputs: Dict[int, Tuple[FrozenSet[int], Dict[int, FrozenSet[int]]]],
) -> FrozenSet[ChrVertex]:
    """Interpret per-process ``(view1, view2)`` as a simplex of ``Chr² s``.

    The first-round vertex of process ``j`` is ``(j, view1_j)``; the
    second-round vertex of ``i`` is ``(i, {(j, view1_j) : j seen})``.
    """
    simplex = set()
    for pid, (_, view2) in outputs.items():
        carrier = frozenset(
            ChrVertex(j, frozenset(view1_j)) for j, view1_j in view2.items()
        )
        simplex.add(ChrVertex(pid, carrier))
    return frozenset(simplex)


@dataclass
class Algorithm1Outcome:
    """One validated execution of Algorithm 1."""

    plan: ExecutionPlan
    result: RunResult
    simplex: FrozenSet[ChrVertex]
    in_affine_task: bool


def run_algorithm1(
    alpha: AgreementFunction,
    plan: ExecutionPlan,
    affine_task: Optional[AffineTask] = None,
    max_steps: int = 200_000,
) -> Algorithm1Outcome:
    """Execute Algorithm 1 under a plan and check Theorem 7's safety.

    Liveness (all correct processes decide) is enforced by
    :func:`repro.runtime.scheduler.run_plan`, which raises
    :class:`LivenessViolation` otherwise.
    """
    n = alpha.n

    def factory(pid: int, memory: SharedMemory):
        return algorithm1_protocol(pid, n, memory, alpha)

    result = run_plan(factory, n, plan, max_steps=max_steps)
    simplex = outputs_to_simplex(result.outputs)
    in_task = True
    if affine_task is not None:
        in_task = simplex in affine_task.complex
    return Algorithm1Outcome(plan, result, simplex, in_task)


def fuzz_case_seed(base_seed: int, index: int) -> int:
    """A deterministic, well-mixed per-case seed for batch fuzzing.

    Derived by hashing ``(base_seed, index)``, so every case has an
    independent RNG stream and a batch's outcomes depend only on the
    base seed and the case index — never on worker count or on the
    order cases happen to execute in.
    """
    import hashlib

    material = f"repro.algorithm1:{base_seed}:{index}".encode("ascii")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def run_fuzz_case(
    alpha: AgreementFunction,
    affine_task: AffineTask,
    case_seed: int,
    max_steps: int = 200_000,
) -> Algorithm1Outcome:
    """One self-contained fuzz case: plan from ``case_seed``, then run.

    The engine's ``fuzz`` job kind calls this in worker processes; the
    plan is regenerated from the seed on the worker, so only scalars
    cross the process boundary.
    """
    rng = random.Random(case_seed)
    plan = random_alpha_model_plan(alpha, rng)
    return run_algorithm1(alpha, plan, affine_task, max_steps=max_steps)


def fuzz_algorithm1(
    alpha: AgreementFunction,
    affine_task: AffineTask,
    runs: int,
    seed: int = 0,
) -> List[Algorithm1Outcome]:
    """Experiment E8: many random α-model executions, all validated.

    Raises ``AssertionError`` on any safety violation and
    :class:`LivenessViolation` on any liveness failure.
    """
    rng = random.Random(seed)
    outcomes = []
    for _ in range(runs):
        plan = random_alpha_model_plan(alpha, rng)
        outcome = run_algorithm1(alpha, plan, affine_task)
        if not outcome.in_affine_task:
            raise AssertionError(
                f"Theorem 7 safety violated: outputs {outcome.simplex} "
                f"outside {affine_task.name} under plan {plan}"
            )
        outcomes.append(outcome)
    return outcomes

"""The iterated immediate snapshot (IIS) executor.

Combinatorially, a round of IIS on participants ``P`` is an ordered set
partition of ``P``; the executor threads the full-information protocol
through a sequence of such rounds and exposes, after round ``m``, each
process's vertex in ``Chr^m s`` — making the correspondence
``IS^m runs ⇔ facets of Chr^m s`` (Section 2) executable and testable.

Value passing mirrors the protocol: the first value a process submits
is its initial state; the round-``r`` submission is its round-``r-1``
output.  :meth:`IISExecution.value_view_of` exposes the actual data a
process holds, :meth:`IISExecution.vertex_of` its combinatorial shadow.
"""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from ..topology.chromatic import ChrVertex
from ..topology.enumeration import (
    OrderedPartition,
    ordered_set_partitions,
    views_of_partition,
)


class IISExecution:
    """A (finite prefix of an) IIS run over ``n`` processes.

    Parameters
    ----------
    n:
        Number of processes; all of them take part in every round
        (there are no failures in the IIS model).
    initial_values:
        Optional initial states; defaults to each process's id.
    """

    def __init__(
        self,
        n: int,
        initial_values: Optional[Dict[int, Any]] = None,
    ):
        self.n = n
        self.rounds: List[OrderedPartition] = []
        values = initial_values or {i: i for i in range(n)}
        if set(values) != set(range(n)):
            raise ValueError("need an initial value per process")
        # Combinatorial state: per-process vertex of Chr^r s.
        self._vertices: Dict[int, Any] = {i: i for i in range(n)}
        # Full-information state: per-process data view.
        self._values: Dict[int, Any] = dict(values)

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    def step_round(self, partition: OrderedPartition) -> None:
        """Execute one IS round given as an ordered partition of ``0..n-1``."""
        flattened = frozenset().union(*partition) if partition else frozenset()
        if flattened != frozenset(range(self.n)):
            raise ValueError("a round must partition all processes")
        views = views_of_partition(partition)
        new_vertices = {}
        new_values = {}
        for pid in range(self.n):
            seen = views[pid]
            new_vertices[pid] = ChrVertex(
                pid, frozenset(self._lift(q) for q in seen)
            )
            new_values[pid] = {q: self._values[q] for q in seen}
        self._vertices = new_vertices
        self._values = new_values
        self.rounds.append(partition)

    def _lift(self, pid: int):
        """The submitted item of ``pid`` this round: its previous vertex."""
        return self._vertices[pid]

    def vertex_of(self, pid: int):
        """The process's current vertex of ``Chr^r s`` (its id at r=0)."""
        return self._vertices[pid]

    def value_view_of(self, pid: int) -> Any:
        """The process's current full-information data."""
        return self._values[pid]

    def facet(self) -> FrozenSet:
        """The simplex of ``Chr^r s`` formed by all current vertices."""
        if not self.rounds:
            raise ValueError("no rounds executed yet")
        return frozenset(self._vertices.values())


def run_iis(
    n: int, partitions: Sequence[OrderedPartition]
) -> IISExecution:
    """Execute a sequence of IS rounds and return the execution."""
    execution = IISExecution(n)
    for partition in partitions:
        execution.step_round(partition)
    return execution


def random_partition(n: int, rng: random.Random) -> OrderedPartition:
    """A uniformly-ish random ordered set partition of ``0..n-1``."""
    processes = list(range(n))
    rng.shuffle(processes)
    blocks: List[frozenset] = []
    index = 0
    while index < len(processes):
        size = rng.randint(1, len(processes) - index)
        blocks.append(frozenset(processes[index : index + size]))
        index += size
    return tuple(blocks)


def random_iis_run(n: int, rounds: int, seed: int = 0) -> IISExecution:
    """A random ``rounds``-round IIS execution."""
    rng = random.Random(seed)
    return run_iis(n, [random_partition(n, rng) for _ in range(rounds)])


def all_two_round_runs(n: int):
    """Yield every 2-round IIS run as ``(partition1, partition2, facet)``.

    Exactly the facets of ``Chr² s`` — there are ``Fubini(n)²`` of them.
    """
    for first in ordered_set_partitions(range(n)):
        for second in ordered_set_partitions(range(n)):
            execution = run_iis(n, [first, second])
            yield first, second, execution.facet()

"""One-shot immediate snapshot from atomic snapshots (Borowsky–Gafni).

The classic wait-free level-descent algorithm: each process starts at
level ``n + 1`` and repeatedly (1) descends one level, (2) writes
``(level, value)``, (3) scans; it returns when the set ``S`` of
processes at its level or below has size at least its level, outputting
``S``'s values.  The outputs satisfy the three IS properties
(self-inclusion, containment, immediacy) in *every* interleaving — one
of the property-based test targets of this library.

The protocol is written as a sub-generator compatible with
:mod:`repro.runtime.scheduler`; embed it in larger protocols with
``result = yield from immediate_snapshot_protocol(...)``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from .memory import SharedMemory, SnapshotArray


def immediate_snapshot_protocol(
    pid: int,
    n: int,
    array: SnapshotArray,
    value: Any,
) -> Generator:
    """Run one immediate snapshot; returns ``{pid: value}`` for the view.

    ``array`` cells hold ``(level, value)`` pairs; ``None`` means the
    process has not arrived.
    """
    level = n + 1
    while True:
        level -= 1
        yield ("update", array, (level, value))
        content = yield ("scan", array)
        at_or_below = {
            j
            for j, cell in enumerate(content)
            if cell is not None and cell[0] <= level
        }
        if len(at_or_below) >= level:
            return {j: content[j][1] for j in at_or_below}


def standalone_is_protocol(
    pid: int, n: int, memory: SharedMemory, value: Any
) -> Generator:
    """A full protocol running a single shared IS object named ``"IS"``."""
    array = memory.snapshot_array("IS")
    result = yield from immediate_snapshot_protocol(pid, n, array, value)
    return result


def views_from_outputs(outputs: Dict[int, Dict[int, Any]]) -> Dict[int, frozenset]:
    """Project protocol outputs to view sets (who saw whom)."""
    return {pid: frozenset(view) for pid, view in outputs.items()}

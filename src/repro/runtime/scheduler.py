"""Cooperative scheduling of asynchronous protocols.

Protocols are Python generators that *yield one shared-memory operation
per step* and receive the operation's result at the next resumption.
The scheduler interleaves processes according to a schedule — a
sequence of process ids — so every interleaving of atomic steps is
expressible, and the adversary (test, benchmark, fuzzer) fully controls
asynchrony and crashes.

Yielded operations (``obj`` is a runtime memory object):

========================  =============================================
``("update", a, v)``      ``a.update(pid, v)`` on a SnapshotArray
``("update_at", a, i, v)``  multi-writer write to cell ``i``
``("scan", a)``           atomic scan of a SnapshotArray
``("read", a, i)``        read cell ``i`` of a SnapshotArray
``("write", r, v)``       write a Register
``("readreg", r)``        read a Register
========================  =============================================

A process finishes by returning; its return value is its protocol
output.  Crashes are expressed by schedules that stop scheduling a
process.

The module also generates **α-model-compliant executions**: choose a
participating set ``P`` with ``alpha(P) >= 1``, at most
``alpha(P) - 1`` faulty processes inside ``P``, crash points, and a
seeded fair interleaving of the survivors (Definition 3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Generator,
    Iterable,
    Optional,
)

from ..adversaries.agreement import AgreementFunction
from .memory import SharedMemory

Protocol = Generator  # yields op tuples, receives results, returns output


class ProtocolError(Exception):
    """A protocol yielded a malformed operation."""


class LivenessViolation(Exception):
    """Correct processes failed to decide within the step budget."""


def execute_operation(op: tuple, pid: int) -> Any:
    """Interpret one yielded operation atomically."""
    if not isinstance(op, tuple) or not op:
        raise ProtocolError(f"process {pid} yielded {op!r}")
    kind = op[0]
    if kind == "update":
        _, array, value = op
        array.update(pid, value)
        return None
    if kind == "update_at":
        # Multi-writer cell write (used by simulations maintaining
        # shared per-simulated-process state).
        _, array, index, value = op
        array.update(index, value)
        return None
    if kind == "scan":
        _, array = op
        return array.scan()
    if kind == "read":
        _, array, index = op
        return array.read(index)
    if kind == "write":
        _, register, value = op
        register.write(value)
        return None
    if kind == "readreg":
        (_, register) = op
        return register.read()
    raise ProtocolError(f"process {pid} yielded unknown op {op!r}")


@dataclass
class RunResult:
    """Outcome of a scheduled execution."""

    outputs: Dict[int, Any]
    steps_taken: int
    participants: FrozenSet[int]
    crashed: FrozenSet[int]

    def decided(self) -> FrozenSet[int]:
        return frozenset(self.outputs)


class Scheduler:
    """Drives a set of protocol generators through a schedule."""

    def __init__(self, protocols: Dict[int, Protocol]):
        self.protocols = dict(protocols)
        self.outputs: Dict[int, Any] = {}
        self.started: set = set()
        self.pending_result: Dict[int, Any] = {}

    def step(self, pid: int) -> bool:
        """Advance process ``pid`` by one atomic step.

        Returns False when the process has already finished (the step is
        a no-op), True otherwise.
        """
        if pid in self.outputs or pid not in self.protocols:
            return False
        protocol = self.protocols[pid]
        try:
            if pid not in self.started:
                self.started.add(pid)
                op = next(protocol)
            else:
                op = protocol.send(self.pending_result.pop(pid, None))
        except StopIteration as stop:
            self.outputs[pid] = stop.value
            return True
        self.pending_result[pid] = execute_operation(op, pid)
        return True

    def decided_set(self) -> FrozenSet[int]:
        """Processes that have returned an output."""
        return frozenset(self.outputs)

    def run(
        self,
        schedule: Iterable[int],
        stop_when: Optional[Callable[["Scheduler"], bool]] = None,
    ) -> Dict[int, Any]:
        """Run the given schedule; return per-process outputs so far."""
        for pid in schedule:
            self.step(pid)
            if stop_when is not None and stop_when(self):
                break
        return dict(self.outputs)


# ----------------------------------------------------------------------
# Schedule generation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionPlan:
    """An α-model-compliant execution: who runs, who crashes, and when."""

    participants: FrozenSet[int]
    faulty: FrozenSet[int]
    crash_after_steps: Dict[int, int] = field(default_factory=dict)
    seed: int = 0


def random_alpha_model_plan(
    alpha: AgreementFunction, rng: random.Random
) -> ExecutionPlan:
    """Sample a random execution plan satisfying Definition 3.

    Participation ``P`` is drawn among sets with ``alpha(P) >= 1``; the
    faulty set ``F ⊆ P`` has ``|F| <= alpha(P) - 1``; crash points are
    random small step counts.
    """
    positive = alpha.positive_participations()
    participants = rng.choice(positive)
    budget = alpha(participants) - 1
    n_faulty = rng.randint(0, min(budget, len(participants)))
    faulty = frozenset(rng.sample(sorted(participants), n_faulty))
    crash_after = {pid: rng.randint(0, 30) for pid in faulty}
    return ExecutionPlan(
        participants=frozenset(participants),
        faulty=faulty,
        crash_after_steps=crash_after,
        seed=rng.randint(0, 2**31),
    )


def run_plan(
    protocol_factory: Callable[[int, SharedMemory], Protocol],
    n: int,
    plan: ExecutionPlan,
    max_steps: int = 100_000,
) -> RunResult:
    """Execute a plan with fair random scheduling of non-crashed processes.

    Raises :class:`LivenessViolation` when some correct participant has
    not decided after ``max_steps`` scheduler steps — the executable
    form of a liveness failure.
    """
    rng = random.Random(plan.seed)
    memory = SharedMemory(n)
    protocols = {
        pid: protocol_factory(pid, memory) for pid in plan.participants
    }
    scheduler = Scheduler(protocols)
    correct = plan.participants - plan.faulty
    steps_of: Dict[int, int] = {pid: 0 for pid in plan.participants}
    total = 0
    while total < max_steps:
        if correct <= scheduler.decided_set():
            break
        alive = [
            pid
            for pid in plan.participants
            if pid not in scheduler.outputs
            and (
                pid in correct
                or steps_of[pid] < plan.crash_after_steps.get(pid, 0)
            )
        ]
        if not alive:
            break
        # Fair among correct: every correct process is scheduled
        # infinitely often under uniform random choice.
        pid = rng.choice(alive)
        scheduler.step(pid)
        steps_of[pid] += 1
        total += 1
    if not correct <= scheduler.decided_set():
        raise LivenessViolation(
            f"undecided correct processes "
            f"{sorted(correct - scheduler.decided_set())} after {total} steps "
            f"(plan={plan})"
        )
    return RunResult(
        outputs=dict(scheduler.outputs),
        steps_taken=total,
        participants=plan.participants,
        crashed=plan.faulty,
    )

"""Simulating atomic-snapshot memory inside ``R*_A`` (Section 6.1).

The paper simulates a run of the α-set-consensus model inside the
iterated affine model: sequence-numbered writes plus a lock-free
snapshot emulation in the style of Gafni–Rajsbaum's iterated-task
simulation [16], with α-adaptive set consensus provided by ``µ_Q``
(see :mod:`repro.protocols.adaptive_set_consensus`).

This module implements the memory half.  Every iteration, each process
submits its whole knowledge vector (per-process latest ``(seq, value)``
plus termination flags); received views are merged entrywise by
sequence number.  Operation completion is *knowledge-based*:

* a *write* (seq ``s`` by ``p``) completes once every active process is
  known to hold ``p``'s entry at seq >= ``s`` — known either directly
  (their submitted state was seen, transitively) or structurally: in an
  IS round, a process outside ``p``'s view necessarily saw ``p``'s
  submission (containment + immediacy), so it is recorded as having
  acknowledged everything ``p`` had submitted;
* a *snapshot* returns the process's current merged vector once every
  active process is known to dominate it, by the same two mechanisms.

The paper's fast/slow asymmetry falls out: a process with small views
completes via structural acknowledgments without ever reading the slow
processes' data, while a process with large views must wait — unless
the fast processes terminate, shrinking the active set.

The test-suite validates, over fuzzed ``R*_A`` executions, the
linearizability evidence: returned snapshots are totally ordered by
entrywise dominance, contain every write completed before they were
requested, and all processes terminate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.affine import AffineTask
from .affine_executor import (
    AffineModelExecutor,
    FacetChooser,
    IterationView,
)

Vector = Dict[int, Tuple[int, Any]]  # pid -> (seq, value)


def dominates(left: Vector, right: Vector) -> bool:
    """Entrywise: every entry of ``right`` is matched or beaten."""
    return all(
        pid in left and left[pid][0] >= seq
        for pid, (seq, _value) in right.items()
    )


def merge(into: Vector, other: Vector) -> None:
    """Entrywise max-by-seq merge of ``other`` into ``into``."""
    for pid, (seq, value) in other.items():
        if pid not in into or into[pid][0] < seq:
            into[pid] = (seq, value)


@dataclass
class PendingOp:
    """An in-flight simulated operation."""

    kind: str  # "write" | "snapshot"
    candidate: Any  # seq for writes, a Vector copy for snapshots
    acked: set = field(default_factory=set)


@dataclass
class SimProcess:
    """Simulation-layer state of one process."""

    pid: int
    vector: Vector = field(default_factory=dict)
    known_states: Dict[int, Vector] = field(default_factory=dict)
    terminated_seen: set = field(default_factory=set)
    seq: int = 0
    pending: Optional[PendingOp] = None
    completed_ops: List[Tuple[str, Any]] = field(default_factory=list)
    terminated: bool = False


class SnapshotSimulation:
    """Drives simulated write/snapshot scripts through ``R*_A``.

    Each process executes a finite *script* of operations:
    ``("write", value)`` or ``("snapshot",)``.  After its script
    completes, the process terminates (and keeps participating with a
    terminated flag, letting slower processes stop waiting for it —
    the paper's ``⊥``-input convention).
    """

    def __init__(
        self,
        task: AffineTask,
        scripts: Dict[int, List[tuple]],
        chooser: Optional[FacetChooser] = None,
        seed: int = 0,
    ):
        self.task = task
        self.n = task.n
        self.executor = AffineModelExecutor(task, chooser=chooser, seed=seed)
        self.processes = {pid: SimProcess(pid) for pid in range(self.n)}
        self.scripts = {pid: list(script) for pid, script in scripts.items()}
        self.script_index = {pid: 0 for pid in range(self.n)}
        self.iterations = 0

    # ------------------------------------------------------------------
    def _submitted(self, proc: SimProcess) -> dict:
        return {
            "vector": dict(proc.vector),
            "terminated": proc.terminated,
        }

    def _start_next_op(self, proc: SimProcess) -> None:
        if proc.pending is not None or proc.terminated:
            return
        index = self.script_index[proc.pid]
        script = self.scripts.get(proc.pid, [])
        if index >= len(script):
            proc.terminated = True
            return
        op = script[index]
        if op[0] == "write":
            proc.seq += 1
            proc.vector[proc.pid] = (proc.seq, op[1])
            proc.pending = PendingOp("write", proc.seq)
        elif op[0] == "snapshot":
            proc.pending = PendingOp("snapshot", dict(proc.vector))
        else:
            raise ValueError(f"unknown simulated op {op!r}")

    def _op_satisfied_by(self, proc: SimProcess, other_state: Vector) -> bool:
        if proc.pending.kind == "write":
            entry = other_state.get(proc.pid)
            return entry is not None and entry[0] >= proc.pending.candidate
        return dominates(other_state, proc.pending.candidate)

    def _try_complete(self, proc: SimProcess) -> None:
        if proc.pending is None:
            return
        active = {
            pid
            for pid in range(self.n)
            if pid != proc.pid and pid not in proc.terminated_seen
        }
        if active <= proc.pending.acked:
            op = proc.pending
            if op.kind == "write":
                proc.completed_ops.append(("write", op.candidate))
            else:
                # The returned snapshot is the *current* vector: it was
                # dominated by everyone when last checked and only grew
                # with information already disseminated.
                proc.completed_ops.append(("snapshot", dict(op.candidate)))
            proc.pending = None
            self.script_index[proc.pid] += 1

    # ------------------------------------------------------------------
    def run_iteration(self) -> None:
        for proc in self.processes.values():
            self._start_next_op(proc)
        states = {
            pid: self._submitted(proc) for pid, proc in self.processes.items()
        }
        views = self.executor.run_iteration(states)
        self.iterations += 1
        for pid, view in views.items():
            self._absorb(self.processes[pid], view, states)
        for proc in self.processes.values():
            self._try_complete(proc)

    def _absorb(
        self, proc: SimProcess, view: IterationView, states: dict
    ) -> None:
        # Merge every witnessed state (round-1 and round-2 data).
        witnessed: Dict[int, dict] = {}
        for block in view.view2_states.values():
            witnessed.update(block)
        witnessed.update(view.view1_states)
        for pid, state in witnessed.items():
            merge(proc.vector, state["vector"])
            proc.known_states[pid] = dict(state["vector"])
            if state["terminated"]:
                proc.terminated_seen.add(pid)
        if proc.pending is not None:
            # Direct acknowledgments: witnessed states that dominate.
            for pid, state in witnessed.items():
                if pid != proc.pid and self._op_satisfied_by(
                    proc, state["vector"]
                ):
                    proc.pending.acked.add(pid)
            # Structural acknowledgments: processes outside the
            # first-round view necessarily saw this iteration's
            # submission, which carried the pending candidate.
            outside = frozenset(range(self.n)) - view.view1
            candidate_submitted = (
                proc.pending.kind == "write"
                and states[proc.pid]["vector"].get(proc.pid, (0,))[0]
                >= proc.pending.candidate
            ) or (
                proc.pending.kind == "snapshot"
                and dominates(
                    states[proc.pid]["vector"], proc.pending.candidate
                )
            )
            if candidate_submitted:
                proc.pending.acked.update(outside)

    # ------------------------------------------------------------------
    def run(self, max_iterations: int = 200) -> Dict[int, List[tuple]]:
        """Iterate until every script finishes; return completed ops."""
        for _ in range(max_iterations):
            if all(proc.terminated for proc in self.processes.values()):
                break
            self.run_iteration()
        if not all(proc.terminated for proc in self.processes.values()):
            raise AssertionError(
                f"simulation did not terminate in {max_iterations} iterations"
            )
        return {
            pid: list(proc.completed_ops)
            for pid, proc in self.processes.items()
        }


# ----------------------------------------------------------------------
# Linearizability evidence
# ----------------------------------------------------------------------
def snapshots_totally_ordered(results: Dict[int, List[tuple]]) -> bool:
    """Are all returned snapshots pairwise dominance-comparable?"""
    snapshots = [
        op[1]
        for ops in results.values()
        for op in ops
        if op[0] == "snapshot"
    ]
    for i, a in enumerate(snapshots):
        for b in snapshots[i + 1 :]:
            if not (dominates(a, b) or dominates(b, a)):
                return False
    return True


def snapshots_contain_own_writes(results: Dict[int, List[tuple]]) -> bool:
    """Every snapshot reflects the writes its process completed before it."""
    for pid, ops in results.items():
        last_seq = 0
        for op in ops:
            if op[0] == "write":
                last_seq = op[1]
            else:
                entry = op[1].get(pid)
                if last_seq and (entry is None or entry[0] < last_seq):
                    return False
    return True


def fuzz_snapshot_simulation(
    task: AffineTask,
    runs: int,
    seed: int = 0,
    script_length: int = 4,
) -> List[Dict[int, List[tuple]]]:
    """Experiment E13 (memory half): fuzz the simulation in ``R*_A``."""
    rng = random.Random(seed)
    all_results = []
    for index in range(runs):
        scripts = {}
        for pid in range(task.n):
            script: List[tuple] = []
            for step in range(rng.randint(1, script_length)):
                if rng.random() < 0.5:
                    script.append(("write", f"p{pid}s{step}"))
                else:
                    script.append(("snapshot",))
            scripts[pid] = script
        sim = SnapshotSimulation(
            task, scripts, seed=rng.randint(0, 2**31)
        )
        results = sim.run()
        if not snapshots_totally_ordered(results):
            raise AssertionError(f"snapshot comparability violated, run {index}")
        if not snapshots_contain_own_writes(results):
            raise AssertionError(f"self-inclusion violated, run {index}")
        all_results.append(results)
    return all_results

"""BG simulation: resilient execution of n simulated processes.

Borowsky–Gafni's classic reduction, built on this library's runtime:
``s`` simulators jointly execute the codes of ``n`` simulated processes
against a simulated atomic-snapshot memory.  Every simulated snapshot
must return the same value to every simulator, so each simulated step
``(j, step)`` is funneled through a dedicated safe-agreement instance;
a simulator crash can leave at most one instance unresolved (a
simulator is inside at most one unsafe window at a time), blocking at
most one simulated process per crash.

Simulated codes are deterministic generators over the mini-language
``("write", value)`` / ``("snapshot",)``, finishing with a return
value.  Simulators sweep round-robin over the simulated processes,
skipping any whose current safe agreement is unresolved (non-blocking
probe) — the mechanism behind the BG guarantee that with ``f`` crashed
simulators at least ``n - f`` simulated processes complete.

Validated properties (see the tests):

* *agreement* — all simulators observe identical simulated histories;
* *self-inclusion / monotonicity* — agreed snapshots contain the
  process's own earlier writes and only grow along each history;
* *progress* — at least ``n - f`` simulated processes complete.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .memory import SharedMemory
from .scheduler import Scheduler

SimulatedCode = Callable[[int], Generator]

#: Consecutive fruitless sweeps before a simulator gives up on its
#: remaining (blocked) simulated processes and returns partial results.
#: Only per-simulator completeness is affected — the harness checks
#: progress on the *union* over surviving simulators.
STALL_PATIENCE = 50


@dataclass
class _SimState:
    """One simulator's bookkeeping for one simulated process."""

    code: Generator
    current_op: Optional[tuple] = None
    step: int = 0
    proposed_current: bool = False
    finished: bool = False
    output: Any = None
    history: List[Tuple[str, Any]] = field(default_factory=list)

    def advance(self, send_value: Any) -> None:
        """Feed an op result into the code; load the next op."""
        self.step += 1
        self.proposed_current = False
        try:
            self.current_op = self.code.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.output = stop.value

    def prime(self) -> None:
        try:
            self.current_op = next(self.code)
        except StopIteration as stop:
            self.finished = True
            self.output = stop.value


def bg_simulator_protocol(
    simulator: int,
    n_simulators: int,
    memory: SharedMemory,
    codes: Dict[int, SimulatedCode],
) -> Generator:
    """One BG simulator; returns ``{j: (output, history)}``."""
    n_sim = len(codes)
    sim_memory = memory.snapshot_array("SimMem", size=n_sim)
    states = {j: _SimState(code=codes[j](j)) for j in sorted(codes)}
    for state in states.values():
        state.prime()

    stalled_sweeps = 0
    while True:
        unfinished = [j for j, s in states.items() if not s.finished]
        if not unfinished or stalled_sweeps >= STALL_PATIENCE:
            break
        progressed = False
        for j in unfinished:
            state = states[j]
            op = state.current_op
            if op[0] == "write":
                yield from _apply_simulated_write(
                    sim_memory, j, state.step, op[1]
                )
                state.history.append(("write", op[1]))
                state.advance(None)
                progressed = True
            elif op[0] == "snapshot":
                array = memory.snapshot_array(
                    f"SA[{j}][{state.step}]", initial=None
                )
                if not state.proposed_current:
                    view = yield ("scan", sim_memory)
                    proposal = _freeze_view(view, n_sim)
                    yield from _sa_propose(array, proposal)
                    state.proposed_current = True
                agreed = yield from _sa_probe(array)
                if agreed is None:
                    continue  # blocked; try other processes
                state.history.append(("snapshot", agreed[1]))
                state.advance(agreed[1])
                progressed = True
            else:
                raise ValueError(f"unknown simulated op {op!r}")
        stalled_sweeps = 0 if progressed else stalled_sweeps + 1

    return {
        j: (state.output, list(state.history))
        for j, state in states.items()
        if state.finished
    }


def _sa_propose(array, value) -> Generator:
    """Safe-agreement propose (level-1 window, then resolve)."""
    yield ("update", array, (1, value))
    content = yield ("scan", array)
    someone_at_two = any(
        cell is not None and cell[0] == 2 for cell in content
    )
    yield ("update", array, (0 if someone_at_two else 2, value))


def _sa_probe(array) -> Generator:
    """Non-blocking read: ``("agreed", v)`` or ``None`` if unresolved."""
    content = yield ("scan", array)
    if any(cell is not None and cell[0] == 1 for cell in content):
        return None
    candidates = {
        index: cell[1]
        for index, cell in enumerate(content)
        if cell is not None and cell[0] == 2
    }
    if not candidates:
        return None
    return ("agreed", candidates[min(candidates)])


def _apply_simulated_write(sim_memory, j, step, value) -> Generator:
    """Record ``(step, value)`` in j's write log (idempotent).

    Multiple simulators may apply the same write; the value for a given
    step is deterministic, so duplicate applications agree and the log
    is kept sorted by step.
    """
    view = yield ("scan", sim_memory)
    log = list(view[j] or ())
    if not any(entry[0] == step for entry in log):
        log.append((step, value))
        log.sort()
        yield ("update_at", sim_memory, j, tuple(log))


def _freeze_view(view, n_sim) -> tuple:
    """Hashable snapshot value: the latest write per simulated process."""
    frozen = []
    for j in range(n_sim):
        log = view[j] or ()
        frozen.append(log[-1][1] if log else None)
    return tuple(frozen)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
@dataclass
class BGOutcome:
    """One BG simulation run."""

    per_simulator: Dict[int, Dict[int, Tuple[Any, list]]]
    crashed_simulators: frozenset

    def completed_simulated(self) -> frozenset:
        """Simulated processes completed by some surviving simulator."""
        done = set()
        for results in self.per_simulator.values():
            done.update(results)
        return frozenset(done)

    def histories_agree(self) -> bool:
        """All simulators saw identical histories per simulated process."""
        merged: Dict[int, list] = {}
        for results in self.per_simulator.values():
            for j, (_output, history) in results.items():
                if j in merged and merged[j] != history:
                    return False
                merged[j] = history
        return True

    def merged_histories(self) -> Dict[int, list]:
        merged: Dict[int, list] = {}
        for results in self.per_simulator.values():
            for j, (_output, history) in results.items():
                merged.setdefault(j, history)
        return merged


def run_bg_simulation(
    codes: Dict[int, SimulatedCode],
    n_simulators: int,
    crash_simulators: Optional[Dict[int, int]] = None,
    seed: int = 0,
    max_steps: int = 300_000,
) -> BGOutcome:
    """Run the simulators under a random schedule with optional crashes.

    ``crash_simulators`` maps a simulator id to the step count after
    which it stops forever.
    """
    crash_simulators = crash_simulators or {}
    rng = random.Random(seed)
    memory = SharedMemory(n_simulators)
    scheduler = Scheduler(
        {
            s: bg_simulator_protocol(s, n_simulators, memory, codes)
            for s in range(n_simulators)
        }
    )
    steps_of = {s: 0 for s in range(n_simulators)}
    for _ in range(max_steps):
        alive = [
            s
            for s in range(n_simulators)
            if s not in scheduler.outputs
            and steps_of[s] < crash_simulators.get(s, max_steps + 1)
        ]
        if not alive:
            break
        s = rng.choice(alive)
        scheduler.step(s)
        steps_of[s] += 1
    return BGOutcome(
        per_simulator=dict(scheduler.outputs),
        crashed_simulators=frozenset(crash_simulators),
    )


def full_information_code(rounds: int) -> SimulatedCode:
    """A standard simulated protocol: ``rounds`` write/snapshot pairs."""

    def code(j: int) -> Generator:
        state: Any = j
        for _ in range(rounds):
            yield ("write", state)
            state = yield ("snapshot",)
        return state

    return code


def check_simulated_history(j: int, history: List[Tuple[str, Any]]) -> None:
    """Assert self-inclusion and monotonicity of j's agreed snapshots."""
    last_write: Any = None
    previous_snapshot: Optional[tuple] = None
    for kind, payload in history:
        if kind == "write":
            last_write = payload
        else:
            assert payload[j] == last_write, (
                f"snapshot for p{j} missing its own write"
            )
            if previous_snapshot is not None:
                for index, (old, new) in enumerate(
                    zip(previous_snapshot, payload)
                ):
                    if old is not None:
                        assert new is not None, (
                            f"snapshot for p{j} forgot p{index}"
                        )
            previous_snapshot = payload

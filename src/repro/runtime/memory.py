"""Shared-memory objects for the asynchronous runtime.

The runtime executes protocols cooperatively: one process performs one
shared-memory operation per scheduler step, so each operation on the
objects below is trivially atomic.  Two primitives model the paper's
atomic-snapshot (AS) memory:

* :class:`Register` — a single-writer multi-reader atomic register;
* :class:`SnapshotArray` — a vector of per-process cells supporting
  ``update(i, v)`` and an atomic ``scan()``.

Every object records an operation trace, which the test-suite uses to
assert protocol-level properties (e.g. that immediate-snapshot outputs
were justified by the memory history).
"""

from __future__ import annotations

from typing import Any, List, Tuple


class Register:
    """A single-writer multi-reader atomic register."""

    def __init__(self, name: str, initial: Any = None):
        self.name = name
        self._value = initial
        self.trace: List[Tuple[str, Any]] = []

    def read(self) -> Any:
        self.trace.append(("read", self._value))
        return self._value

    def write(self, value: Any) -> None:
        self.trace.append(("write", value))
        self._value = value

    def peek(self) -> Any:
        """Non-logged read for assertions and reporting."""
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Register({self.name}={self._value!r})"


class SnapshotArray:
    """An ``n``-cell atomic-snapshot object (update / scan).

    Cell ``i`` is written only by process ``i`` (single-writer); a scan
    returns an immutable copy of the whole vector.  This is the paper's
    AS memory (Section 2).
    """

    def __init__(self, name: str, n: int, initial: Any = None):
        self.name = name
        self.n = n
        self._cells: List[Any] = [initial] * n
        self.trace: List[Tuple[str, int, Any]] = []

    def update(self, process: int, value: Any) -> None:
        if not 0 <= process < self.n:
            raise IndexError(f"process {process} outside 0..{self.n - 1}")
        self.trace.append(("update", process, value))
        self._cells[process] = value

    def scan(self) -> Tuple[Any, ...]:
        view = tuple(self._cells)
        self.trace.append(("scan", -1, view))
        return view

    def read(self, index: int) -> Any:
        """Read a single cell (one register of the vector)."""
        value = self._cells[index]
        self.trace.append(("read", index, value))
        return value

    def peek(self) -> Tuple[Any, ...]:
        """Non-logged scan for assertions and reporting."""
        return tuple(self._cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SnapshotArray({self.name}, n={self.n})"


class SharedMemory:
    """A namespace of shared objects allocated by a protocol run."""

    def __init__(self, n: int):
        self.n = n
        self._objects: dict = {}

    def register(self, name: str, initial: Any = None) -> Register:
        return self._get_or_create(name, lambda: Register(name, initial))

    def snapshot_array(
        self, name: str, initial: Any = None, size: Any = None
    ) -> SnapshotArray:
        """Get or create an array; ``size`` overrides the default ``n``
        (e.g. simulated memories indexed by simulated processes)."""
        return self._get_or_create(
            name, lambda: SnapshotArray(name, size or self.n, initial)
        )

    def _get_or_create(self, name: str, factory):
        if name not in self._objects:
            self._objects[name] = factory()
        return self._objects[name]

    def __getitem__(self, name: str):
        return self._objects[name]

    def __contains__(self, name: str) -> bool:
        return name in self._objects

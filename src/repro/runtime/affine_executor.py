"""Executing the iterated affine model ``L*`` (Section 2 / Section 6).

An execution of ``L*`` is an infinite sequence of ``L``-iterations: in
each iteration every process submits its current state, the adversary
picks a facet of ``L`` (the combinatorial shape of the two IS rounds),
and each process receives its vertex together with the submitted states
of the processes it saw.  The executor materializes finite prefixes and
hands protocols exactly the information the model provides:

* ``vertex`` — the process's vertex of ``L`` for this iteration
  (relative to the iteration's own copy of ``Chr² s``);
* ``view1_states`` / ``view2_states`` — the data seen through the two
  rounds (first-round values are the iteration inputs; second-round
  values are first-round views).

Facet choice is adversarial: seeded-random by default, or any
caller-provided strategy (exhaustive enumeration in tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from ..core.affine import AffineTask
from ..topology.chromatic import ChrVertex
from ..topology.subdivision import carrier_in_s
from ..topology.enumeration import chr_facet_to_partition

FacetChooser = Callable[[int, AffineTask], FrozenSet[ChrVertex]]


@dataclass
class IterationView:
    """What one process learns from one affine-task iteration."""

    pid: int
    vertex: ChrVertex
    view1_states: Dict[int, Any]
    view2_states: Dict[int, Dict[int, Any]]

    @property
    def view1(self) -> FrozenSet[int]:
        """Processes seen in the first round."""
        return frozenset(self.view1_states)

    @property
    def witnessed(self) -> FrozenSet[int]:
        """All processes seen across both rounds: ``carrier(v, s)``."""
        return carrier_in_s([self.vertex])


def random_facet_chooser(seed: int) -> FacetChooser:
    """The default adversary: an arbitrary facet per iteration, seeded."""
    rng = random.Random(seed)

    def choose(iteration: int, task: AffineTask) -> FrozenSet[ChrVertex]:
        facets = sorted(task.complex.facets, key=repr)
        return facets[rng.randrange(len(facets))]

    return choose


def facet_to_round_partitions(facet: FrozenSet[ChrVertex]):
    """Decompose a ``Chr² s`` facet into its two IS ordered partitions."""
    second = chr_facet_to_partition(facet)
    # Blocks of `second` contain Chr s vertices; the first round's
    # partition is recovered from the union of those vertices.
    first_vertices = frozenset().union(*second)
    first = chr_facet_to_partition(first_vertices)
    first_partition = tuple(
        frozenset(v if isinstance(v, int) else v for v in block)
        for block in first
    )
    second_partition = tuple(
        frozenset(v.color for v in block) for block in second
    )
    return first_partition, second_partition


class AffineModelExecutor:
    """Runs protocols over iterations of a depth-2 affine task.

    Each call to :meth:`run_iteration` takes the processes' submitted
    states and returns per-process :class:`IterationView` objects.
    """

    def __init__(
        self,
        task: AffineTask,
        chooser: Optional[FacetChooser] = None,
        seed: int = 0,
    ):
        if task.depth != 2:
            raise ValueError("the executor iterates depth-2 affine tasks")
        self.task = task
        self.chooser = chooser or random_facet_chooser(seed)
        self.iteration = 0
        self.history: List[FrozenSet[ChrVertex]] = []

    def run_iteration(self, states: Dict[int, Any]) -> Dict[int, IterationView]:
        """One iteration of the affine task on everyone's current state."""
        if set(states) != set(range(self.task.n)):
            raise ValueError("all processes participate in every iteration")
        facet = self.chooser(self.iteration, self.task)
        if facet not in self.task.complex:
            raise ValueError("chooser returned a facet outside the task")
        self.iteration += 1
        self.history.append(facet)

        vertex_of = {v.color: v for v in facet}
        views: Dict[int, IterationView] = {}
        first_round_view: Dict[int, FrozenSet[int]] = {}
        for pid, vertex in vertex_of.items():
            own_first = next(
                w for w in vertex.carrier if w.color == pid
            )
            first_round_view[pid] = frozenset(own_first.carrier)
        for pid, vertex in vertex_of.items():
            view1_states = {
                q: states[q] for q in first_round_view[pid]
            }
            view2_states = {
                w.color: {q: states[q] for q in w.carrier}
                for w in vertex.carrier
            }
            views[pid] = IterationView(
                pid, vertex, view1_states, view2_states
            )
        return views


def exhaustive_facet_sequences(
    task: AffineTask, length: int
) -> Sequence[Sequence[FrozenSet[ChrVertex]]]:
    """All facet sequences of the given length (for exhaustive tests).

    ``|facets|^length`` sequences — keep ``length`` tiny.
    """
    from itertools import product

    facets = sorted(task.complex.facets, key=repr)
    return list(product(facets, repeat=length))


def scripted_chooser(
    facets: Sequence[FrozenSet[ChrVertex]],
) -> FacetChooser:
    """A chooser replaying a fixed facet sequence (cycling past the end)."""

    def choose(iteration: int, task: AffineTask) -> FrozenSet[ChrVertex]:
        return facets[iteration % len(facets)]

    return choose

"""Executable asynchronous shared-memory substrate.

Cooperative scheduler over atomic-snapshot memory, the Borowsky–Gafni
immediate snapshot, the IIS executor, the paper's Algorithm 1, the
iterated affine-model executor and the Section-6 simulation.
"""

from .memory import Register, SharedMemory, SnapshotArray
from .scheduler import (
    ExecutionPlan,
    LivenessViolation,
    ProtocolError,
    RunResult,
    Scheduler,
    execute_operation,
    random_alpha_model_plan,
    run_plan,
)
from .immediate_snapshot import (
    immediate_snapshot_protocol,
    standalone_is_protocol,
    views_from_outputs,
)
from .iis import (
    IISExecution,
    all_two_round_runs,
    random_iis_run,
    random_partition,
    run_iis,
)
from .explorer import (
    ScheduleExplorer,
    check_all_schedules,
    explore_outputs,
)
from .adversary_runs import (
    adversary_compliant_plans,
    is_alpha_model_compliant,
    split_plans_by_alpha_compliance,
)
from .bg_simulation import (
    BGOutcome,
    bg_simulator_protocol,
    check_simulated_history,
    full_information_code,
    run_bg_simulation,
)
from .algorithm1 import (
    Algorithm1Outcome,
    algorithm1_protocol,
    fuzz_algorithm1,
    outputs_to_simplex,
    run_algorithm1,
)

__all__ = [
    "Register",
    "SharedMemory",
    "SnapshotArray",
    "ExecutionPlan",
    "LivenessViolation",
    "ProtocolError",
    "RunResult",
    "Scheduler",
    "execute_operation",
    "random_alpha_model_plan",
    "run_plan",
    "immediate_snapshot_protocol",
    "standalone_is_protocol",
    "views_from_outputs",
    "IISExecution",
    "all_two_round_runs",
    "random_iis_run",
    "random_partition",
    "run_iis",
    "ScheduleExplorer",
    "check_all_schedules",
    "explore_outputs",
    "adversary_compliant_plans",
    "is_alpha_model_compliant",
    "split_plans_by_alpha_compliance",
    "BGOutcome",
    "bg_simulator_protocol",
    "check_simulated_history",
    "full_information_code",
    "run_bg_simulation",
    "Algorithm1Outcome",
    "algorithm1_protocol",
    "fuzz_algorithm1",
    "outputs_to_simplex",
    "run_algorithm1",
]

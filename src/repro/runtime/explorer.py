"""Exhaustive schedule exploration: model checking small protocols.

Fuzzing samples interleavings; for small systems we can do better and
enumerate *every* schedule.  Protocol generators cannot be forked, so
the explorer replays the protocol set from scratch along each branch of
the schedule tree — exact, and affordable precisely in the regime the
paper's figures live in (2–3 processes, a handful of steps).

Supports optional crash exploration: a branch may stop scheduling a
process forever at any point, up to a crash budget.

Typical uses (see the test-suite):

* verify the Borowsky–Gafni IS protocol against the IS specification on
  *all* interleavings at n = 2 (and bounded n = 3);
* verify commit–adopt's guarantees on all 2-process schedules;
* enumerate the set of reachable output patterns of a protocol.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Tuple

from .memory import SharedMemory
from .scheduler import Scheduler

ProtocolFactory = Callable[[int, SharedMemory], Any]
Schedule = Tuple[int, ...]


class ScheduleExplorer:
    """Enumerates outputs of a protocol set over all schedules.

    Parameters
    ----------
    protocol_factory:
        ``(pid, memory) -> generator`` building a fresh protocol.
    n:
        Number of processes (all participate unless crashed).
    max_steps:
        Safety bound per schedule; exceeded schedules are reported via
        :attr:`truncated` instead of looping forever.
    crash_budget:
        How many processes a branch may crash (each at any point).
    """

    def __init__(
        self,
        protocol_factory: ProtocolFactory,
        n: int,
        max_steps: int = 64,
        crash_budget: int = 0,
    ):
        self.protocol_factory = protocol_factory
        self.n = n
        self.max_steps = max_steps
        self.crash_budget = crash_budget
        self.schedules_explored = 0
        self.truncated: List[Schedule] = []

    # ------------------------------------------------------------------
    def replay(self, schedule: Schedule) -> Dict[int, Any]:
        """Run one explicit schedule from scratch; return outputs."""
        memory = SharedMemory(self.n)
        scheduler = Scheduler(
            {
                pid: self.protocol_factory(pid, memory)
                for pid in range(self.n)
            }
        )
        for pid in schedule:
            scheduler.step(pid)
        return dict(scheduler.outputs)

    def _status_after(self, schedule: Schedule) -> FrozenSet[int]:
        """Which processes have finished after a schedule prefix."""
        return frozenset(self.replay(schedule))

    # ------------------------------------------------------------------
    def explore(self) -> Iterator[Tuple[Schedule, FrozenSet[int], Dict[int, Any]]]:
        """Yield ``(schedule, crashed, outputs)`` for every maximal run.

        A run is maximal when every non-crashed process has finished.
        Crashes are explored by deciding, at each branch, to abandon a
        process permanently (within the crash budget).
        """
        yield from self._explore((), frozenset())

    def _explore(
        self, prefix: Schedule, crashed: FrozenSet[int]
    ) -> Iterator[Tuple[Schedule, FrozenSet[int], Dict[int, Any]]]:
        outputs = self.replay(prefix)
        finished = frozenset(outputs)
        active = [
            pid
            for pid in range(self.n)
            if pid not in finished and pid not in crashed
        ]
        if not active:
            self.schedules_explored += 1
            yield prefix, crashed, outputs
            return
        if len(prefix) >= self.max_steps:
            self.truncated.append(prefix)
            return
        for pid in active:
            yield from self._explore(prefix + (pid,), crashed)
        if len(crashed) < self.crash_budget:
            for pid in active:
                yield from self._explore(prefix, crashed | {pid})


def explore_outputs(
    protocol_factory: ProtocolFactory,
    n: int,
    max_steps: int = 64,
    crash_budget: int = 0,
) -> List[Tuple[Schedule, FrozenSet[int], Dict[int, Any]]]:
    """All maximal runs of the protocol set, as a list."""
    explorer = ScheduleExplorer(
        protocol_factory, n, max_steps=max_steps, crash_budget=crash_budget
    )
    results = list(explorer.explore())
    if explorer.truncated:
        raise AssertionError(
            f"{len(explorer.truncated)} schedules exceeded "
            f"{max_steps} steps; protocol may not be wait-free"
        )
    return results


def check_all_schedules(
    protocol_factory: ProtocolFactory,
    n: int,
    validate: Callable[[Dict[int, Any], FrozenSet[int]], None],
    max_steps: int = 64,
    crash_budget: int = 0,
) -> int:
    """Run ``validate(outputs, crashed)`` on every maximal run.

    Returns the number of schedules checked; ``validate`` raises to
    signal a violation.
    """
    count = 0
    for _schedule, crashed, outputs in explore_outputs(
        protocol_factory, n, max_steps=max_steps, crash_budget=crash_budget
    ):
        validate(outputs, crashed)
        count += 1
    return count

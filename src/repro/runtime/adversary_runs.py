"""Raw adversarial (A-model) executions.

The α-model plans of :mod:`repro.runtime.scheduler` bound the number of
failures by ``alpha(P) - 1`` (Definition 3).  A raw ``A``-compliant run
is different: the *correct set* must be a live set of the adversary,
with no bound on how many participants crash.  The two models solve the
same tasks (Theorem 1) but not by the same algorithm unchanged —
Algorithm 1's wait-phase liveness is an α-model property.

This module generates A-compliant plans so the distinction is testable:

* Algorithm 1 stays **safe** under raw A-compliant runs (outputs are
  always a simplex of ``R_A``) — safety never depended on the failure
  bound;
* its **liveness** can genuinely fail outside the α-model (e.g. under
  the k-obstruction-free adversary, where arbitrarily many processes
  may crash) — the reason the paper routes the equivalence through
  Theorem 1's simulation rather than reusing Algorithm 1 directly.
"""

from __future__ import annotations

import random
from typing import List

from ..adversaries.adversary import Adversary
from .scheduler import ExecutionPlan


def adversary_compliant_plans(
    adversary: Adversary, rng: random.Random, crash_step_range: int = 30
) -> ExecutionPlan:
    """Sample a plan whose correct set is a live set of the adversary.

    Participation is the correct set plus any subset of the remaining
    processes (which all crash at random points).
    """
    live = sorted(adversary.live_sets, key=sorted)
    correct = rng.choice(live)
    others = sorted(adversary.processes - correct)
    extra = frozenset(
        pid for pid in others if rng.random() < 0.5
    )
    participants = frozenset(correct) | extra
    crash_after = {
        pid: rng.randint(0, crash_step_range) for pid in extra
    }
    return ExecutionPlan(
        participants=participants,
        faulty=extra,
        crash_after_steps=crash_after,
        seed=rng.randint(0, 2**31),
    )


def is_alpha_model_compliant(
    plan: ExecutionPlan, alpha
) -> bool:
    """Does an A-compliant plan also satisfy Definition 3?"""
    if alpha(plan.participants) < 1:
        return False
    return len(plan.faulty) <= alpha(plan.participants) - 1


def split_plans_by_alpha_compliance(
    adversary: Adversary,
    alpha,
    count: int,
    seed: int = 0,
) -> tuple:
    """Sample A-compliant plans; split into (α-compliant, beyond-α).

    The second group is non-empty exactly for adversaries whose live
    sets allow more failures than the agreement power covers — e.g.
    k-obstruction-freedom — and is where Algorithm 1's liveness is not
    guaranteed.
    """
    rng = random.Random(seed)
    inside: List[ExecutionPlan] = []
    beyond: List[ExecutionPlan] = []
    for _ in range(count):
        plan = adversary_compliant_plans(adversary, rng)
        if is_alpha_model_compliant(plan, alpha):
            inside.append(plan)
        else:
            beyond.append(plan)
    return inside, beyond

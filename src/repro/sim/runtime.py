"""Guard-based message-passing round runtime.

Processes are generator-based state machines in the style of the Bosco
and asynchronous-Byzantine-agreement specs the repository tracks as
exemplars: a process *broadcasts* round-tagged messages and *blocks on
guards* — quorum predicates over its received-message bag (echo/ready
thresholds, ``n - t`` quorums).  The scheduler is the adversary: every
message delivery and every process activation is one *event*, and a
chooser (seeded random, deterministic exploration policy, or a replayed
trace) picks the next enabled event until the run is quiescent.

Yielded operations:

======================================  ===============================
``("broadcast", round, tag, value)``    send ``value`` to all processes
``("await", guard)``                    block until the guard holds;
                                        resumes with a bag snapshot
======================================  ===============================

A process finishes by returning its decision.  Crashes are budgeted in
*messages*: a crash-faulty process stops mid-broadcast once its
allowance is exhausted, so partial broadcasts (the classic crash
anomaly) arise naturally.  Byzantine processes never execute protocol
code — their scripted emissions are injected as ordinary pending
messages, and receivers keep the **first** value per ``(slot, sender)``
(input quarantine), so equivocation to the *same* receiver is inert
while equivocation across receivers is the attack surface.

Every chosen event is recorded; the event list *is* the schedule, and
:func:`ReplayChooser` re-executes it step for step — this is the
serialized artifact the differential oracle emits on disagreement.

Determinism: all event lists are built in sorted order, choosers are
seeded, and no iteration ever walks an unsorted set — the same seed
yields a byte-identical trace on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs

#: A message slot: (round, tag).
Slot = Tuple[int, str]
#: One process's received-message bag: slot -> {sender: value}.
Bag = Dict[Slot, Dict[int, Any]]
#: A trace event, JSON-safe:
#:   ["run", pid] | ["deliver", receiver, round, tag, sender]
#:   | ["drop", receiver, round, tag, sender]
Event = Tuple[Any, ...]

#: Per-activation cap on inline resume iterations: a protocol whose
#: guard is satisfied but whose body makes no progress would otherwise
#: spin forever inside one ``run`` event.
MAX_INLINE_RESUMES = 64
#: Global cap on chosen events; generously above any legitimate run of
#: the bundled protocols (messages are finite), so hitting it means a
#: runtime or protocol bug, not a long schedule.
MAX_EVENTS = 100_000


class SimError(Exception):
    """The runtime itself misbehaved (malformed op, spin, bad replay)."""


class ReplayError(SimError):
    """A replayed event is not enabled at its position in the run."""


# ----------------------------------------------------------------------
# Guards
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Guard:
    """Base guard; subclasses define :meth:`satisfied`."""

    def satisfied(self, bag: Bag) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class ThresholdGuard(Guard):
    """At least ``count`` messages in ``slot``.

    ``matching=True`` counts the largest same-value cohort instead of
    all distinct senders (echo/ready thresholds); ``senders`` restricts
    which senders count at all (e.g. "a proposal from the hitting set").
    """

    slot: Slot
    count: int
    matching: bool = False
    senders: Optional[FrozenSet[int]] = None

    def satisfied(self, bag: Bag) -> bool:
        received = bag.get(self.slot)
        if not received:
            return False
        items = [
            (sender, value)
            for sender, value in received.items()
            if self.senders is None or sender in self.senders
        ]
        if not self.matching:
            return len(items) >= self.count
        cohorts: Dict[Any, int] = {}
        for _sender, value in items:
            cohorts[value] = cohorts.get(value, 0) + 1
        return bool(cohorts) and max(cohorts.values()) >= self.count


@dataclass(frozen=True)
class AnyGuard(Guard):
    """Disjunction: satisfied when any sub-guard is."""

    guards: Tuple[Guard, ...]

    def satisfied(self, bag: Bag) -> bool:
        return any(guard.satisfied(bag) for guard in self.guards)


# ----------------------------------------------------------------------
# Choosers: the adversary's hand on the schedule
# ----------------------------------------------------------------------
#: A chooser maps the sorted enabled-event list to the chosen index.
Chooser = Callable[[List[Event]], int]


def random_chooser(seed: int) -> Chooser:
    """Uniform seeded choice over enabled events (drops included)."""
    rng = random.Random(seed)

    def choose(events: List[Event]) -> int:
        return rng.randrange(len(events))

    return choose


def eager_chooser() -> Chooser:
    """Deliver everything before running anyone: the synchronous-ish
    schedule where every process sees maximal information."""

    def choose(events: List[Event]) -> int:
        for index, event in enumerate(events):
            if event[0] == "deliver":
                return index
        return 0

    return choose


def isolate_chooser(
    order: Sequence[int], quarantined: FrozenSet[int]
) -> Chooser:
    """Phase per process in ``order``: feed it only its own messages and
    those of ``quarantined`` senders (Byzantine/faulty), run it, move
    on.  This is the classic split-brain schedule — it deterministically
    exposes equivocation-based disagreement where random exploration
    needs luck.
    """
    order = list(order)
    rank = {pid: index for index, pid in enumerate(order)}
    late = len(order)

    def key(event: Event) -> Tuple[int, int, Event]:
        if event[0] == "deliver":
            _, receiver, _round, _tag, sender = event
            phase = rank.get(receiver, late)
            if sender == receiver or sender in quarantined:
                return (phase, 0, event)
            return (late + phase, 0, event)
        if event[0] == "run":
            return (rank.get(event[1], late), 1, event)
        return (3 * late + 1, 2, event)  # drops: last resort only

    def choose(events: List[Event]) -> int:
        best = min(range(len(events)), key=lambda i: key(events[i]))
        return best

    return choose


class ReplayChooser:
    """Re-executes a recorded event sequence, validating each step."""

    def __init__(self, events: Sequence[Event]):
        self.events = [tuple(event) for event in events]
        self.position = 0

    def __call__(self, enabled: List[Event]) -> int:
        if self.position >= len(self.events):
            raise ReplayError(
                f"trace exhausted after {self.position} events but the "
                f"run has {len(enabled)} enabled event(s) left"
            )
        wanted = self.events[self.position]
        self.position += 1
        try:
            return enabled.index(wanted)
        except ValueError:
            raise ReplayError(
                f"replayed event {wanted!r} not enabled at position "
                f"{self.position - 1}; enabled: {enabled!r}"
            ) from None


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
@dataclass
class SimRun:
    """Outcome of one scheduled execution."""

    decisions: Dict[int, Any]
    crashed: List[int]
    blocked: List[int]
    events: List[Event]
    deliveries: int
    rounds_started: int

    def quiescent_and_decided(self, correct: FrozenSet[int]) -> bool:
        return all(pid in self.decisions for pid in correct)


@dataclass
class _ProcessState:
    generator: Generator
    started: bool = False
    blocked_on: Optional[Guard] = None
    decided: bool = False
    crashed: bool = False
    #: Deliveries observed while blocked (guard-wait accounting).
    waited: int = 0


@dataclass
class _Pending:
    receiver: int
    round: int
    tag: str
    sender: int
    value: Any
    droppable: bool

    def event(self, kind: str) -> Event:
        return (kind, self.receiver, self.round, self.tag, self.sender)


ProcessFactory = Callable[[int], Generator]


class Runtime:
    """Drives one execution of a guard-based protocol.

    ``factories`` maps each *executing* pid to its generator factory —
    Byzantine pids are absent (their traffic arrives via
    ``injected``), and crash allowances bound how many point-to-point
    messages each pid may emit (``None`` = unbounded).
    """

    def __init__(
        self,
        n: int,
        factories: Dict[int, ProcessFactory],
        *,
        message_allowance: Optional[Dict[int, int]] = None,
        omission: FrozenSet[int] = frozenset(),
        byzantine: FrozenSet[int] = frozenset(),
        injected: Sequence[Tuple[int, int, str, int, Any]] = (),
    ):
        self.n = n
        self.byzantine = byzantine
        self.omission = omission
        self.allowance: Dict[int, Optional[int]] = {
            pid: (message_allowance or {}).get(pid) for pid in factories
        }
        self.states: Dict[int, _ProcessState] = {
            pid: _ProcessState(factories[pid](pid))
            for pid in sorted(factories)
        }
        self.inbox: Dict[int, Bag] = {pid: {} for pid in self.states}
        self.pending: List[_Pending] = []
        # Byzantine scripts: (receiver, round, tag, sender, value),
        # already in deterministic order; droppable (= the adversary may
        # simply "not have sent" them).
        for receiver, rnd, tag, sender, value in injected:
            if receiver in self.states:
                self.pending.append(
                    _Pending(receiver, rnd, tag, sender, value, True)
                )
        self.decisions: Dict[int, Any] = {}
        self.events: List[Event] = []
        self.deliveries = 0
        self.rounds_started = 0
        self._max_round = -1

    # -- event enumeration ---------------------------------------------
    def enabled_events(self) -> List[Event]:
        """All currently enabled events, in canonical sorted order."""
        events: List[Event] = []
        for pid in self.states:  # states dict is pid-sorted
            state = self.states[pid]
            if state.decided or state.crashed:
                continue
            if not state.started or (
                state.blocked_on is not None
                and state.blocked_on.satisfied(self.inbox[pid])
            ):
                events.append(("run", pid))
        deliverable = sorted(
            (pending.event("deliver"), pending.droppable)
            for pending in self.pending
        )
        for event, droppable in deliverable:
            events.append(event)
            if droppable:
                events.append(("drop",) + event[1:])
        return events

    # -- event application ---------------------------------------------
    def apply(self, event: Event) -> None:
        self.events.append(event)
        kind = event[0]
        if kind == "run":
            self._activate(event[1])
        elif kind in ("deliver", "drop"):
            key = ("deliver",) + tuple(event[1:])
            index = next(
                i
                for i, pending in enumerate(self.pending)
                if pending.event("deliver") == key
            )
            pending = self.pending.pop(index)
            if kind == "deliver":
                self._deliver(pending)
        else:  # pragma: no cover - chooser contract violation
            raise SimError(f"unknown event {event!r}")

    def _deliver(self, pending: _Pending) -> None:
        self.deliveries += 1
        bag = self.inbox[pending.receiver]
        slot = (pending.round, pending.tag)
        senders = bag.setdefault(slot, {})
        # Input quarantine: the first value per (slot, sender) wins.
        if pending.sender not in senders:
            senders[pending.sender] = pending.value
        state = self.states[pending.receiver]
        if state.blocked_on is not None and not state.decided:
            state.waited += 1

    def _snapshot(self, pid: int) -> Bag:
        return {
            slot: dict(senders) for slot, senders in self.inbox[pid].items()
        }

    def _activate(self, pid: int) -> None:
        state = self.states[pid]
        generator = state.generator
        for _ in range(MAX_INLINE_RESUMES):
            try:
                if not state.started:
                    state.started = True
                    op = next(generator)
                else:
                    if state.blocked_on is not None:
                        with obs.span(
                            "sim.guard_wait", pid=pid, waited=state.waited
                        ):
                            pass
                        state.blocked_on = None
                        state.waited = 0
                    op = generator.send(self._snapshot(pid))
            except StopIteration as stop:
                state.decided = True
                self.decisions[pid] = stop.value
                return
            while True:
                if not isinstance(op, tuple) or not op:
                    raise SimError(f"process {pid} yielded {op!r}")
                if op[0] == "broadcast":
                    _, rnd, tag, value = op
                    if rnd > self._max_round:
                        self._max_round = rnd
                        self.rounds_started += 1
                        with obs.span("sim.round", round=rnd):
                            pass
                    if not self._broadcast(pid, rnd, tag, value):
                        return  # crashed mid-broadcast
                    try:
                        op = generator.send(None)
                    except StopIteration as stop:
                        state.decided = True
                        self.decisions[pid] = stop.value
                        return
                    continue
                if op[0] == "await":
                    _, guard = op
                    if guard.satisfied(self.inbox[pid]):
                        break  # resume inline with a fresh snapshot
                    state.blocked_on = guard
                    state.waited = 0
                    return
                raise SimError(f"process {pid} yielded unknown op {op!r}")
            # Inline resume: the awaited guard already holds.
            state.blocked_on = guard
        raise SimError(
            f"process {pid} spun for {MAX_INLINE_RESUMES} inline resumes; "
            "its guard is satisfied but its body makes no progress"
        )

    def _broadcast(self, pid: int, rnd: int, tag: str, value: Any) -> bool:
        """Enqueue one point-to-point send per receiver; False = crashed."""
        droppable = pid in self.omission
        for receiver in sorted(self.states):
            allowance = self.allowance.get(pid)
            if allowance is not None:
                if allowance <= 0:
                    self.states[pid].crashed = True
                    return False
                self.allowance[pid] = allowance - 1
            self.pending.append(
                _Pending(receiver, rnd, tag, pid, value, droppable)
            )
        return True

    # -- main loop -----------------------------------------------------
    def run(self, chooser: Chooser) -> SimRun:
        with obs.span("sim.schedule", n=self.n) as schedule_span:
            while len(self.events) < MAX_EVENTS:
                events = self.enabled_events()
                if not events:
                    break
                choice = chooser(events)
                self.apply(events[choice])
            else:  # pragma: no cover - runtime bug backstop
                raise SimError(f"schedule did not quiesce in {MAX_EVENTS}")
            blocked = sorted(
                pid
                for pid, state in self.states.items()
                if not state.decided and not state.crashed
            )
            crashed = sorted(
                pid for pid, state in self.states.items() if state.crashed
            )
            schedule_span.set_attr("events", len(self.events))
            schedule_span.set_attr("deliveries", self.deliveries)
            schedule_span.set_attr("decided", len(self.decisions))
            schedule_span.set_attr("blocked", len(blocked))
        return SimRun(
            decisions=dict(self.decisions),
            crashed=crashed,
            blocked=blocked,
            events=list(self.events),
            deliveries=self.deliveries,
            rounds_started=self.rounds_started,
        )


# ----------------------------------------------------------------------
# Trace (de)serialization
# ----------------------------------------------------------------------
def trace_of(run: SimRun) -> List[List[Any]]:
    """The JSON-safe event list (the replayable schedule)."""
    return [list(event) for event in run.events]


def events_from_trace(trace: Sequence[Sequence[Any]]) -> List[Event]:
    return [tuple(event) for event in trace]

"""repro.sim — deterministic executable-protocol simulator + oracle.

The subsystem that *runs* protocols instead of reasoning about them:

* :mod:`~repro.sim.runtime` — guard-based message-passing runtime with
  an adversary-driven event scheduler and replayable traces;
* :mod:`~repro.sim.faults` — crash / omission / Byzantine fault plans,
  generated from the ``repro.adversaries`` catalogue;
* :mod:`~repro.sim.library` — reliable broadcast, Bosco-style weak
  agreement, hitting-set k-set consensus, each with a spec checker;
* :mod:`~repro.sim.oracle` — the differential oracle comparing
  simulator outcomes against FACT verdicts, with serialized replay
  artifacts on disagreement.

Everything is seeded and platform-deterministic: the same seed yields
a byte-identical schedule trace.
"""

from .faults import (
    BYZANTINE_STRATEGIES,
    FaultPlan,
    byzantine_emissions,
    byzantine_plans,
    byzantine_regime_ok,
    crash_plans_from_adversary,
)
from .library import (
    PROTOCOL_NAMES,
    BoscoWeakAgreement,
    HittingSetConsensus,
    Protocol,
    ReliableBroadcast,
    build_protocol,
)
from .oracle import (
    ARTIFACT_VERSION,
    STANDARD_GRID,
    OracleCase,
    explore,
    grid_case,
    load_artifact,
    oracle_params,
    replay,
    simulate_params,
    standard_grid,
    write_artifact,
)
from .runtime import (
    AnyGuard,
    Guard,
    ReplayChooser,
    ReplayError,
    Runtime,
    SimError,
    SimRun,
    ThresholdGuard,
    eager_chooser,
    events_from_trace,
    isolate_chooser,
    random_chooser,
    trace_of,
)

__all__ = [
    "ARTIFACT_VERSION",
    "AnyGuard",
    "BYZANTINE_STRATEGIES",
    "BoscoWeakAgreement",
    "FaultPlan",
    "Guard",
    "HittingSetConsensus",
    "OracleCase",
    "PROTOCOL_NAMES",
    "Protocol",
    "ReliableBroadcast",
    "ReplayChooser",
    "ReplayError",
    "Runtime",
    "STANDARD_GRID",
    "SimError",
    "SimRun",
    "ThresholdGuard",
    "build_protocol",
    "byzantine_emissions",
    "byzantine_plans",
    "byzantine_regime_ok",
    "crash_plans_from_adversary",
    "eager_chooser",
    "events_from_trace",
    "explore",
    "grid_case",
    "isolate_chooser",
    "load_artifact",
    "oracle_params",
    "random_chooser",
    "replay",
    "simulate_params",
    "standard_grid",
    "trace_of",
    "write_artifact",
]

"""The executable protocol library: specs, generators, and checkers.

Three guard-based protocols, each shipping with (a) generator factories
for the correct processes, (b) the message *slots* a process owns —
what a Byzantine replacement gets to script — and (c) a **spec
checker** mapping one finished run to a list of violations (empty =
the schedule satisfies the spec):

* ``reliable-broadcast`` — Bracha's echo/ready protocol.  Thresholds
  ``echo >= (n+t)//2 + 1``, ready amplification at ``t+1``, delivery at
  ``2t+1``: safe (agreement + totality) for ``n > 3t``, and its
  *validity* demonstrably fails at ``n = 3t`` — a mute Byzantine
  process starves the echo quorum;
* ``bosco-weak-agreement`` — a one-shot Bosco-style weak agreement:
  await ``n - t`` proposals, decide the value on unanimity, else adopt
  ``"?"``.  Quorum intersection (``>= n - 2t > t`` common senders, at
  least one correct) makes two distinct non-``?`` decisions impossible
  when ``n > 3t``; at ``n = 3t`` an equivocating process splits the
  correct processes deterministically.  Deliberately *one-shot*:
  iterating decide-on-unanimity/adopt-majority across rounds is unsafe
  even for ``n > 3t`` (a decided value can lose its majority), so the
  weak commit-adopt-style spec is what the quorum argument supports;
* ``hitting-set-consensus`` — k-set consensus for crash faults under a
  superset-closed adversary: await any proposal from a fixed minimal
  hitting set ``H`` of the live sets, decide the lowest-id ``H``
  member's value.  At most ``|H| = csize(A) = setcon(A)`` distinct
  decisions, and ``H`` meets every allowed correct set, so the
  protocol is live exactly when ``setcon(A) <= k`` — the same
  condition FACT decides topologically, which is what makes the
  differential oracle meaningful.  When ``csize(A) > k`` the protocol
  honestly attempts ``H = {0..k-1}`` and deadlocks under some live set
  (the oracle's expected refutation).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..adversaries.adversary import Adversary
from ..adversaries.setcon import csize, minimal_hitting_set
from .faults import FaultPlan, Slot
from .runtime import AnyGuard, Guard, SimRun, ThresholdGuard

Inputs = Dict[int, str]
Factory = Callable[[int], Generator]

PROTOCOL_NAMES = (
    "reliable-broadcast",
    "bosco-weak-agreement",
    "hitting-set-consensus",
)


def _cohorts(received: Dict[int, Any]) -> Dict[Any, int]:
    """Same-value sender counts in one slot."""
    counts: Dict[Any, int] = {}
    for value in received.values():
        counts[value] = counts.get(value, 0) + 1
    return counts


class Protocol:
    """Common surface of one protocol instance (fixed ``n``, ``t``...)."""

    name: str
    model: str  # "crash" | "byzantine"

    def __init__(self, n: int, t: int):
        self.n = n
        self.t = t

    def default_inputs(self) -> Inputs:
        raise NotImplementedError

    def domain(self, inputs: Inputs) -> List[str]:
        """Values a Byzantine strategy may inject."""
        return sorted(set(inputs.values()))

    def slots(self, pid: int) -> List[Slot]:
        """The message slots ``pid`` owns (Byzantine script surface)."""
        raise NotImplementedError

    def factory(self, pid: int, inputs: Inputs) -> Generator:
        raise NotImplementedError

    def factories(self, inputs: Inputs, plan: FaultPlan) -> Dict[int, Factory]:
        """Generator factories for every non-Byzantine process."""
        byz = plan.byzantine_pids

        def make(pid: int) -> Factory:
            return lambda _pid: self.factory(pid, inputs)

        return {pid: make(pid) for pid in range(self.n) if pid not in byz}

    def check(
        self, plan: FaultPlan, inputs: Inputs, run: SimRun
    ) -> List[str]:
        """Spec violations of one finished run (empty = pass)."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Reliable broadcast (Bracha)
# ----------------------------------------------------------------------
class ReliableBroadcast(Protocol):
    name = "reliable-broadcast"
    model = "byzantine"

    def __init__(self, n: int, t: int, root: int = 0):
        super().__init__(n, t)
        self.root = root
        self.echo_quorum = (n + t) // 2 + 1
        self.ready_amplify = t + 1
        self.deliver_quorum = 2 * t + 1

    def default_inputs(self) -> Inputs:
        return {pid: "a" for pid in range(self.n)}

    def domain(self, inputs: Inputs) -> List[str]:
        return sorted(set(inputs.values()) | {"b"})

    def slots(self, pid: int) -> List[Slot]:
        owned: List[Slot] = [(0, "echo"), (0, "ready")]
        if pid == self.root:
            owned.insert(0, (0, "init"))
        return owned

    def factory(self, pid: int, inputs: Inputs) -> Generator:
        return _rb_process(self, pid, inputs)

    def check(
        self, plan: FaultPlan, inputs: Inputs, run: SimRun
    ) -> List[str]:
        correct = sorted(plan.correct)
        delivered = {
            pid: run.decisions[pid]
            for pid in correct
            if pid in run.decisions
        }
        violations: List[str] = []
        values = sorted(set(delivered.values()))
        if len(values) > 1:
            violations.append(
                f"agreement: correct processes delivered {values}"
            )
        if delivered and len(delivered) < len(correct):
            missing = sorted(set(correct) - set(delivered))
            violations.append(
                f"totality: {sorted(delivered)} delivered but "
                f"{missing} did not"
            )
        if self.root in plan.correct:
            expected = inputs[self.root]
            if sorted(delivered) != correct:
                violations.append(
                    "validity: correct root broadcast "
                    f"{expected!r} but correct deliverers are "
                    f"{sorted(delivered)} of {correct}"
                )
            elif values and values != [expected]:
                violations.append(
                    f"validity: delivered {values} instead of {expected!r}"
                )
        return violations


def _rb_process(rb: ReliableBroadcast, pid: int, inputs: Inputs) -> Generator:
    init_slot, echo_slot, ready_slot = (0, "init"), (0, "echo"), (0, "ready")
    if pid == rb.root:
        yield ("broadcast", 0, "init", inputs[rb.root])
    sent_echo = False
    sent_ready = False
    while True:
        conditions: List[Guard] = []
        if not sent_echo:
            conditions.append(
                ThresholdGuard(init_slot, 1, senders=frozenset({rb.root}))
            )
        if not sent_echo or not sent_ready:
            conditions.append(
                ThresholdGuard(echo_slot, rb.echo_quorum, matching=True)
            )
            conditions.append(
                ThresholdGuard(ready_slot, rb.ready_amplify, matching=True)
            )
        conditions.append(
            ThresholdGuard(ready_slot, rb.deliver_quorum, matching=True)
        )
        bag = yield ("await", AnyGuard(tuple(conditions)))
        init = bag.get(init_slot, {})
        echoes = _cohorts(bag.get(echo_slot, {}))
        readys = _cohorts(bag.get(ready_slot, {}))
        supported = sorted(
            value
            for value in set(echoes) | set(readys)
            if echoes.get(value, 0) >= rb.echo_quorum
            or readys.get(value, 0) >= rb.ready_amplify
        )
        if not sent_echo and (rb.root in init or supported):
            value = init[rb.root] if rb.root in init else supported[0]
            sent_echo = True
            yield ("broadcast", 0, "echo", value)
        if not sent_ready and supported:
            sent_ready = True
            yield ("broadcast", 0, "ready", supported[0])
        deliverable = sorted(
            value
            for value, count in readys.items()
            if count >= rb.deliver_quorum
        )
        if deliverable:
            return deliverable[0]


# ----------------------------------------------------------------------
# Bosco-style one-shot weak agreement
# ----------------------------------------------------------------------
class BoscoWeakAgreement(Protocol):
    name = "bosco-weak-agreement"
    model = "byzantine"

    #: The non-decision ("adopt") outcome.
    ADOPT = "?"

    def default_inputs(self) -> Inputs:
        return {pid: f"v{pid % 2}" for pid in range(self.n)}

    def slots(self, pid: int) -> List[Slot]:
        return [(0, "prop")]

    def factory(self, pid: int, inputs: Inputs) -> Generator:
        return _bosco_process(self, pid, inputs)

    def check(
        self, plan: FaultPlan, inputs: Inputs, run: SimRun
    ) -> List[str]:
        correct = sorted(plan.correct)
        violations: List[str] = []
        decided = {
            pid: run.decisions[pid]
            for pid in correct
            if pid in run.decisions
        }
        strong = sorted(
            {value for value in decided.values() if value != self.ADOPT}
        )
        if len(strong) > 1:
            violations.append(
                f"agreement: distinct non-adopt decisions {strong}"
            )
        honest_inputs = {
            inputs[pid]
            for pid in range(self.n)
            if pid not in plan.byzantine_pids
        }
        for value in strong:
            if value not in honest_inputs:
                violations.append(
                    f"validity: decided {value!r}, proposed by no "
                    "non-Byzantine process"
                )
        if len(correct) >= self.n - self.t and sorted(decided) != correct:
            violations.append(
                f"liveness: undecided correct {sorted(set(correct) - set(decided))}"
            )
        if not plan.byzantine and len(honest_inputs) == 1:
            (value,) = honest_inputs
            wrong = sorted(
                pid for pid, out in decided.items() if out != value
            )
            if wrong:
                violations.append(
                    f"unanimity: all inputs {value!r} but {wrong} "
                    "did not decide it"
                )
        return violations


def _bosco_process(
    bosco: BoscoWeakAgreement, pid: int, inputs: Inputs
) -> Generator:
    yield ("broadcast", 0, "prop", inputs[pid])
    bag = yield (
        "await",
        ThresholdGuard((0, "prop"), bosco.n - bosco.t),
    )
    proposals = sorted(set(bag.get((0, "prop"), {}).values()))
    if len(proposals) == 1:
        return proposals[0]
    return bosco.ADOPT


# ----------------------------------------------------------------------
# Hitting-set k-set consensus (crash model)
# ----------------------------------------------------------------------
class HittingSetConsensus(Protocol):
    name = "hitting-set-consensus"
    model = "crash"

    def __init__(self, n: int, k: int, adversary: Adversary):
        super().__init__(n, t=0)
        self.k = k
        self.adversary = adversary
        if csize(adversary) <= k:
            self.hitting = tuple(sorted(minimal_hitting_set(adversary)))
        else:
            # No k-sized hitting set exists; attempt the lexicographic
            # first k processes — some live set evades it, and the
            # induced deadlock is the oracle's expected refutation.
            self.hitting = tuple(range(k))

    def default_inputs(self) -> Inputs:
        return {pid: f"v{pid}" for pid in range(self.n)}

    def slots(self, pid: int) -> List[Slot]:
        return [(0, "prop")]

    def factory(self, pid: int, inputs: Inputs) -> Generator:
        return _hitting_set_process(self, pid, inputs)

    def check(
        self, plan: FaultPlan, inputs: Inputs, run: SimRun
    ) -> List[str]:
        violations: List[str] = []
        decisions = sorted(set(run.decisions.values()))
        if len(decisions) > self.k:
            violations.append(
                f"agreement: {len(decisions)} distinct decisions "
                f"{decisions} > k={self.k}"
            )
        proposed = set(inputs.values())
        for value in decisions:
            if value not in proposed:
                violations.append(f"validity: {value!r} was never proposed")
        undecided = sorted(plan.correct - set(run.decisions))
        if undecided:
            violations.append(f"liveness: undecided correct {undecided}")
        return violations


def _hitting_set_process(
    ksc: HittingSetConsensus, pid: int, inputs: Inputs
) -> Generator:
    yield ("broadcast", 0, "prop", inputs[pid])
    bag = yield (
        "await",
        ThresholdGuard((0, "prop"), 1, senders=frozenset(ksc.hitting)),
    )
    proposals = bag.get((0, "prop"), {})
    leader = min(member for member in ksc.hitting if member in proposals)
    return proposals[leader]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def build_protocol(
    name: str,
    n: int,
    t: int = 0,
    k: int = 1,
    adversary: Optional[Adversary] = None,
) -> Protocol:
    """Instantiate a library protocol by name."""
    if name == "reliable-broadcast":
        return ReliableBroadcast(n, t)
    if name == "bosco-weak-agreement":
        protocol = BoscoWeakAgreement(n, t)
        return protocol
    if name == "hitting-set-consensus":
        if adversary is None:
            raise ValueError("hitting-set-consensus needs an adversary")
        return HittingSetConsensus(n, k, adversary)
    raise ValueError(
        f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}"
    )


__all__: Tuple[str, ...] = (
    "PROTOCOL_NAMES",
    "BoscoWeakAgreement",
    "HittingSetConsensus",
    "Protocol",
    "ReliableBroadcast",
    "build_protocol",
)

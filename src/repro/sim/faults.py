"""Fault plans: crash, omission, and Byzantine adversaries for the sim.

A :class:`FaultPlan` fixes *who* misbehaves and *how* for one execution:

* **crash** — a per-process message allowance; the process stops
  mid-broadcast when it runs out (allowance 0 = crash before sending
  anything).  Crash plans are generated from the existing
  ``repro.adversaries`` catalogue: each live set of the adversary is a
  candidate *correct* set, everyone else crashes — fair adversaries
  induce exactly these participation patterns;
* **omission** — every message the process sends is individually
  droppable by the scheduler;
* **Byzantine** — the process never runs protocol code; a named
  *strategy* scripts its emissions over the protocol's declared slots
  (``mute``, ``equivocate``, ``conform``).  Receivers quarantine inputs
  per ``(slot, sender)`` (see :mod:`repro.sim.runtime`), so the attack
  surface is cross-receiver equivocation, exactly as in the
  Mendes–Tasson–Herlihy reduction.  :func:`byzantine_regime_ok` is the
  classic ``t < n/3`` resilience bound for that regime.

Targeted plans come first in every generated list: the live-set sweep
(one plan per live set) deterministically exposes participation-pattern
deadlocks, and the strategy sweep deterministically exposes
equivocation splits — random sampling only adds diversity on top.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from ..adversaries.adversary import Adversary

#: (receiver, round, tag, sender, value) — one scripted emission.
Emission = Tuple[int, int, str, int, Any]
#: A message slot a process would send in: (round, tag).
Slot = Tuple[int, str]

BYZANTINE_STRATEGIES = ("mute", "equivocate", "conform")


def byzantine_regime_ok(n: int, t: int) -> bool:
    """The Byzantine resilience bound: ``n > 3t`` (``t < n/3``)."""
    return n > 3 * t


@dataclass(frozen=True)
class FaultPlan:
    """One execution's fault assignment (hashable, deterministic)."""

    n: int
    #: (pid, message allowance) for each crash-faulty process.
    crashes: Tuple[Tuple[int, int], ...] = ()
    #: Processes whose every message is droppable.
    omission: Tuple[int, ...] = ()
    #: (pid, strategy name) for each Byzantine process.
    byzantine: Tuple[Tuple[int, str], ...] = ()
    note: str = ""

    @property
    def byzantine_pids(self) -> FrozenSet[int]:
        return frozenset(pid for pid, _ in self.byzantine)

    @property
    def faulty(self) -> FrozenSet[int]:
        return (
            frozenset(pid for pid, _ in self.crashes)
            | frozenset(self.omission)
            | self.byzantine_pids
        )

    @property
    def correct(self) -> FrozenSet[int]:
        return frozenset(range(self.n)) - self.faulty

    def allowances(self) -> Dict[int, int]:
        return dict(self.crashes)

    def to_json(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "crashes": [list(pair) for pair in self.crashes],
            "omission": list(self.omission),
            "byzantine": [list(pair) for pair in self.byzantine],
            "note": self.note,
        }

    @staticmethod
    def from_json(data: Dict[str, Any]) -> "FaultPlan":
        return FaultPlan(
            n=data["n"],
            crashes=tuple(
                (pid, allowance) for pid, allowance in data["crashes"]
            ),
            omission=tuple(data["omission"]),
            byzantine=tuple(
                (pid, strategy) for pid, strategy in data["byzantine"]
            ),
            note=data.get("note", ""),
        )


# ----------------------------------------------------------------------
# Byzantine strategies: slots -> scripted emissions
# ----------------------------------------------------------------------
def byzantine_emissions(
    pid: int,
    strategy: str,
    slots: Sequence[Slot],
    domain: Sequence[Any],
    n: int,
) -> List[Emission]:
    """The scripted traffic of one Byzantine process.

    * ``mute`` — silence (modeling "never sends");
    * ``equivocate`` — per-receiver values cycling through ``domain``:
      different receivers see contradictory claims in the same slot;
    * ``conform`` — one consistent (but self-chosen) value everywhere:
      Byzantine only in that the value ignores the protocol state.

    Emissions are deterministic and ordered by ``(round, tag,
    receiver)``; delivery timing (including "arbitrarily late") stays
    with the scheduler, and dropping them entirely is always enabled —
    so one script covers a whole family of behaviors.
    """
    if strategy not in BYZANTINE_STRATEGIES:
        raise ValueError(
            f"unknown Byzantine strategy {strategy!r}; "
            f"expected one of {BYZANTINE_STRATEGIES}"
        )
    if strategy == "mute" or not domain:
        return []
    emissions: List[Emission] = []
    for rnd, tag in sorted(slots):
        for receiver in range(n):
            if strategy == "equivocate":
                value = domain[receiver % len(domain)]
            else:  # conform
                value = domain[0]
            emissions.append((receiver, rnd, tag, pid, value))
    return emissions


# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------
def crash_plans_from_adversary(
    adversary: Adversary, seed: int, samples: int = 4
) -> List[FaultPlan]:
    """Crash plans induced by an adversary's live sets.

    Targeted: one plan per live set — that set is correct, everyone
    else is silent from the start (allowance 0).  These are the extreme
    participation patterns; a protocol that deadlocks under *some*
    allowed participation deadlocks under one of them.  Sampled plans
    then vary the crash points (partial broadcasts) and occasionally
    promote one crashed process to omission-faulty.
    """
    n = adversary.n
    plans: List[FaultPlan] = []
    live_sets = sorted(sorted(live) for live in adversary.live_sets)
    for live in live_sets:
        others = [pid for pid in range(n) if pid not in live]
        plans.append(
            FaultPlan(
                n=n,
                crashes=tuple((pid, 0) for pid in others),
                note=f"live-set {live}",
            )
        )
    rng = random.Random(seed)
    for index in range(samples):
        live = list(rng.choice(live_sets))
        others = [pid for pid in range(n) if pid not in live]
        crashes = []
        omission: List[int] = []
        for pid in others:
            if others and rng.random() < 0.25:
                omission.append(pid)
            else:
                crashes.append((pid, rng.randint(0, 2 * n)))
        plans.append(
            FaultPlan(
                n=n,
                crashes=tuple(crashes),
                omission=tuple(omission),
                note=f"sampled #{index} live-set {live}",
            )
        )
    return plans


def byzantine_plans(
    n: int, t: int, seed: int, samples: int = 2
) -> List[FaultPlan]:
    """Byzantine plans with exactly ``t`` faulty processes.

    Targeted: every strategy at the two canonical corner placements —
    the first ``t`` pids (which contains protocol-distinguished roles
    like a broadcast root) and the last ``t`` pids.  Sampled plans draw
    random placements and per-process strategies.
    """
    if t <= 0:
        return [FaultPlan(n=n, note="fault-free")]
    placements = [tuple(range(t)), tuple(range(n - t, n))]
    plans: List[FaultPlan] = []
    seen = set()
    for placement in placements:
        for strategy in BYZANTINE_STRATEGIES:
            byz = tuple((pid, strategy) for pid in placement)
            if byz in seen:
                continue
            seen.add(byz)
            plans.append(
                FaultPlan(
                    n=n,
                    byzantine=byz,
                    note=f"{strategy} at {list(placement)}",
                )
            )
    rng = random.Random(seed)
    for index in range(samples):
        placement = sorted(rng.sample(range(n), t))
        byz = tuple(
            (pid, rng.choice(BYZANTINE_STRATEGIES)) for pid in placement
        )
        if byz in seen:
            continue
        seen.add(byz)
        plans.append(FaultPlan(n=n, byzantine=byz, note=f"sampled #{index}"))
    return plans

"""The differential oracle: executable protocols versus FACT verdicts.

For one (task, adversary) pair the oracle runs both sides:

* **reference verdict** — for crash cases, a genuine FACT decision:
  build ``R_A`` from the adversary's agreement function and search for
  a chromatic simplicial map to the k-set-consensus output complex
  (:mod:`repro.solver`); for Byzantine cases, the classic resilience
  regime ``n > 3t`` (the Mendes–Tasson–Herlihy quarantine reduction
  collapses Byzantine solvability of these tasks to that bound);
* **simulator verdict** — explore schedules of the matching library
  protocol under fault plans generated from the adversary: targeted
  plans (live-set sweep / strategy sweep) and targeted schedules
  (eager, split-brain isolation) first, then seeded random schedules.
  ``pass`` means no explored schedule violated the protocol spec.

Agreement means: FACT says solvable ⇔ the simulator found no
violation.  On the *solvable* side a violating schedule is a genuine
counterexample to the verdict (or a protocol bug); on the
*unsolvable* side the targeted plans deterministically exhibit the
refuting schedule, so a clean pass there is equally loud.  Either
disagreement surfaces the schedule as a **replayable artifact** —
:func:`replay` re-executes the recorded event sequence step for step
and must reproduce the same decisions and violations.

Exploration scope per case is intentionally bounded (a handful of
plans x a handful of schedules); :data:`STANDARD_GRID` pins the
committed (task, adversary) pairs CI re-checks on every change.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..adversaries.adversary import Adversary, from_live_sets
from ..adversaries.agreement import agreement_function_of
from ..adversaries.catalogue import catalogue_by_name
from ..core.ra import r_affine
from ..solver.api import SolveRequest, run_request
from ..tasks.set_consensus import set_consensus_task
from .faults import (
    FaultPlan,
    byzantine_emissions,
    byzantine_plans,
    byzantine_regime_ok,
    crash_plans_from_adversary,
)
from .library import Inputs, Protocol, build_protocol
from .runtime import (
    Chooser,
    ReplayChooser,
    Runtime,
    SimRun,
    eager_chooser,
    events_from_trace,
    isolate_chooser,
    random_chooser,
    trace_of,
)

#: Version tag of the replayable-artifact format.
ARTIFACT_VERSION = 1

#: Node budget for the FACT reference queries (grid-sized instances).
FACT_BUDGET = 200_000


# ----------------------------------------------------------------------
# One simulated run
# ----------------------------------------------------------------------
def _run_once(
    protocol: Protocol,
    plan: FaultPlan,
    inputs: Inputs,
    chooser: Chooser,
) -> SimRun:
    injected: List[Tuple[int, int, str, int, Any]] = []
    domain = protocol.domain(inputs)
    for pid, strategy in plan.byzantine:
        injected.extend(
            byzantine_emissions(
                pid, strategy, protocol.slots(pid), domain, protocol.n
            )
        )
    runtime = Runtime(
        protocol.n,
        protocol.factories(inputs, plan),
        message_allowance=plan.allowances(),
        omission=frozenset(plan.omission),
        byzantine=plan.byzantine_pids,
        injected=sorted(injected),
    )
    return runtime.run(chooser)


def _choosers(
    plan: FaultPlan, schedules: int, seed: int, plan_index: int
) -> List[Tuple[str, Chooser]]:
    """Targeted schedules first, then seeded random ones."""
    correct = sorted(plan.correct)
    quarantined = frozenset(plan.faulty)
    named: List[Tuple[str, Chooser]] = [
        ("eager", eager_chooser()),
        ("isolate", isolate_chooser(correct, quarantined)),
        ("isolate-reversed", isolate_chooser(correct[::-1], quarantined)),
    ]
    for index in range(schedules):
        schedule_seed = seed * 100_003 + plan_index * 1_009 + index
        named.append(
            (f"random:{schedule_seed}", random_chooser(schedule_seed))
        )
    return named


# ----------------------------------------------------------------------
# Exploration and reports
# ----------------------------------------------------------------------
def explore(
    protocol: Protocol,
    plans: Sequence[FaultPlan],
    schedules: int,
    seed: int,
    inputs: Optional[Inputs] = None,
) -> Dict[str, Any]:
    """Run every (plan, schedule) pair; returns the JSON-safe report."""
    inputs = dict(inputs) if inputs is not None else protocol.default_inputs()
    runs = 0
    deliveries = 0
    blocked_runs = 0
    violations = 0
    first_violation: Optional[Dict[str, Any]] = None
    for plan_index, plan in enumerate(plans):
        for label, chooser in _choosers(plan, schedules, seed, plan_index):
            run = _run_once(protocol, plan, inputs, chooser)
            runs += 1
            deliveries += run.deliveries
            if run.blocked:
                blocked_runs += 1
            found = protocol.check(plan, inputs, run)
            if found:
                violations += 1
                if first_violation is None:
                    first_violation = _artifact(
                        protocol, plan, inputs, label, run, found
                    )
    return {
        "protocol": protocol.name,
        "n": protocol.n,
        "t": protocol.t,
        "plans": len(plans),
        "schedules": runs,
        "deliveries": deliveries,
        "blocked_runs": blocked_runs,
        "violations": violations,
        "pass": violations == 0,
        "first_violation": first_violation,
    }


def _artifact(
    protocol: Protocol,
    plan: FaultPlan,
    inputs: Inputs,
    chooser_label: str,
    run: SimRun,
    violations: List[str],
) -> Dict[str, Any]:
    """The replayable schedule artifact for one violating run."""
    adversary = getattr(protocol, "adversary", None)
    return {
        "version": ARTIFACT_VERSION,
        "protocol": protocol.name,
        "n": protocol.n,
        "t": protocol.t,
        "k": getattr(protocol, "k", 1),
        "adversary": (
            sorted(sorted(live) for live in adversary.live_sets)
            if adversary is not None
            else None
        ),
        "plan": plan.to_json(),
        "inputs": {str(pid): value for pid, value in inputs.items()},
        "chooser": chooser_label,
        "events": trace_of(run),
        "decisions": {
            str(pid): value for pid, value in sorted(run.decisions.items())
        },
        "blocked": run.blocked,
        "violations": violations,
    }


def replay(artifact: Dict[str, Any]) -> Dict[str, Any]:
    """Re-execute a serialized schedule; returns the reproduced outcome.

    Raises :class:`repro.sim.runtime.ReplayError` when the recorded
    events no longer form a valid schedule (the loud signal that the
    runtime or a protocol changed semantics under a committed artifact).
    """
    if artifact.get("version") != ARTIFACT_VERSION:
        raise ValueError(
            f"unsupported artifact version {artifact.get('version')!r}"
        )
    adversary = (
        from_live_sets(
            artifact["n"], [set(live) for live in artifact["adversary"]]
        )
        if artifact.get("adversary") is not None
        else None
    )
    protocol = build_protocol(
        artifact["protocol"],
        artifact["n"],
        t=artifact["t"],
        k=artifact.get("k", 1),
        adversary=adversary,
    )
    plan = FaultPlan.from_json(artifact["plan"])
    inputs = {int(pid): value for pid, value in artifact["inputs"].items()}
    chooser = ReplayChooser(events_from_trace(artifact["events"]))
    run = _run_once(protocol, plan, inputs, chooser)
    return {
        "decisions": {
            str(pid): value for pid, value in sorted(run.decisions.items())
        },
        "blocked": run.blocked,
        "violations": protocol.check(plan, inputs, run),
    }


def write_artifact(path: str, artifact: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


# ----------------------------------------------------------------------
# Parameterized entry points (the engine job kinds call these)
# ----------------------------------------------------------------------
def simulate_params(
    protocol_name: str,
    adversary: Optional[Adversary],
    n: int,
    t: int,
    k: int,
    schedules: int,
    seed: int,
) -> Dict[str, Any]:
    """Explore one protocol instance; the ``simulate`` job kind."""
    protocol = build_protocol(
        protocol_name, n, t=t, k=k, adversary=adversary
    )
    if protocol.model == "crash":
        if adversary is None:
            raise ValueError(f"{protocol_name} requires an adversary")
        plans = crash_plans_from_adversary(adversary, seed)
    else:
        plans = [FaultPlan(n=n, note="fault-free")] + byzantine_plans(
            n, t, seed
        )
    report = explore(protocol, plans, schedules, seed)
    report["k"] = k
    return report


def oracle_params(
    protocol_name: str,
    adversary: Optional[Adversary],
    n: int,
    t: int,
    k: int,
    schedules: int,
    seed: int,
) -> Dict[str, Any]:
    """Differential check for one pair; the ``oracle`` job kind."""
    if protocol_name == "hitting-set-consensus":
        if adversary is None:
            raise ValueError("crash-model oracle requires an adversary")
        alpha = agreement_function_of(adversary)
        affine = r_affine(alpha)
        result = run_request(
            SolveRequest(
                affine=affine,
                task=set_consensus_task(n, k),
                budget=FACT_BUDGET,
            )
        )
        reference = {"method": "fact", "solvable": result.solvable}
    else:
        reference = {
            "method": "regime",
            "solvable": byzantine_regime_ok(n, t),
        }
    report = simulate_params(
        protocol_name, adversary, n, t, k, schedules, seed
    )
    agree = bool(reference["solvable"]) == bool(report["pass"])
    return {
        "reference": reference,
        "sim": report,
        "agree": agree,
        "artifact": report["first_violation"] if not agree else None,
    }


# ----------------------------------------------------------------------
# The committed grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OracleCase:
    """One committed (task, adversary) differential-oracle pair."""

    name: str
    protocol: str
    n: int
    t: int
    k: int
    adversary: Optional[Adversary]
    schedules: int = 4
    seed: int = 7

    def payload(self) -> Tuple:
        """The engine job payload (content-addressed cache identity)."""
        return (
            self.protocol,
            self.adversary,
            self.n,
            self.t,
            self.k,
            self.schedules,
            self.seed,
        )


def _solo_leader(n: int = 3) -> Adversary:
    """Process 0 participates in every live set: ``csize = setcon = 1``."""
    return from_live_sets(n, [{0}]).superset_closure()


def _duo_leaders(n: int = 3) -> Adversary:
    """Every live set contains 0 or 1: ``csize = setcon = 2``."""
    return from_live_sets(n, [{0}, {1}]).superset_closure()


def standard_grid() -> List[OracleCase]:
    """The committed pairs: crash cases decided by FACT, Byzantine
    cases decided by the ``n > 3t`` regime — both solvable and
    unsolvable on each side."""
    zoo = catalogue_by_name(3)
    cases: List[OracleCase] = []

    def crash(name: str, adversary: Adversary, k: int) -> None:
        cases.append(
            OracleCase(
                name=name,
                protocol="hitting-set-consensus",
                n=3,
                t=0,
                k=k,
                adversary=adversary,
            )
        )

    # wait-free k=2 is deliberately absent: its FACT impossibility
    # search is orders of magnitude beyond every other grid query (the
    # hard 2-set-consensus impossibility), and the duo-leaders pair
    # covers the same setcon=2 verdict shape cheaply.
    crash("ksc-wait-free-k1", zoo["wait-free"], 1)
    crash("ksc-wait-free-k3", zoo["wait-free"], 3)
    crash("ksc-1-resilient-k1", zoo["1-resilient"], 1)
    crash("ksc-1-resilient-k2", zoo["1-resilient"], 2)
    crash("ksc-figure-5b-k1", zoo["figure-5b"], 1)
    crash("ksc-figure-5b-k2", zoo["figure-5b"], 2)
    crash("ksc-solo-leader-k1", _solo_leader(), 1)
    crash("ksc-duo-leaders-k1", _duo_leaders(), 1)
    crash("ksc-duo-leaders-k2", _duo_leaders(), 2)

    def byz(name: str, protocol: str, n: int, t: int) -> None:
        cases.append(
            OracleCase(
                name=name, protocol=protocol, n=n, t=t, k=1, adversary=None
            )
        )

    byz("rbcast-n4-t1", "reliable-broadcast", 4, 1)
    byz("rbcast-n5-t1", "reliable-broadcast", 5, 1)
    byz("rbcast-n3-t1", "reliable-broadcast", 3, 1)
    byz("wba-n4-t1", "bosco-weak-agreement", 4, 1)
    byz("wba-n7-t2", "bosco-weak-agreement", 7, 2)
    byz("wba-n3-t1", "bosco-weak-agreement", 3, 1)
    return cases


STANDARD_GRID: Tuple[OracleCase, ...] = tuple(standard_grid())


def grid_case(name: str) -> OracleCase:
    for case in STANDARD_GRID:
        if case.name == name:
            return case
    known = ", ".join(case.name for case in STANDARD_GRID)
    raise KeyError(f"unknown oracle case {name!r}; known cases: {known}")

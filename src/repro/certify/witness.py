"""Portable solvability certificates: the canonical witness format.

FACT (Theorem 16) is a biconditional, so every verdict the decision
procedure emits has a finite witness:

* *solvable* — the chromatic simplicial map ``phi : L -> O`` itself,
  together with, per simplex of ``L``, its image and the carrier face
  of ``s`` whose ``Delta`` value must contain that image;
* *unsolvable* — the search's vertex order, the per-vertex candidate
  domains, and a trace proving the backtrack was exhaustive (replayable
  node-for-node);
* *budget* — a resumable stub: the consistent partial assignment a
  :class:`~repro.tasks.solvability.SearchBudgetExceeded` carried, so a
  re-issued query can seed the search instead of restarting.

A certificate is a plain JSON document (dict of strings, ints and
tagged vertex encodings) and therefore travels unchanged through the
engine's canonical codec, the artifact cache, the service wire and
certificate files on disk.  The *statement* block embeds the task's
tabulated ``Delta`` and the affine complex's facets in exactly the form
:mod:`repro.engine.serialize` encodes them, plus the content digests the
engine uses as ``solve`` cache keys — which lets the independent checker
(:mod:`repro.certify.checker`, stdlib-only) re-derive those digests from
the certificate body alone and bind the witness to the statement.

Builders here may import anything; only the checker is a trusted base.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..core.affine import AffineTask
from ..engine.serialize import decode, digest, encode
from ..tasks.task import OutputVertex, Task
from ..topology.chromatic import ChrVertex
from ..topology.simplex import simplex_key, vertex_key
from ..topology.subdivision import carrier_in_s

#: Certificate format identifier and version.  Bump the version on any
#: incompatible change to the document layout; the checker rejects
#: versions it does not know with ``unsupported_version``.
CERT_FORMAT = "repro.certify"
CERT_VERSION = 1

Cert = Dict[str, Any]


def _canon_text(encoded: Any) -> str:
    """Canonical JSON text (mirrors the engine codec's sort key)."""
    return json.dumps(
        encoded, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


# ----------------------------------------------------------------------
# The statement block
# ----------------------------------------------------------------------
def statement_for(affine: AffineTask, task: Task) -> Dict[str, Any]:
    """The claim a certificate is about: ``(L, T)`` plus their digests.

    ``facets`` and ``delta`` are lifted verbatim from the engine's
    canonical encodings of ``L`` and ``T``, so the digests recomputed by
    the independent checker from the certificate body equal the digests
    recorded here — the same content addresses the engine cache keys
    ``solve`` and ``certify`` jobs under.
    """
    affine_enc = encode(affine)  # ["affine", n, depth, name, ["ccx", [...]]]
    task_enc = encode(task)  # ["task", n, name, [[P, outputs], ...]]
    # Every field comes from the *encoding*, never from the object: the
    # engine memoizes encodings by value equality, so an equal artifact
    # constructed under a different display name shares the memoized
    # encoding — mixing object attributes with encoded fields would
    # break the digest binding for exactly those artifacts.
    return {
        "n": affine_enc[1],
        "depth": affine_enc[2],
        "affine_name": affine_enc[3],
        "task_name": task_enc[2],
        "affine_digest": digest(affine),
        "task_digest": digest(task),
        "facets": affine_enc[4][1],
        "delta": task_enc[3],
    }


def _header(kind: str, affine: AffineTask, task: Task) -> Cert:
    return {
        "format": CERT_FORMAT,
        "version": CERT_VERSION,
        "kind": kind,
        "statement": statement_for(affine, task),
    }


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def solvable_cert(
    affine: AffineTask,
    task: Task,
    mapping: Dict[ChrVertex, OutputVertex],
    nodes_explored: Optional[int] = None,
) -> Cert:
    """A positive certificate: the map plus per-simplex image/carrier.

    The per-simplex entries are redundant given the map — deliberately:
    the checker verifies each entry *and* that the entries exhaust the
    downward closure of the facets, so a certificate cannot silently
    omit a constraint.
    """
    cert = _header("solvable", affine, task)
    # Each vertex appears in many simplices; encode and canonicalize it
    # once, not once per appearance (this keeps extraction a by-product
    # of the search instead of a second traversal-sized cost).
    vertex_enc = {vertex: encode(vertex) for vertex in mapping}
    vertex_text = {v: _canon_text(e) for v, e in vertex_enc.items()}
    out_enc = {vertex: encode(out) for vertex, out in mapping.items()}
    out_text = {v: _canon_text(e) for v, e in out_enc.items()}
    cert["map"] = [
        [vertex_enc[vertex], out_enc[vertex]]
        for vertex in sorted(mapping, key=vertex_key)
    ]
    entries: List[Dict[str, Any]] = []
    for sigma in sorted(affine.complex.simplices, key=simplex_key):
        entries.append(
            {
                "simplex": [
                    vertex_enc[v]
                    for v in sorted(sigma, key=vertex_text.__getitem__)
                ],
                "carrier": sorted(carrier_in_s(sigma)),
                "image": sorted({out_text[v] for v in sigma}),
            }
        )
    cert["simplices"] = entries
    cert["search"] = {"nodes_explored": nodes_explored}
    return cert


def unsolvable_cert(affine: AffineTask, task: Task, search) -> Cert:
    """A negative certificate from a completed, map-less search.

    ``search`` is the :class:`~repro.tasks.solvability.MapSearch` whose
    ``search()`` just returned ``None``: its vertex order and candidate
    domains (in canonical candidate order) are the refutation trace —
    an independent exhaustive backtrack over exactly these domains, in
    exactly this order, visits ``nodes_explored`` assignments and finds
    no carried map.  The checker recomputes the domains from the
    statement's ``Delta`` table (so truncated domains are rejected) and
    replays the backtrack node-for-node.
    """
    if getattr(search, "domains_overridden", False):
        raise ValueError(
            "refutations over override-restricted domains are partial; "
            "only full searches yield unsolvable certificates"
        )
    cert = _header("unsolvable", affine, task)
    cert["order"] = [encode(vertex) for vertex in search.vertices]
    cert["domains"] = [
        [encode(out) for out in search.domains[vertex]]
        for vertex in search.vertices
    ]
    cert["trace"] = {"nodes_explored": search.nodes_explored}
    return cert


def budget_stub(
    affine: AffineTask,
    task: Task,
    exc,
    budget: Optional[int] = None,
) -> Cert:
    """A resumable stub from a :class:`SearchBudgetExceeded`.

    Not a verdict: it records the consistent prefix the search held when
    the budget fired, so :func:`repro.certify.extract.resume_from_stub`
    (or ``Engine.resume_solve``) can seed a re-issued query with it.
    The trace field keeps its v1 name ``node_budget`` — the certificate
    format is independent of the API's kwarg spelling.
    """
    cert = _header("budget", affine, task)
    cert["partial"] = [
        [encode(vertex), encode(out)]
        for vertex, out in sorted(
            exc.partial_assignment.items(), key=lambda kv: vertex_key(kv[0])
        )
    ]
    cert["trace"] = {
        "nodes_explored": exc.nodes_explored,
        "node_budget": budget,
    }
    return cert


# ----------------------------------------------------------------------
# Decoding the pieces callers resume from
# ----------------------------------------------------------------------
def partial_assignment_of(stub: Cert) -> Dict[ChrVertex, OutputVertex]:
    """Rebuild the partial assignment carried by a budget stub."""
    if stub.get("kind") != "budget":
        raise ValueError(f"not a budget stub: kind={stub.get('kind')!r}")
    return {
        decode(vertex): decode(out) for vertex, out in stub.get("partial", [])
    }


def mapping_of(cert: Cert) -> Dict[ChrVertex, OutputVertex]:
    """Rebuild the carried map of a solvable certificate."""
    if cert.get("kind") != "solvable":
        raise ValueError(f"not a solvable certificate: {cert.get('kind')!r}")
    return {decode(vertex): decode(out) for vertex, out in cert["map"]}


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def cert_to_bytes(cert: Cert) -> bytes:
    """The canonical on-disk form: sorted-key JSON, one trailing newline.

    Deterministic byte-for-byte: two runs producing the same certificate
    produce identical files.
    """
    return (_canon_text(cert) + "\n").encode("utf-8")


def write_cert(path, cert: Cert) -> None:
    """Write a certificate file at ``path`` (canonical bytes)."""
    with open(path, "wb") as handle:
        handle.write(cert_to_bytes(cert))


def read_cert(path) -> Cert:
    """Load a certificate file; raises ``ValueError`` on non-JSON."""
    with open(path, "rb") as handle:
        loaded = json.loads(handle.read().decode("utf-8"))
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: certificate must be a JSON object")
    return loaded

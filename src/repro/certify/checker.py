"""The independent certificate checker — the trusted base.

This module re-validates solvability certificates with **no imports
from the rest of the library** (standard library only; a test enforces
it).  Everything it needs it re-derives from the certificate document
itself:

* vertex structure — its own reader for the tagged encodings
  (``chrv`` / ``outv`` / ``fset`` / ints), its own color and
  carrier-lowering folds;
* the statement — the ``Delta`` table and the facets of ``L`` are in
  the certificate body; the checker recomputes their content digests
  (the same SHA-256-over-canonical-JSON scheme the engine addresses its
  cache with) and compares them to the digests the statement claims,
  binding witness to statement;
* the complex — the downward closure of the facets, so a certificate
  cannot omit a constraint simplex;
* the domains — recomputed from the ``Delta`` table, so an unsolvable
  certificate cannot smuggle in truncated candidate lists.

Positive certificates are checked for chromaticity, simplicial-ness
(every closure simplex has an entry whose image matches the map) and
carrier inclusion (the image lies in ``Delta`` of the independently
recomputed carrier).  Negative certificates are replayed: an exhaustive
backtrack over the recomputed domains, in the certificate's vertex
order, must find no map and must visit exactly the traced node count.
Budget stubs are checked for internal consistency of the partial
assignment, and report an ``undecided`` verdict.

The result is always a structured :class:`CheckReport`; the checker
never raises on malformed input.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

#: Format identifier/versions this checker understands (mirrors
#: ``repro.certify.witness``; kept literal so the module stays
#: dependency-free — a test asserts the two agree).
CERT_FORMAT = "repro.certify"
SUPPORTED_VERSIONS = (1,)

#: Digest salt of the engine's canonical codec, reproduced literally
#: for the same reason (test-enforced equal to
#: ``repro.engine.serialize._DIGEST_SALT``).
DIGEST_SALT = "repro.engine:v1:"

#: The closed set of machine-readable failure reasons.
REASONS = frozenset(
    {
        "ok",
        "bad_format",
        "unsupported_version",
        "unknown_kind",
        "statement_digest_mismatch",
        "chromatic_violation",
        "not_closed",
        "missing_map_entry",
        "carrier_mismatch",
        "image_mismatch",
        "image_not_allowed",
        "order_not_permutation",
        "domain_mismatch",
        "map_exists",
        "trace_mismatch",
        "inconsistent_partial",
    }
)


@dataclass
class CheckReport:
    """The structured outcome of one certificate check."""

    valid: bool
    kind: str  # "solvable" | "unsolvable" | "budget" | "unknown"
    verdict: str  # "solvable" | "unsolvable" | "undecided" | "invalid"
    reason: str  # "ok" or a code from REASONS
    detail: str = ""
    vertices_checked: int = 0
    simplices_checked: int = 0
    nodes_replayed: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "valid": self.valid,
            "kind": self.kind,
            "verdict": self.verdict,
            "reason": self.reason,
            "detail": self.detail,
            "vertices_checked": self.vertices_checked,
            "simplices_checked": self.simplices_checked,
            "nodes_replayed": self.nodes_replayed,
        }


class _Reject(Exception):
    """Internal control flow: abort the check with (reason, detail)."""

    def __init__(self, reason: str, detail: str = ""):
        assert reason in REASONS, reason
        super().__init__(detail)
        self.reason = reason
        self.detail = detail


# ----------------------------------------------------------------------
# An independent reader for the tagged vertex encodings
# ----------------------------------------------------------------------
def _freeze(encoded: Any) -> Any:
    """Encoded JSON structure -> hashable value (tagged tuples)."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if not isinstance(encoded, list) or not encoded:
        raise _Reject("bad_format", f"unreadable vertex encoding {encoded!r}")
    tag = encoded[0]
    if tag in ("chrv", "outv") and len(encoded) == 3:
        return (tag, _freeze(encoded[1]), _freeze(encoded[2]))
    if tag == "fset" and len(encoded) == 2:
        return ("fset", frozenset(_freeze(member) for member in encoded[1]))
    if tag in ("tuple", "list") and len(encoded) == 2:
        return (tag, tuple(_freeze(member) for member in encoded[1]))
    raise _Reject("bad_format", f"unknown vertex encoding tag {tag!r}")


def _canon_text(encoded: Any) -> str:
    return json.dumps(
        encoded, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _recanon(encoded: Any) -> Any:
    """Re-canonicalize an encoded structure (sort set members)."""
    if isinstance(encoded, list) and encoded:
        tag = encoded[0]
        if not isinstance(tag, str):
            # An untagged pair/array (e.g. a delta-table entry).
            return [_recanon(member) for member in encoded]
        if tag == "fset" and len(encoded) == 2:
            members = [_recanon(member) for member in encoded[1]]
            return ["fset", sorted(members, key=_canon_text)]
        if tag in ("tuple", "list") and len(encoded) == 2:
            return [tag, [_recanon(member) for member in encoded[1]]]
        if tag in ("chrv", "outv") and len(encoded) == 3:
            return [tag, _recanon(encoded[1]), _recanon(encoded[2])]
        raise _Reject("bad_format", f"unknown encoding tag {tag!r}")
    return encoded


def _digest(encoded: Any) -> str:
    payload = DIGEST_SALT + _canon_text(encoded)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Structural folds on frozen vertices
# ----------------------------------------------------------------------
def _color(vertex: Any) -> int:
    if isinstance(vertex, bool):
        raise _Reject("bad_format", "boolean is not a vertex")
    if isinstance(vertex, int):
        return vertex
    if isinstance(vertex, tuple) and vertex and vertex[0] in ("chrv", "outv"):
        color = vertex[1]
        if isinstance(color, int) and not isinstance(color, bool):
            return color
    raise _Reject("bad_format", f"vertex {vertex!r} has no color")


def _is_chrv(vertex: Any) -> bool:
    return isinstance(vertex, tuple) and len(vertex) == 3 and vertex[0] == "chrv"


def _carrier_members(vertex: Any) -> FrozenSet[Any]:
    carrier = vertex[2]
    if not (isinstance(carrier, tuple) and carrier[0] == "fset"):
        raise _Reject("bad_format", f"carrier of {vertex!r} is not a set")
    return carrier[1]


def _carrier_in_s(vertices: FrozenSet[Any]) -> FrozenSet[int]:
    """Lower a simplex's carrier to a face of ``s`` (process ids)."""
    current = frozenset(vertices)
    while current and all(_is_chrv(v) for v in current):
        lowered: set = set()
        for vertex in current:
            lowered |= set(_carrier_members(vertex))
        current = frozenset(lowered)
    if not all(isinstance(v, int) and not isinstance(v, bool) for v in current):
        raise _Reject(
            "bad_format", "carrier does not lower to process ids"
        )
    return current


def _closure(facets: List[FrozenSet[Any]]) -> FrozenSet[FrozenSet[Any]]:
    """All non-empty faces of the given facets."""
    closed: set = set()
    for facet in facets:
        members = tuple(facet)
        count = len(members)
        for mask in range(1, 1 << count):
            closed.add(
                frozenset(
                    members[i] for i in range(count) if mask >> i & 1
                )
            )
    return frozenset(closed)


# ----------------------------------------------------------------------
# Statement parsing and digest binding
# ----------------------------------------------------------------------
class _Statement:
    """The parsed claim: complex facets + tabulated ``Delta``."""

    def __init__(self, raw: Any):
        if not isinstance(raw, dict):
            raise _Reject("bad_format", "statement must be an object")
        try:
            self.n = int(raw["n"])
            self.depth = int(raw["depth"])
            self.affine_name = str(raw["affine_name"])
            self.task_name = str(raw["task_name"])
            facets_enc = raw["facets"]
            delta_enc = raw["delta"]
            claimed_affine = str(raw["affine_digest"])
            claimed_task = str(raw["task_digest"])
        except (KeyError, TypeError, ValueError) as exc:
            raise _Reject("bad_format", f"incomplete statement: {exc}")
        if not isinstance(facets_enc, list) or not isinstance(delta_enc, list):
            raise _Reject("bad_format", "facets/delta must be arrays")

        # Digest binding: recompute the engine's content addresses from
        # the body and require them to match the claimed digests.
        affine_body = [
            "affine",
            self.n,
            self.depth,
            self.affine_name,
            [
                "ccx",
                sorted(
                    (_recanon(facet) for facet in facets_enc), key=_canon_text
                ),
            ],
        ]
        task_body = [
            "task",
            self.n,
            self.task_name,
            sorted((_recanon(entry) for entry in delta_enc), key=_canon_text),
        ]
        if _digest(affine_body) != claimed_affine:
            raise _Reject(
                "statement_digest_mismatch",
                "recomputed affine-complex digest differs from the claim",
            )
        if _digest(task_body) != claimed_task:
            raise _Reject(
                "statement_digest_mismatch",
                "recomputed task digest differs from the claim",
            )
        self.affine_digest = claimed_affine
        self.task_digest = claimed_task

        self.facets: List[FrozenSet[Any]] = []
        for facet_enc in facets_enc:
            frozen = _freeze(facet_enc)
            if not (isinstance(frozen, tuple) and frozen[0] == "fset"):
                raise _Reject("bad_format", "facet is not a vertex set")
            self.facets.append(frozen[1])
        self.simplices = _closure(self.facets)
        self.vertices = frozenset(
            vertex for facet in self.facets for vertex in facet
        )

        # Delta: participation (frozenset of ids) -> set of allowed
        # output simplices (frozensets of frozen output vertices).
        self.delta: Dict[FrozenSet[int], FrozenSet[FrozenSet[Any]]] = {}
        for entry in delta_enc:
            if not (isinstance(entry, list) and len(entry) == 2):
                raise _Reject("bad_format", "malformed delta entry")
            participants_frozen = _freeze(entry[0])
            outputs_frozen = _freeze(entry[1])
            if not (
                isinstance(participants_frozen, tuple)
                and participants_frozen[0] == "fset"
                and isinstance(outputs_frozen, tuple)
                and outputs_frozen[0] == "fset"
            ):
                raise _Reject("bad_format", "malformed delta entry")
            participants = frozenset(participants_frozen[1])
            if not all(
                isinstance(p, int) and not isinstance(p, bool)
                for p in participants
            ):
                raise _Reject("bad_format", "delta participation not ids")
            outputs = set()
            for sigma in outputs_frozen[1]:
                if not (isinstance(sigma, tuple) and sigma[0] == "fset"):
                    raise _Reject(
                        "bad_format", "delta output is not a simplex"
                    )
                outputs.add(frozenset(sigma[1]))
            self.delta[participants] = frozenset(outputs)

    def allowed(self, participants: FrozenSet[int]) -> FrozenSet[FrozenSet[Any]]:
        return self.delta.get(frozenset(participants), frozenset())

    def domain(self, vertex: Any) -> FrozenSet[Any]:
        """The natural candidate set of ``vertex`` under ``Delta``.

        Mirrors the decision procedure's domain rule: output vertices of
        the vertex's color drawn from allowed simplices of its witnessed
        participation, whose singleton is itself allowed.
        """
        participation = _carrier_in_s(frozenset([vertex]))
        allowed = self.allowed(participation)
        color = _color(vertex)
        return frozenset(
            out
            for sigma in allowed
            for out in sigma
            if _color(out) == color and frozenset([out]) in allowed
        )


# ----------------------------------------------------------------------
# Per-kind checks
# ----------------------------------------------------------------------
def _check_solvable(cert: Dict[str, Any], statement: _Statement) -> CheckReport:
    mapping: Dict[Any, Any] = {}
    for pair in cert.get("map", ()):
        if not (isinstance(pair, list) and len(pair) == 2):
            raise _Reject("bad_format", "malformed map entry")
        mapping[_freeze(pair[0])] = _freeze(pair[1])

    missing = statement.vertices - set(mapping)
    if missing:
        raise _Reject(
            "missing_map_entry",
            f"{len(missing)} complex vertices have no image",
        )
    # Chromaticity: phi preserves colors.
    for vertex, out in mapping.items():
        if _color(vertex) != _color(out):
            raise _Reject(
                "chromatic_violation",
                f"vertex of color {_color(vertex)} maps to color {_color(out)}",
            )

    entries = cert.get("simplices")
    if not isinstance(entries, list):
        raise _Reject("bad_format", "missing per-simplex entries")
    seen: set = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise _Reject("bad_format", "malformed simplex entry")
        try:
            simplex = frozenset(_freeze(v) for v in entry["simplex"])
            claimed_carrier = frozenset(entry["carrier"])
            claimed_image = frozenset(entry["image"])
        except (KeyError, TypeError) as exc:
            raise _Reject("bad_format", f"incomplete simplex entry: {exc}")
        if simplex not in statement.simplices:
            raise _Reject(
                "not_closed",
                "entry lists a simplex outside the complex closure",
            )
        seen.add(simplex)
        carrier = _carrier_in_s(simplex)
        if carrier != claimed_carrier:
            raise _Reject(
                "carrier_mismatch",
                f"claimed carrier {sorted(claimed_carrier)} != "
                f"recomputed {sorted(carrier)}",
            )
        image = frozenset(mapping[v] for v in simplex)
        if claimed_image != {_canon_text(_recanon_frozen(out)) for out in image}:
            raise _Reject(
                "image_mismatch",
                "entry image differs from the map's image of the simplex",
            )
        if image not in statement.allowed(carrier):
            raise _Reject(
                "image_not_allowed",
                f"image not in Delta({sorted(carrier)})",
            )
    if seen != statement.simplices:
        raise _Reject(
            "not_closed",
            f"{len(statement.simplices) - len(seen)} closure simplices "
            "have no entry",
        )
    return CheckReport(
        valid=True,
        kind="solvable",
        verdict="solvable",
        reason="ok",
        vertices_checked=len(mapping),
        simplices_checked=len(seen),
    )


def _recanon_frozen(vertex: Any) -> Any:
    """Frozen vertex -> canonical encoded structure (for image texts)."""
    if isinstance(vertex, tuple) and vertex:
        tag = vertex[0]
        if tag in ("chrv", "outv"):
            return [tag, _recanon_frozen(vertex[1]), _recanon_frozen(vertex[2])]
        if tag == "fset":
            return [
                "fset",
                sorted(
                    (_recanon_frozen(m) for m in vertex[1]), key=_canon_text
                ),
            ]
        if tag in ("tuple", "list"):
            return [tag, [_recanon_frozen(m) for m in vertex[1]]]
    return vertex


def _check_unsolvable(
    cert: Dict[str, Any], statement: _Statement
) -> CheckReport:
    order_enc = cert.get("order")
    domains_enc = cert.get("domains")
    trace = cert.get("trace")
    if (
        not isinstance(order_enc, list)
        or not isinstance(domains_enc, list)
        or len(order_enc) != len(domains_enc)
        or not isinstance(trace, dict)
    ):
        raise _Reject("bad_format", "malformed refutation trace")

    order = [_freeze(v) for v in order_enc]
    if frozenset(order) != statement.vertices or len(order) != len(
        statement.vertices
    ):
        raise _Reject(
            "order_not_permutation",
            "vertex order is not a permutation of the complex vertices",
        )
    domains: List[List[Any]] = []
    for vertex, domain_enc in zip(order, domains_enc):
        domain = [_freeze(out) for out in domain_enc]
        if len(set(domain)) != len(domain) or set(domain) != set(
            statement.domain(vertex)
        ):
            raise _Reject(
                "domain_mismatch",
                "listed candidate domain differs from the Delta-derived one",
            )
        domains.append(domain)

    found, nodes = _replay(statement, order, domains)
    if found is not None:
        raise _Reject(
            "map_exists",
            "replay found a carried map; the unsolvability claim is false",
        )
    claimed_nodes = trace.get("nodes_explored")
    if claimed_nodes != nodes:
        raise _Reject(
            "trace_mismatch",
            f"replay visited {nodes} nodes, trace claims {claimed_nodes}",
        )
    return CheckReport(
        valid=True,
        kind="unsolvable",
        verdict="unsolvable",
        reason="ok",
        vertices_checked=len(order),
        simplices_checked=len(statement.simplices),
        nodes_replayed=nodes,
    )


def _replay(
    statement: _Statement,
    order: List[Any],
    domains: List[List[Any]],
) -> Tuple[Optional[Dict[Any, Any]], int]:
    """Exhaustive backtrack over the given order/domains.

    An independent re-implementation of the decision procedure's
    iterative DFS: same node accounting (one node per candidate tried),
    same constraint discipline (each closure simplex checked once, when
    its latest vertex in ``order`` is assigned) — so a faithful
    refutation trace replays to the identical node count.
    """
    rank = {vertex: index for index, vertex in enumerate(order)}
    firing: Dict[Any, List[Tuple[FrozenSet[Any], FrozenSet[int]]]] = {
        vertex: [] for vertex in order
    }
    for sigma in statement.simplices:
        last = max(sigma, key=lambda v: rank[v])
        firing[last].append((sigma, _carrier_in_s(sigma)))

    assignment: Dict[Any, Any] = {}
    nodes = 0
    total = len(order)
    if total == 0:
        return {}, 0
    choice_index = [0] * total
    depth = 0
    while True:
        vertex = order[depth]
        domain = domains[depth]
        advanced = False
        while choice_index[depth] < len(domain):
            candidate = domain[choice_index[depth]]
            choice_index[depth] += 1
            nodes += 1
            assignment[vertex] = candidate
            consistent = True
            for sigma, carrier in firing[vertex]:
                image = frozenset(assignment[v] for v in sigma)
                if image not in statement.allowed(carrier):
                    consistent = False
                    break
            if consistent:
                advanced = True
                break
            del assignment[vertex]
        if advanced:
            if depth + 1 == total:
                return dict(assignment), nodes
            depth += 1
            choice_index[depth] = 0
        else:
            if vertex in assignment:
                del assignment[vertex]
            depth -= 1
            if depth < 0:
                return None, nodes
            assignment.pop(order[depth], None)


def _check_budget(cert: Dict[str, Any], statement: _Statement) -> CheckReport:
    partial: Dict[Any, Any] = {}
    for pair in cert.get("partial", ()):
        if not (isinstance(pair, list) and len(pair) == 2):
            raise _Reject("bad_format", "malformed partial-assignment entry")
        partial[_freeze(pair[0])] = _freeze(pair[1])
    stray = set(partial) - statement.vertices
    if stray:
        raise _Reject(
            "inconsistent_partial",
            "partial assignment mentions vertices outside the complex",
        )
    checked = 0
    for vertex, out in partial.items():
        if _color(vertex) != _color(out):
            raise _Reject(
                "inconsistent_partial", "partial assignment breaks colors"
            )
        if out not in statement.domain(vertex):
            raise _Reject(
                "inconsistent_partial",
                "partial assignment uses an out-of-domain candidate",
            )
    for sigma in statement.simplices:
        if all(v in partial for v in sigma):
            image = frozenset(partial[v] for v in sigma)
            if image not in statement.allowed(_carrier_in_s(sigma)):
                raise _Reject(
                    "inconsistent_partial",
                    "partial assignment violates a carrier constraint",
                )
            checked += 1
    return CheckReport(
        valid=True,
        kind="budget",
        verdict="undecided",
        reason="ok",
        detail="resumable stub; not a solvability verdict",
        vertices_checked=len(partial),
        simplices_checked=checked,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def check(cert: Any) -> CheckReport:
    """Validate one certificate document; never raises."""
    kind = "unknown"
    try:
        if not isinstance(cert, dict):
            raise _Reject("bad_format", "certificate must be a JSON object")
        if cert.get("format") != CERT_FORMAT:
            raise _Reject(
                "bad_format", f"unknown format {cert.get('format')!r}"
            )
        if cert.get("version") not in SUPPORTED_VERSIONS:
            raise _Reject(
                "unsupported_version",
                f"certificate version {cert.get('version')!r} not supported",
            )
        kind = cert.get("kind", "unknown")
        statement = _Statement(cert.get("statement"))
        if kind == "solvable":
            return _check_solvable(cert, statement)
        if kind == "unsolvable":
            return _check_unsolvable(cert, statement)
        if kind == "budget":
            return _check_budget(cert, statement)
        raise _Reject("unknown_kind", f"unknown certificate kind {kind!r}")
    except _Reject as rejection:
        return CheckReport(
            valid=False,
            kind=kind if isinstance(kind, str) else "unknown",
            verdict="invalid",
            reason=rejection.reason,
            detail=rejection.detail,
        )
    except Exception as exc:  # malformed beyond recognition
        return CheckReport(
            valid=False,
            kind=kind if isinstance(kind, str) else "unknown",
            verdict="invalid",
            reason="bad_format",
            detail=f"{type(exc).__name__}: {exc}",
        )


def check_bytes(data: bytes) -> CheckReport:
    """Validate a certificate from its on-disk bytes."""
    try:
        cert = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        return CheckReport(
            valid=False,
            kind="unknown",
            verdict="invalid",
            reason="bad_format",
            detail=f"unparsable certificate file: {exc}",
        )
    return check(cert)

"""Certificate extraction: instrument the FACT search, resume stubs.

The decision procedure already computes everything a certificate needs
— the map (positive), the vertex order / domains / node count
(negative), the consistent prefix (budget) — so extraction is a cheap
read-out of searcher state after one ``search()`` call, never a second
search.

Kernel selection: certificates are read out of whichever kernel ran the
search, but only **tree-identical** kernels qualify (the default
``bitset`` kernel and ``legacy``): an unsolvable certificate embeds the
exact ``nodes_explored`` the independent checker replays node-for-node,
and a budget stub's prefix encodes a position in the legacy tree.  A
request for the pruning ``fc`` kernel is therefore coerced to
``bitset`` here — certificates stay byte-identical no matter which
kernel the caller prefers for plain solves.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.affine import AffineTask
from ..solver.api import (
    DEFAULT_KERNEL,
    KERNEL_LEGACY,
    TREE_IDENTICAL_KERNELS,
    SolveRequest,
    make_searcher,
)
from ..tasks.solvability import (
    MapSearch,
    SearchBudgetExceeded,
    resolve_budget,
)
from ..tasks.task import OutputVertex, Task
from ..topology.chromatic import ChrVertex
from . import witness
from .witness import Cert


def _certifying_searcher(affine: AffineTask, task: Task, kernel: str):
    """A searcher whose tree — hence certificate — matches legacy."""
    if kernel not in TREE_IDENTICAL_KERNELS:
        kernel = DEFAULT_KERNEL
    if kernel == KERNEL_LEGACY:
        return MapSearch(affine, task)
    return make_searcher(
        SolveRequest(affine=affine, task=task, kernel=kernel)
    )


def certified_search(
    affine: AffineTask,
    task: Task,
    budget: Optional[int] = None,
    kernel: str = DEFAULT_KERNEL,
    *,
    node_budget: Optional[int] = None,
) -> Tuple[Optional[Dict[ChrVertex, OutputVertex]], Cert]:
    """One FACT query with a certificate as by-product.

    Returns ``(mapping_or_None, certificate)``:

    * a carried map was found — ``(mapping, SolvableCert)``;
    * the search exhausted — ``(None, UnsolvableCert)``;
    * the node budget fired — ``(None, budget stub)`` carrying the
      resumable partial assignment (the stub's ``kind`` is ``budget``;
      it is *not* a verdict).

    ``kernel`` selects the search kernel; non-tree-identical kernels
    are coerced so the certificate bytes never depend on the choice.
    """
    budget = resolve_budget(budget, node_budget=node_budget)
    search = _certifying_searcher(affine, task, kernel)
    try:
        mapping = search.search(budget)
    except SearchBudgetExceeded as exc:
        return None, witness.budget_stub(affine, task, exc, budget)
    if mapping is not None:
        return mapping, witness.solvable_cert(
            affine, task, mapping, nodes_explored=search.nodes_explored
        )
    return None, witness.unsolvable_cert(affine, task, search)


def certificate_for(
    affine: AffineTask,
    task: Task,
    budget: Optional[int] = None,
    kernel: str = DEFAULT_KERNEL,
    *,
    node_budget: Optional[int] = None,
) -> Cert:
    """Just the certificate (the engine's ``certify`` job body)."""
    budget = resolve_budget(budget, node_budget=node_budget)
    _, cert = certified_search(affine, task, budget, kernel)
    return cert


def resume_from_stub(
    stub: Cert,
    affine: AffineTask,
    task: Task,
    budget: Optional[int] = None,
    kernel: str = DEFAULT_KERNEL,
    *,
    node_budget: Optional[int] = None,
) -> Tuple[Optional[Dict[ChrVertex, OutputVertex]], int]:
    """Continue a budget-interrupted search from its stub.

    Seeds a fresh searcher with the stub's partial assignment, so only
    the unexplored remainder of the space is visited.  Raises
    ``ValueError`` when the stub does not belong to ``(affine, task)``
    (digest check) or its prefix is not consistent.  Returns
    ``(mapping_or_None, nodes_explored_in_resume)``.
    """
    from ..engine.serialize import digest

    budget = resolve_budget(budget, node_budget=node_budget)
    statement = stub.get("statement", {})
    if statement.get("affine_digest") != digest(affine) or statement.get(
        "task_digest"
    ) != digest(task):
        raise ValueError("stub statement digests do not match (affine, task)")
    partial = witness.partial_assignment_of(stub)
    search = _certifying_searcher(affine, task, kernel)
    mapping = search.search(budget, resume_from=partial)
    return mapping, search.nodes_explored

"""Certificate extraction: instrument the FACT search, resume stubs.

The decision procedure already computes everything a certificate needs
— the map (positive), the vertex order / domains / node count
(negative), the consistent prefix (budget) — so extraction is a cheap
read-out of :class:`~repro.tasks.solvability.MapSearch` state after one
``search()`` call, never a second search.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.affine import AffineTask
from ..tasks.solvability import MapSearch, SearchBudgetExceeded
from ..tasks.task import OutputVertex, Task
from ..topology.chromatic import ChrVertex
from . import witness
from .witness import Cert


def certified_search(
    affine: AffineTask,
    task: Task,
    node_budget: Optional[int] = None,
) -> Tuple[Optional[Dict[ChrVertex, OutputVertex]], Cert]:
    """One FACT query with a certificate as by-product.

    Returns ``(mapping_or_None, certificate)``:

    * a carried map was found — ``(mapping, SolvableCert)``;
    * the search exhausted — ``(None, UnsolvableCert)``;
    * the node budget fired — ``(None, budget stub)`` carrying the
      resumable partial assignment (the stub's ``kind`` is ``budget``;
      it is *not* a verdict).
    """
    search = MapSearch(affine, task)
    try:
        mapping = search.search(node_budget)
    except SearchBudgetExceeded as exc:
        return None, witness.budget_stub(affine, task, exc, node_budget)
    if mapping is not None:
        return mapping, witness.solvable_cert(
            affine, task, mapping, nodes_explored=search.nodes_explored
        )
    return None, witness.unsolvable_cert(affine, task, search)


def certificate_for(
    affine: AffineTask,
    task: Task,
    node_budget: Optional[int] = None,
) -> Cert:
    """Just the certificate (the engine's ``certify`` job body)."""
    _, cert = certified_search(affine, task, node_budget)
    return cert


def resume_from_stub(
    stub: Cert,
    affine: AffineTask,
    task: Task,
    node_budget: Optional[int] = None,
) -> Tuple[Optional[Dict[ChrVertex, OutputVertex]], int]:
    """Continue a budget-interrupted search from its stub.

    Seeds a fresh :class:`MapSearch` with the stub's partial assignment,
    so only the unexplored remainder of the space is visited.  Raises
    ``ValueError`` when the stub does not belong to ``(affine, task)``
    (digest check) or its prefix is not consistent.  Returns
    ``(mapping_or_None, nodes_explored_in_resume)``.
    """
    from ..engine.serialize import digest

    statement = stub.get("statement", {})
    if statement.get("affine_digest") != digest(affine) or statement.get(
        "task_digest"
    ) != digest(task):
        raise ValueError("stub statement digests do not match (affine, task)")
    partial = witness.partial_assignment_of(stub)
    search = MapSearch(affine, task)
    mapping = search.search(node_budget, resume_from=partial)
    return mapping, search.nodes_explored

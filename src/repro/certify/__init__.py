"""Portable solvability certificates with an independent checker.

FACT's content is a biconditional, so every ``solve`` verdict has a
finite witness.  ``repro.certify`` makes those witnesses first-class:

* :mod:`~repro.certify.witness` — the canonical, versioned certificate
  format (``solvable`` / ``unsolvable`` / resumable ``budget`` stubs)
  as plain JSON documents, byte-for-byte deterministic;
* :mod:`~repro.certify.checker` — the **trusted base**: a stdlib-only
  validator that re-derives colors, carriers, closures, domains and
  even the statement's content digests from the certificate body alone
  (it imports nothing from the rest of the library — test-enforced);
* :mod:`~repro.certify.extract` — certificates as a near-zero-cost
  by-product of one :class:`~repro.tasks.solvability.MapSearch` run,
  plus resume-from-stub for budget-interrupted searches.

Wired through the stack: engine job kinds ``certify`` / ``check``
(content-addressed-cached like ``solve``), service queries of the same
kinds with typed client helpers, and ``repro certify`` /
``repro check`` on the CLI.  See ``docs/certificates.md``.
"""

from .checker import CheckReport, check, check_bytes
from .extract import certificate_for, certified_search, resume_from_stub
from .witness import (
    CERT_FORMAT,
    CERT_VERSION,
    budget_stub,
    cert_to_bytes,
    mapping_of,
    partial_assignment_of,
    read_cert,
    solvable_cert,
    statement_for,
    unsolvable_cert,
    write_cert,
)

__all__ = [
    "CERT_FORMAT",
    "CERT_VERSION",
    "CheckReport",
    "budget_stub",
    "cert_to_bytes",
    "certificate_for",
    "certified_search",
    "check",
    "check_bytes",
    "mapping_of",
    "partial_assignment_of",
    "read_cert",
    "resume_from_stub",
    "solvable_cert",
    "statement_for",
    "unsolvable_cert",
    "write_cert",
]

"""Fairness of adversaries (Definition 2).

An adversary is *fair* when a subset ``Q`` of the participants ``P``
cannot achieve better set consensus than ``P`` itself:

    for all Q ⊆ P ⊆ Pi:  setcon(A|P,Q) = min(|Q|, setcon(A|P)).

The module provides the decision procedure (with counterexample
extraction), and the two paper-level sufficient conditions as
executable cross-checks: superset-closed and symmetric adversaries are
fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterator, List, Optional

from .adversary import Adversary, ProcessSet
from .setcon import setcon


@dataclass(frozen=True)
class FairnessViolation:
    """A witness ``(P, Q)`` where Definition 2 fails, with both sides."""

    participants: ProcessSet
    targets: ProcessSet
    lhs: int  # setcon(A|P,Q)
    rhs: int  # min(|Q|, setcon(A|P))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"P={sorted(self.participants)}, Q={sorted(self.targets)}: "
            f"setcon(A|P,Q)={self.lhs} != min(|Q|, setcon(A|P))={self.rhs}"
        )


def fairness_violations(adversary: Adversary) -> Iterator[FairnessViolation]:
    """Yield every ``(P, Q)`` pair violating Definition 2."""
    for participants in _subsets(adversary.n):
        restricted = adversary.restrict(participants)
        power = setcon(restricted)
        for targets in _subsets_of(participants):
            if not targets:
                continue
            lhs = setcon(
                adversary.restrict_intersecting(participants, targets)
            )
            rhs = min(len(targets), power)
            if lhs != rhs:
                yield FairnessViolation(participants, targets, lhs, rhs)


def is_fair(adversary: Adversary) -> bool:
    """Decision procedure for Definition 2."""
    return next(fairness_violations(adversary), None) is None


def fairness_counterexample(
    adversary: Adversary,
) -> Optional[FairnessViolation]:
    """The first violation found, or ``None`` for fair adversaries."""
    return next(fairness_violations(adversary), None)


def check_superset_closed_implies_fair(adversary: Adversary) -> bool:
    """Executable form of the paper's claim: superset-closed => fair.

    Returns True when the implication holds on this instance (it always
    should); used as a property test over random adversaries.
    """
    if not adversary.is_superset_closed():
        return True
    return is_fair(adversary)


def check_symmetric_implies_fair(adversary: Adversary) -> bool:
    """Executable form of: symmetric => fair."""
    if not adversary.is_symmetric():
        return True
    return is_fair(adversary)


def _subsets(n: int) -> List[ProcessSet]:
    result = []
    for size in range(n + 1):
        for combo in combinations(range(n), size):
            result.append(frozenset(combo))
    return result


def _subsets_of(items: ProcessSet) -> List[ProcessSet]:
    items = sorted(items)
    result = []
    for size in range(len(items) + 1):
        for combo in combinations(items, size):
            result.append(frozenset(combo))
    return result

"""Agreement power ``setcon`` and minimal hitting sets ``csize``.

Definition 1 of the paper (from Gafni & Kuznetsov, OPODIS 2010):

    setcon(A) = 0                                   if A = ∅
    setcon(A) = max_{S in A} min_{a in S} (setcon(A|_{S \\ {a}}) + 1)

For superset-closed adversaries ``setcon(A) = csize(A)``, the size of a
minimal hitting set; for symmetric adversaries it reduces to the number
of distinct live-set sizes.  Both shortcuts are implemented and used as
cross-checks in the tests.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations
from typing import FrozenSet, Iterable, Optional, Tuple

from .adversary import Adversary, ProcessSet

LiveSets = FrozenSet[ProcessSet]


def setcon(adversary: Adversary) -> int:
    """The agreement power of an adversary (Definition 1)."""
    return _setcon_of_live_sets(adversary.live_sets)


def setcon_restricted(adversary: Adversary, participants: Iterable[int]) -> int:
    """``setcon(A|P)`` — the adaptive agreement power at participation P."""
    return setcon(adversary.restrict(participants))


@lru_cache(maxsize=None)
def _setcon_of_live_sets(live_sets: LiveSets) -> int:
    if not live_sets:
        return 0
    best = 0
    for live in live_sets:
        worst: Optional[int] = None
        for member in live:
            shrunk = _restrict(live_sets, live - {member})
            value = _setcon_of_live_sets(shrunk) + 1
            if worst is None or value < worst:
                worst = value
            if worst <= best:
                break  # cannot beat the current max
        assert worst is not None
        if worst > best:
            best = worst
    return best


def _restrict(live_sets: LiveSets, participants: ProcessSet) -> LiveSets:
    return frozenset(live for live in live_sets if live <= participants)


# ----------------------------------------------------------------------
# Hitting sets
# ----------------------------------------------------------------------
def hitting_sets(adversary: Adversary, size: int) -> Iterable[ProcessSet]:
    """All hitting sets of the adversary's live sets with a given size."""
    universe = sorted(adversary.processes)
    for combo in combinations(universe, size):
        candidate = frozenset(combo)
        if all(candidate & live for live in adversary.live_sets):
            yield candidate


def csize(adversary: Adversary) -> int:
    """``csize(A)``: the size of a minimal hitting set of ``A``.

    Returns ``0`` for the empty adversary (the empty set hits nothing
    vacuously).  Exhaustive search — adequate for the paper's regime of
    small ``n``.
    """
    if adversary.is_empty():
        return 0
    for size in range(0, adversary.n + 1):
        for _ in hitting_sets(adversary, size):
            return size
    raise AssertionError("the full process set always hits every live set")


def minimal_hitting_set(adversary: Adversary) -> ProcessSet:
    """One minimal-size hitting set (deterministic smallest-lexicographic)."""
    if adversary.is_empty():
        return frozenset()
    for size in range(0, adversary.n + 1):
        candidates = sorted(hitting_sets(adversary, size), key=sorted)
        if candidates:
            return candidates[0]
    raise AssertionError("unreachable")


def setcon_superset_closed(adversary: Adversary) -> int:
    """``setcon`` shortcut for superset-closed adversaries: ``csize``.

    Raises if the adversary is not superset-closed — the shortcut is
    only sound there ([14] in the paper).
    """
    if not adversary.is_superset_closed():
        raise ValueError("csize shortcut requires a superset-closed adversary")
    return csize(adversary)


def setcon_symmetric(adversary: Adversary) -> int:
    """``setcon`` shortcut for symmetric adversaries.

    ``setcon(A) = |{k in 1..n : exists S in A, |S| = k}|`` (Section 3).
    """
    if not adversary.is_symmetric():
        raise ValueError("size-count shortcut requires a symmetric adversary")
    return len(adversary.live_sizes())


def hitting_set_census(
    adversary: Adversary,
) -> Tuple[int, Tuple[ProcessSet, ...]]:
    """``(csize, all minimal hitting sets)`` — used in reports."""
    if adversary.is_empty():
        return 0, (frozenset(),)
    size = csize(adversary)
    return size, tuple(sorted(hitting_sets(adversary, size), key=sorted))

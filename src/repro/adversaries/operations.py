"""An algebra of adversaries: unions, intersections, restrictions.

Combining failure models is how systems are actually specified ("the
union of these two fault assumptions", "at least this live"), and the
combinators interact with the paper's notions in testable ways:

* more live sets = more allowed runs = a *weaker* model, so ``setcon``
  is monotone under adversary inclusion;
* the union of the run sets corresponds to the union of live sets, the
  intersection to the intersection;
* fairness is **not** preserved by union — the library finds concrete
  counterexamples (see the tests) — one more reason the fair class is
  delicate and the paper's generalization non-trivial.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .adversary import Adversary
from .fairness import is_fair
from .setcon import setcon


def union(a: Adversary, b: Adversary) -> Adversary:
    """Runs allowed by either adversary."""
    _require_same_universe(a, b)
    return Adversary(a.n, a.live_sets | b.live_sets)


def intersection(a: Adversary, b: Adversary) -> Adversary:
    """Runs allowed by both adversaries (may be empty)."""
    _require_same_universe(a, b)
    return Adversary(a.n, a.live_sets & b.live_sets)


def includes(a: Adversary, b: Adversary) -> bool:
    """Every ``b``-compliant run is ``a``-compliant."""
    _require_same_universe(a, b)
    return b.live_sets <= a.live_sets


def renamed(a: Adversary, permutation: dict) -> Adversary:
    """Apply a process permutation to every live set."""
    if sorted(permutation) != list(range(a.n)) or sorted(
        permutation.values()
    ) != list(range(a.n)):
        raise ValueError("need a permutation of 0..n-1")
    return Adversary(
        a.n,
        (
            frozenset(permutation[p] for p in live)
            for live in a.live_sets
        ),
    )


def is_permutation_equivalent(a: Adversary, b: Adversary) -> bool:
    """Are the adversaries equal up to renaming processes?"""
    from itertools import permutations

    _require_same_universe(a, b)
    for order in permutations(range(a.n)):
        mapping = dict(enumerate(order))
        if renamed(a, mapping) == b:
            return True
    return False


def _require_same_universe(a: Adversary, b: Adversary) -> None:
    if a.n != b.n:
        raise ValueError("adversaries live on different process sets")


# ----------------------------------------------------------------------
# Law checks used by the property tests
# ----------------------------------------------------------------------
def check_setcon_monotone(a: Adversary, b: Adversary) -> bool:
    """``A ⊆ B`` (as live-set collections) implies setcon(A) <= setcon(B)."""
    if not includes(b, a):
        return True
    return setcon(a) <= setcon(b)


def union_fairness_counterexample(
    n: int = 3,
) -> Optional[Tuple[Adversary, Adversary]]:
    """Two fair adversaries whose union is unfair (or None).

    Searches pairs drawn from the full landscape of fair adversaries.
    At n = 3 the search succeeds (45 of the fair pairs have unfair
    unions): e.g. ``A = {{0,1},{0,2}}`` and ``B = singletons`` — the
    union lets a coalition beat the combined participation's power.
    The fair class is thus not closed under union, one measure of why
    the paper's uniform characterization is non-trivial.
    """
    from ..analysis.landscape import all_adversaries

    fair_adversaries = [
        adversary for adversary in all_adversaries(n) if is_fair(adversary)
    ]
    for index, a in enumerate(fair_adversaries):
        for b in fair_adversaries[index + 1 :]:
            combined = union(a, b)
            if not is_fair(combined):
                return a, b
    return None

"""A zoo of named adversaries used by tests, examples and benchmarks.

The catalogue contains every adversary the paper discusses by name,
including the running 3-process example of Figures 5b/6b/7b
(``{p2}, {p1, p3}`` plus all supersets, with processes renamed to
``p1 -> 0, p2 -> 1, p3 -> 2``), plus extra members exercising each
region of the Figure 2 classification diagram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .adversary import (
    Adversary,
    from_live_sets,
    k_obstruction_free,
    symmetric_from_sizes,
    t_resilient,
    wait_free,
)


@dataclass(frozen=True)
class CatalogueEntry:
    """A named adversary with the provenance of its definition."""

    name: str
    adversary: Adversary
    description: str


def figure5b_adversary() -> Adversary:
    """The paper's running example: ``{p2}, {p1, p3}`` plus supersets.

    With the renaming ``p1 -> 0, p2 -> 1, p3 -> 2`` the generators are
    ``{1}`` and ``{0, 2}``.  Superset-closed (hence fair), not
    symmetric; ``csize = setcon = 2`` (hitting sets must meet both
    ``{1}`` and ``{0, 2}``).
    """
    return from_live_sets(3, [{1}, {0, 2}]).superset_closure()


def unfair_example() -> Adversary:
    """A 3-process adversary violating Definition 2.

    ``A = {{0, 1}, {2}}`` (exactly these two live sets, no closure).
    Witness: ``P = {0, 2}``, ``Q = {0}``.  No live set inside ``P``
    intersects ``Q`` (``{0, 1}`` is not inside ``P`` and ``{2}`` misses
    ``Q``), so ``setcon(A|P,Q) = 0``, while
    ``min(|Q|, setcon(A|P)) = min(1, 1) = 1`` — the coalition ``Q``
    achieves strictly better agreement than the participation allows,
    which is exactly what fairness forbids.
    """
    return from_live_sets(3, [{0, 1}, {2}])


def build_catalogue(n: int = 3) -> List[CatalogueEntry]:
    """The standard zoo for an ``n``-process system (default 3)."""
    entries: List[CatalogueEntry] = [
        CatalogueEntry(
            "wait-free",
            wait_free(n),
            "all non-empty subsets live (Herlihy-Shavit 1999 regime)",
        ),
        CatalogueEntry(
            "1-resilient",
            t_resilient(n, 1),
            "subsets of size >= n-1 (Saraph-Herlihy-Gafni 2016 regime)",
        ),
        CatalogueEntry(
            "1-obstruction-free",
            k_obstruction_free(n, 1),
            "singletons only (Gafni-He-Kuznetsov-Rieutord 2016 regime)",
        ),
        CatalogueEntry(
            "2-obstruction-free",
            k_obstruction_free(n, 2),
            "subsets of size <= 2; symmetric, not superset-closed",
        ),
        CatalogueEntry(
            "figure-5b",
            figure5b_adversary()
            if n == 3
            else from_live_sets(n, [{1}, {0, 2}]).superset_closure(),
            "the paper's running example {p2},{p1,p3} + supersets",
        ),
        CatalogueEntry(
            "sizes-1-and-n",
            symmetric_from_sizes(n, [1, n]),
            "solo runs or full participation; symmetric, not superset-closed",
        ),
        CatalogueEntry(
            "unfair-example",
            unfair_example() if n == 3 else from_live_sets(n, [set(range(2)), {n - 1}]),
            "a non-fair adversary: a coalition beats the whole participation",
        ),
    ]
    if n > 2:
        entries.append(
            CatalogueEntry(
                f"{n - 1}-resilient(=wait-free)",
                t_resilient(n, n - 1),
                "maximal resilience coincides with wait-freedom",
            )
        )
    return entries


def catalogue_by_name(n: int = 3) -> Dict[str, Adversary]:
    """Name-indexed view of :func:`build_catalogue`."""
    return {entry.name: entry.adversary for entry in build_catalogue(n)}

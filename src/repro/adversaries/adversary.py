"""Adversaries: sets of live sets (Delporte et al., Section 3).

An adversary ``A`` over processes ``Pi = {0, ..., n-1}`` is a collection
of *live sets*; an infinite run is ``A``-compliant when the set of
correct processes in it is a live set.  This module provides the
:class:`Adversary` value type, the restriction operators ``A|P`` and
``A|P,Q`` used throughout the paper, and constructors for the standard
families (wait-free, ``t``-resilient, ``k``-obstruction-free,
superset-closed and symmetric closures).
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator

ProcessSet = FrozenSet[int]


def _as_process_set(processes: Iterable[int]) -> ProcessSet:
    return frozenset(int(p) for p in processes)


class Adversary:
    """An adversary: a finite collection of live sets over ``n`` processes.

    Instances are immutable, hashable, and iterable over their live
    sets.  Live sets must be non-empty subsets of ``range(n)``.
    """

    def __init__(self, n: int, live_sets: Iterable[Iterable[int]]):
        if n <= 0:
            raise ValueError("an adversary needs at least one process")
        self.n = n
        universe = frozenset(range(n))
        cleaned = set()
        for live in live_sets:
            live = _as_process_set(live)
            if not live:
                raise ValueError("live sets must be non-empty")
            if not live <= universe:
                raise ValueError(f"live set {sorted(live)} outside 0..{n - 1}")
            cleaned.add(live)
        self.live_sets: FrozenSet[ProcessSet] = frozenset(cleaned)

    # -- dunder ----------------------------------------------------------
    def __iter__(self) -> Iterator[ProcessSet]:
        return iter(self.live_sets)

    def __len__(self) -> int:
        return len(self.live_sets)

    def __contains__(self, live: Iterable[int]) -> bool:
        return _as_process_set(live) in self.live_sets

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Adversary):
            return NotImplemented
        return self.n == other.n and self.live_sets == other.live_sets

    def __hash__(self) -> int:
        return hash((self.n, self.live_sets))

    def __repr__(self) -> str:
        shown = sorted(sorted(live) for live in self.live_sets)
        return f"Adversary(n={self.n}, live_sets={shown})"

    # -- core structure ---------------------------------------------------
    @property
    def processes(self) -> ProcessSet:
        """The process universe ``Pi``."""
        return frozenset(range(self.n))

    def is_empty(self) -> bool:
        return not self.live_sets

    def restrict(self, participants: Iterable[int]) -> "Adversary":
        """``A|P``: live sets of ``A`` included in ``P``."""
        participants = _as_process_set(participants)
        return Adversary(
            self.n,
            (live for live in self.live_sets if live <= participants),
        )

    def restrict_intersecting(
        self, participants: Iterable[int], targets: Iterable[int]
    ) -> "Adversary":
        """``A|P,Q``: live sets within ``P`` that intersect ``Q`` (Def. 2)."""
        participants = _as_process_set(participants)
        targets = _as_process_set(targets)
        return Adversary(
            self.n,
            (
                live
                for live in self.live_sets
                if live <= participants and live & targets
            ),
        )

    # -- structural predicates ---------------------------------------------
    def is_superset_closed(self) -> bool:
        """Every superset (within ``Pi``) of a live set is live."""
        universe = self.processes
        for live in self.live_sets:
            others = universe - live
            for extra in _all_subsets(others):
                if live | extra not in self.live_sets:
                    return False
        return True

    def is_symmetric(self) -> bool:
        """Membership depends only on the live set's size."""
        sizes = {len(live) for live in self.live_sets}
        for size in sizes:
            expected = sum(1 for _ in combinations(range(self.n), size))
            actual = sum(1 for live in self.live_sets if len(live) == size)
            if actual != expected:
                return False
        return True

    def live_sizes(self) -> FrozenSet[int]:
        """The set of live-set sizes (drives symmetric ``setcon``)."""
        return frozenset(len(live) for live in self.live_sets)

    # -- closures -----------------------------------------------------------
    def superset_closure(self) -> "Adversary":
        """The least superset-closed adversary containing this one."""
        universe = self.processes
        closed = set()
        for live in self.live_sets:
            for extra in _all_subsets(universe - live):
                closed.add(live | extra)
        return Adversary(self.n, closed)

    def symmetric_closure(self) -> "Adversary":
        """The least symmetric adversary containing this one."""
        closed = set()
        for size in self.live_sizes():
            for combo in combinations(range(self.n), size):
                closed.add(frozenset(combo))
        return Adversary(self.n, closed)


def _all_subsets(items: ProcessSet) -> Iterator[ProcessSet]:
    items = sorted(items)
    for size in range(len(items) + 1):
        for combo in combinations(items, size):
            yield frozenset(combo)


# ----------------------------------------------------------------------
# Standard families
# ----------------------------------------------------------------------
def wait_free(n: int) -> Adversary:
    """The wait-free adversary: every non-empty subset is live."""
    return Adversary(n, _non_empty_subsets(n))


def t_resilient(n: int, t: int) -> Adversary:
    """``A_{t-res}``: all subsets of size at least ``n - t``."""
    if not 0 <= t < n:
        raise ValueError("need 0 <= t < n")
    return Adversary(
        n,
        (
            frozenset(combo)
            for size in range(n - t, n + 1)
            for combo in combinations(range(n), size)
        ),
    )


def k_obstruction_free(n: int, k: int) -> Adversary:
    """The ``k``-obstruction-free adversary: subsets of size at most ``k``.

    Symmetric but (for ``k < n``) not superset-closed — the canonical
    example separating the two classes in Figure 2.
    """
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")
    return Adversary(
        n,
        (
            frozenset(combo)
            for size in range(1, k + 1)
            for combo in combinations(range(n), size)
        ),
    )


def symmetric_from_sizes(n: int, sizes: Iterable[int]) -> Adversary:
    """The symmetric adversary whose live sets are those of given sizes."""
    sizes = sorted(set(sizes))
    if any(size < 1 or size > n for size in sizes):
        raise ValueError("sizes must lie in 1..n")
    return Adversary(
        n,
        (
            frozenset(combo)
            for size in sizes
            for combo in combinations(range(n), size)
        ),
    )


def from_live_sets(n: int, live_sets: Iterable[Iterable[int]]) -> Adversary:
    """Explicit constructor (alias of the class constructor)."""
    return Adversary(n, live_sets)


def _non_empty_subsets(n: int) -> Iterator[ProcessSet]:
    for size in range(1, n + 1):
        for combo in combinations(range(n), size):
            yield frozenset(combo)

"""Adversarial models, agreement power, agreement functions, fairness.

Implements Section 3 of the paper: adversaries as sets of live sets,
the ``setcon`` recursion, minimal hitting sets, agreement functions
``alpha(P) = setcon(A|P)`` with their structural laws, and the fairness
criterion (Definition 2) with counterexample extraction.
"""

from .adversary import (
    Adversary,
    ProcessSet,
    from_live_sets,
    k_obstruction_free,
    symmetric_from_sizes,
    t_resilient,
    wait_free,
)
from .setcon import (
    csize,
    hitting_set_census,
    hitting_sets,
    minimal_hitting_set,
    setcon,
    setcon_restricted,
    setcon_superset_closed,
    setcon_symmetric,
)
from .agreement import (
    AgreementFunction,
    agreement_function_of,
    from_callable,
    k_concurrency_alpha,
    t_resilience_alpha,
    wait_free_alpha,
)
from .fairness import (
    FairnessViolation,
    check_superset_closed_implies_fair,
    check_symmetric_implies_fair,
    fairness_counterexample,
    fairness_violations,
    is_fair,
)
from .operations import (
    check_setcon_monotone,
    includes,
    intersection,
    is_permutation_equivalent,
    renamed,
    union,
    union_fairness_counterexample,
)
from .catalogue import (
    CatalogueEntry,
    build_catalogue,
    catalogue_by_name,
    figure5b_adversary,
    unfair_example,
)

__all__ = [
    "Adversary",
    "ProcessSet",
    "from_live_sets",
    "k_obstruction_free",
    "symmetric_from_sizes",
    "t_resilient",
    "wait_free",
    "csize",
    "hitting_set_census",
    "hitting_sets",
    "minimal_hitting_set",
    "setcon",
    "setcon_restricted",
    "setcon_superset_closed",
    "setcon_symmetric",
    "AgreementFunction",
    "agreement_function_of",
    "from_callable",
    "k_concurrency_alpha",
    "t_resilience_alpha",
    "wait_free_alpha",
    "FairnessViolation",
    "check_superset_closed_implies_fair",
    "check_symmetric_implies_fair",
    "fairness_counterexample",
    "fairness_violations",
    "is_fair",
    "check_setcon_monotone",
    "includes",
    "intersection",
    "is_permutation_equivalent",
    "renamed",
    "union",
    "union_fairness_counterexample",
    "CatalogueEntry",
    "build_catalogue",
    "catalogue_by_name",
    "figure5b_adversary",
    "unfair_example",
]

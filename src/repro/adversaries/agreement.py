"""Agreement functions (Kuznetsov & Rieutord, NETYS 2017; Section 3).

The agreement function of a model maps each potential participating set
``P`` to the best level of set consensus solvable when participation is
confined to ``P``.  For an adversarial ``A``-model,
``alpha(P) = setcon(A|P)``.

:class:`AgreementFunction` is the object the whole affine-task
construction is parameterized by: critical simplices, concurrency maps
and ``R_A`` only ever consult ``alpha``, never the adversary itself.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, Iterable, List, Optional

from .adversary import Adversary, ProcessSet
from .setcon import setcon_restricted


class AgreementFunction:
    """A map ``alpha : 2^Pi -> {0, ..., n}`` with the paper's conventions.

    ``alpha(∅) = 0``; construction validates monotonicity and bounded
    growth, the two structural properties Section 3 derives for any
    model's agreement function:

    * monotone: ``P ⊆ P' => alpha(P) <= alpha(P')``;
    * bounded growth: ``alpha(P') <= alpha(P) + |P' \\ P|``.
    """

    def __init__(
        self,
        n: int,
        table: Dict[ProcessSet, int],
        name: str = "alpha",
        validate: bool = True,
    ):
        self.n = n
        self.name = name
        full_table: Dict[ProcessSet, int] = {frozenset(): 0}
        for subset in _all_subsets(n):
            if subset:
                if subset not in table:
                    raise ValueError(f"missing alpha value for {sorted(subset)}")
                full_table[subset] = table[subset]
        self._table = full_table
        if validate:
            problem = self.violation()
            if problem is not None:
                raise ValueError(f"not a valid agreement function: {problem}")

    # -- evaluation -------------------------------------------------------
    def __call__(self, participants: Iterable[int]) -> int:
        return self._table[frozenset(participants)]

    @property
    def processes(self) -> ProcessSet:
        return frozenset(range(self.n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AgreementFunction):
            return NotImplemented
        return self.n == other.n and self._table == other._table

    def __hash__(self) -> int:
        return hash((self.n, tuple(sorted(self._table.items(), key=repr))))

    def __repr__(self) -> str:
        return f"AgreementFunction(n={self.n}, name={self.name!r})"

    def table(self) -> Dict[ProcessSet, int]:
        """A copy of the full value table (including the empty set)."""
        return dict(self._table)

    # -- structural properties ---------------------------------------------
    def violation(self) -> Optional[str]:
        """A human-readable witness that a structural law fails, or None."""
        subsets = sorted(self._table, key=lambda s: (len(s), sorted(s)))
        for small in subsets:
            for big in subsets:
                if small < big:
                    a_small, a_big = self._table[small], self._table[big]
                    if a_small > a_big:
                        return (
                            f"monotonicity: alpha({sorted(small)})={a_small} > "
                            f"alpha({sorted(big)})={a_big}"
                        )
                    if a_big > a_small + len(big - small):
                        return (
                            f"bounded growth: alpha({sorted(big)})={a_big} > "
                            f"alpha({sorted(small)})={a_small} + {len(big - small)}"
                        )
        for subset in subsets:
            value = self._table[subset]
            if not 0 <= value <= len(subset):
                return f"range: alpha({sorted(subset)})={value} not in 0..|P|"
        return None

    def is_regular(self) -> bool:
        """Regularity: ``alpha(P) >= alpha(P \\ Q) >= alpha(P) - |Q|``.

        This is the consequence of fairness used by Lemma 3 and Lemma 5;
        for table-defined functions it is equivalent to monotonicity +
        bounded growth, so it holds by construction — the method exists
        as an executable statement of the law.
        """
        for participants in _all_subsets(self.n):
            for removed in _all_subsets_of(participants):
                remaining = participants - removed
                if not (
                    self._table[participants]
                    >= self._table[remaining]
                    >= self._table[participants] - len(removed)
                ):
                    return False
        return True

    # -- views used by the affine construction ------------------------------
    def positive_participations(self) -> List[ProcessSet]:
        """All ``P`` with ``alpha(P) >= 1`` (where the α-model has runs)."""
        return [
            subset
            for subset in _all_subsets(self.n)
            if subset and self._table[subset] >= 1
        ]


def _all_subsets(n: int) -> List[ProcessSet]:
    result: List[ProcessSet] = []
    universe = list(range(n))
    for size in range(n + 1):
        for combo in combinations(universe, size):
            result.append(frozenset(combo))
    return result


def _all_subsets_of(items: ProcessSet) -> List[ProcessSet]:
    items = sorted(items)
    result: List[ProcessSet] = []
    for size in range(len(items) + 1):
        for combo in combinations(items, size):
            result.append(frozenset(combo))
    return result


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def agreement_function_of(adversary: Adversary, name: Optional[str] = None) -> AgreementFunction:
    """``alpha(P) = setcon(A|P)`` — the agreement function of an adversary."""
    table = {
        subset: setcon_restricted(adversary, subset)
        for subset in _all_subsets(adversary.n)
        if subset
    }
    return AgreementFunction(
        adversary.n, table, name=name or f"alpha[{adversary!r}]"
    )


def from_callable(
    n: int, fn: Callable[[ProcessSet], int], name: str = "alpha"
) -> AgreementFunction:
    """Tabulate an agreement function from a formula."""
    table = {
        subset: int(fn(subset)) for subset in _all_subsets(n) if subset
    }
    return AgreementFunction(n, table, name=name)


def k_concurrency_alpha(n: int, k: int) -> AgreementFunction:
    """``alpha(P) = min(|P|, k)`` — k-obstruction-freedom / k-concurrency."""
    return from_callable(n, lambda P: min(len(P), k), name=f"{k}-OF")


def t_resilience_alpha(n: int, t: int) -> AgreementFunction:
    """``alpha(P) = |P| - (n - t) + 1`` when ``|P| >= n - t``, else 0."""
    return from_callable(
        n,
        lambda P: max(0, len(P) - (n - t) + 1),
        name=f"{t}-res",
    )


def wait_free_alpha(n: int) -> AgreementFunction:
    """``alpha(P) = |P|`` — the wait-free agreement function."""
    return from_callable(n, len, name="wait-free")

"""Commit–adopt: the classic wait-free graded-agreement substrate.

Not a contribution of the paper, but the standard building block the
surrounding literature (BG simulation, safe agreement, the paper's
reference [13]) leans on — included so the runtime carries the full
protocol toolbox of the area.

Two rounds of write/scan on atomic-snapshot memory:

1. write the proposal; scan; if all proposals seen agree, move to
   round 2 with a *committable* flag, else keep the (deterministically
   chosen) smallest seen proposal;
2. write the round-1 result; scan; **commit** if everything seen in
   round 2 is committable with the same value; otherwise **adopt** any
   committable value seen (or the own candidate).

Guarantees (validated by the fuzz tests):

* *agreement-on-commit*: if someone commits ``v``, everyone commits or
  adopts ``v``;
* *convergence*: if all inputs equal ``v``, everyone commits ``v``;
* *validity*: outputs are proposed values;
* wait-freedom: two scans, no waiting.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, List, Tuple

from ..runtime.memory import SharedMemory
from ..runtime.scheduler import Scheduler

Grade = str  # "commit" | "adopt"


def commit_adopt_protocol(
    pid: int, n: int, memory: SharedMemory, proposal: Any
) -> Generator:
    """Run one commit–adopt instance; returns ``(grade, value)``."""
    round1 = memory.snapshot_array("CA1")
    round2 = memory.snapshot_array("CA2")

    yield ("update", round1, proposal)
    seen1 = yield ("scan", round1)
    values1 = {cell for cell in seen1 if cell is not None}
    committable = len(values1) == 1
    candidate = min(values1, key=repr)

    yield ("update", round2, (committable, candidate))
    seen2 = yield ("scan", round2)
    pairs = [cell for cell in seen2 if cell is not None]
    committable_values = {
        value for flag, value in pairs if flag
    }
    if committable_values:
        value = min(committable_values, key=repr)
        if all(flag and v == value for flag, v in pairs):
            return ("commit", value)
        return ("adopt", value)
    return ("adopt", candidate)


def run_commit_adopt(
    proposals: Dict[int, Any], seed: int = 0
) -> Dict[int, Tuple[Grade, Any]]:
    """Execute one instance under a seeded random interleaving."""
    n = len(proposals)
    rng = random.Random(seed)
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {
            pid: commit_adopt_protocol(pid, n, memory, proposals[pid])
            for pid in proposals
        }
    )
    while len(scheduler.outputs) < n:
        alive = [pid for pid in proposals if pid not in scheduler.outputs]
        scheduler.step(rng.choice(alive))
    return dict(scheduler.outputs)


def check_commit_adopt_outputs(
    proposals: Dict[int, Any], outputs: Dict[int, Tuple[Grade, Any]]
) -> None:
    """Assert the three commit–adopt guarantees on one execution."""
    proposed = set(proposals.values())
    for grade, value in outputs.values():
        assert grade in ("commit", "adopt")
        assert value in proposed, "validity violated"
    committed = {
        value for grade, value in outputs.values() if grade == "commit"
    }
    assert len(committed) <= 1, "two different values committed"
    if committed:
        (value,) = committed
        assert all(
            out_value == value for _, out_value in outputs.values()
        ), "agreement-on-commit violated"
    if len(proposed) == 1:
        (value,) = proposed
        assert all(
            output == ("commit", value) for output in outputs.values()
        ), "convergence violated"


def fuzz_commit_adopt(
    n: int, runs: int, seed: int = 0
) -> List[Dict[int, Tuple[Grade, Any]]]:
    """Randomized executions, all three guarantees asserted."""
    rng = random.Random(seed)
    results = []
    for _ in range(runs):
        distinct = rng.randint(1, n)
        pool = [f"v{i}" for i in range(distinct)]
        proposals = {pid: rng.choice(pool) for pid in range(n)}
        outputs = run_commit_adopt(proposals, seed=rng.randint(0, 2**31))
        check_commit_adopt_outputs(proposals, outputs)
        results.append(outputs)
    return results

"""α-adaptive leader election in ``R_A``: the ``µ_Q`` map (Section 6.2).

Given an α-adaptive set-consensus instance, let ``Q`` be the processes
that may participate in it and have not terminated.  Each vertex
``v ∈ R_A`` (with ``chi(v) ∈ Q``) elects a leader in two stages:

1. select a first-round view:

   * ``delta_Q`` — if the process observed a critical simplex whose
     view intersects ``Q``: the smallest such critical ``View1``;
   * ``gamma_Q`` — otherwise: the smallest observed ``View1``
     intersecting ``Q``;

2. ``min_Q`` — the smallest process id in the selected view ∩ ``Q``.

The three properties proved in the paper are implemented as exhaustive
checkers (experiment E10):

* Property 9 (validity): the leader is an observed member of ``Q``;
* Property 10 (agreement): within any simplex ``theta`` of a facet of
  ``R_A`` colored inside ``Q``, at most
  ``alpha(chi(carrier(theta, s)))`` distinct leaders are elected;
* Property 12 (robustness): only ``Q ∩ carrier(v, s)`` matters.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional

from ..adversaries.agreement import AgreementFunction
from ..core.affine import AffineTask
from ..core.critical import CriticalStructure
from ..topology.chromatic import ChrVertex, ProcessId
from ..topology.subdivision import carrier_in_s

ProcessSet = FrozenSet[ProcessId]


class MuMap:
    """``µ_Q`` for a fixed agreement function, with memoized structure."""

    def __init__(self, alpha: AgreementFunction):
        self.alpha = alpha
        self.structure = CriticalStructure(alpha)

    # -- stage 1 ------------------------------------------------------------
    def critical_views(self, vertex: ChrVertex) -> List[ProcessSet]:
        """``View1``s of critical simplices observed by ``vertex``."""
        rho = vertex.carrier
        return sorted(
            {
                frozenset(next(iter(theta)).carrier)
                for theta in self.structure.cs(rho)
            },
            key=lambda view: (len(view), sorted(view)),
        )

    def observed_views(self, vertex: ChrVertex) -> List[ProcessSet]:
        """All ``View1``s visible to ``vertex`` (carriers in its View2)."""
        return sorted(
            {frozenset(w.carrier) for w in vertex.carrier},
            key=lambda view: (len(view), sorted(view)),
        )

    def delta_q(self, vertex: ChrVertex, q: ProcessSet) -> Optional[ProcessSet]:
        """Smallest critical ``View1`` intersecting ``Q`` (or ``None``)."""
        for view in self.critical_views(vertex):
            if view & q:
                return view
        return None

    def gamma_q(self, vertex: ChrVertex, q: ProcessSet) -> Optional[ProcessSet]:
        """Smallest observed ``View1`` intersecting ``Q`` (or ``None``)."""
        for view in self.observed_views(vertex):
            if view & q:
                return view
        return None

    # -- stage 2 ------------------------------------------------------------
    def __call__(self, vertex: ChrVertex, q: Iterable[ProcessId]) -> ProcessId:
        """``µ_Q(v)``: the elected leader.

        Defined whenever some observed view intersects ``Q`` — in
        particular whenever ``chi(v) ∈ Q`` (self-inclusion).
        """
        q = frozenset(q)
        csv = self.structure.csv(vertex.carrier)
        if csv & q:
            view = self.delta_q(vertex, q)
        else:
            view = self.gamma_q(vertex, q)
        if view is None:
            raise ValueError(
                f"µ_Q undefined: no observed view intersects Q={sorted(q)}"
            )
        return min(view & q)


# ----------------------------------------------------------------------
# Executable properties (experiment E10)
# ----------------------------------------------------------------------
def check_validity(
    mu: MuMap, task: AffineTask, q: ProcessSet
) -> bool:
    """Property 9 over every vertex of ``R_A`` colored in ``Q``."""
    for vertex in task.complex.vertices:
        if vertex.color not in q:
            continue
        leader = mu(vertex, q)
        witnessed = carrier_in_s([vertex])
        if leader not in witnessed or leader not in q:
            return False
    return True


def check_agreement(
    mu: MuMap, task: AffineTask, q: ProcessSet
) -> bool:
    """Property 10 over every facet of ``R_A`` and every ``theta ⊆ Q``."""
    for facet in task.complex.facets:
        if len(facet) != task.n:
            continue
        eligible = [v for v in facet if v.color in q]
        for size in range(1, len(eligible) + 1):
            for theta in combinations(eligible, size):
                leaders = {mu(v, q) for v in theta}
                bound = mu.alpha(carrier_in_s(theta))
                if len(leaders) > bound:
                    return False
    return True


def check_robustness(
    mu: MuMap, task: AffineTask, q: ProcessSet
) -> bool:
    """Property 12 over every vertex of ``R_A`` colored in ``Q``."""
    for vertex in task.complex.vertices:
        if vertex.color not in q:
            continue
        local = carrier_in_s([vertex]) & q
        if mu(vertex, q) != mu(vertex, local):
            return False
    return True


def all_process_subsets(n: int) -> List[ProcessSet]:
    """Non-empty subsets of ``0..n-1`` — the candidate ``Q`` sets."""
    return [
        frozenset(combo)
        for size in range(1, n + 1)
        for combo in combinations(range(n), size)
    ]


def verify_mu_properties(
    alpha: AgreementFunction, task: AffineTask
) -> dict:
    """Exhaustively check Properties 9/10/12 for every non-empty ``Q``."""
    mu = MuMap(alpha)
    report = {"validity": True, "agreement": True, "robustness": True}
    for q in all_process_subsets(alpha.n):
        report["validity"] &= check_validity(mu, task, q)
        report["agreement"] &= check_agreement(mu, task, q)
        report["robustness"] &= check_robustness(mu, task, q)
    return report

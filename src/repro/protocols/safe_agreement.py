"""Safe agreement: the BG-simulation building block.

The classic two-level construction (Borowsky–Gafni): a proposer writes
its value at level 1, snapshots, and raises itself to level 2 unless it
saw somebody already there (then it withdraws to level 0).  A reader
waits until no process is stuck at level 1 and returns the value of the
smallest-id level-2 process it sees.

Guarantees (fuzz-validated):

* *validity* — decisions are proposed values;
* *agreement* — all readers that return after every participant has
  resolved its level return the same value;
* *non-blocking progress* — if every participant resolves (no crash in
  the level-1 window), readers terminate;
* the known *blocking* behavior — a crash inside the level-1 window can
  block readers forever — is detected and tested explicitly: it is the
  reason BG simulation trades one simulator per blocked agreement.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, Optional

from ..runtime.memory import SharedMemory
from ..runtime.scheduler import LivenessViolation, Scheduler


def safe_agreement_propose(
    pid: int, n: int, memory: SharedMemory, value: Any
) -> Generator:
    """The propose phase; returns the level reached (0 or 2)."""
    cells = memory.snapshot_array("SA")  # cell: (level, value)
    yield ("update", cells, (1, value))
    content = yield ("scan", cells)
    someone_at_two = any(
        cell is not None and cell[0] == 2 for cell in content
    )
    level = 0 if someone_at_two else 2
    yield ("update", cells, (level, value))
    return level


def safe_agreement_read(
    pid: int, n: int, memory: SharedMemory
) -> Generator:
    """The read phase; waits out level 1 and returns the agreed value."""
    cells = memory.snapshot_array("SA")
    while True:
        content = yield ("scan", cells)
        if any(cell is not None and cell[0] == 1 for cell in content):
            continue  # somebody is still in the unsafe window
        candidates = {
            index: cell[1]
            for index, cell in enumerate(content)
            if cell is not None and cell[0] == 2
        }
        if candidates:
            return candidates[min(candidates)]
        # No level-2 process yet: wait for one to appear.


def propose_then_read(
    pid: int, n: int, memory: SharedMemory, value: Any
) -> Generator:
    """The standard usage: propose, then read."""
    yield from safe_agreement_propose(pid, n, memory, value)
    decision = yield from safe_agreement_read(pid, n, memory)
    return decision


def run_safe_agreement(
    proposals: Dict[int, Any],
    seed: int = 0,
    crash_in_window: Optional[int] = None,
    max_steps: int = 10_000,
) -> Dict[int, Any]:
    """Run one instance under a random schedule.

    ``crash_in_window`` crashes that process right after its level-1
    write — the adversarial pattern that can block readers.  Raises
    :class:`LivenessViolation` when undecided processes stop making
    progress within the budget (expected exactly in the blocked case).
    """
    n = max(proposals) + 1
    rng = random.Random(seed)
    memory = SharedMemory(n)
    scheduler = Scheduler(
        {
            pid: propose_then_read(pid, n, memory, proposals[pid])
            for pid in proposals
        }
    )
    steps_of = {pid: 0 for pid in proposals}
    for _ in range(max_steps):
        alive = [
            pid
            for pid in proposals
            if pid not in scheduler.outputs
            and not (pid == crash_in_window and steps_of[pid] >= 1)
        ]
        if not alive:
            break
        pid = rng.choice(alive)
        scheduler.step(pid)
        steps_of[pid] += 1
    expected = set(proposals) - (
        {crash_in_window} if crash_in_window is not None else set()
    )
    if expected - set(scheduler.outputs):
        raise LivenessViolation(
            f"undecided: {sorted(expected - set(scheduler.outputs))}"
        )
    return dict(scheduler.outputs)


def fuzz_safe_agreement(n: int, runs: int, seed: int = 0) -> None:
    """Crash-free executions: validity + agreement, asserted."""
    rng = random.Random(seed)
    for _ in range(runs):
        proposals = {pid: f"v{rng.randrange(n)}" for pid in range(n)}
        outputs = run_safe_agreement(
            proposals, seed=rng.randint(0, 2**31)
        )
        values = set(outputs.values())
        assert len(values) == 1, f"agreement violated: {outputs}"
        assert values <= set(proposals.values()), "validity violated"

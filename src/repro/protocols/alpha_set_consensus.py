"""α-adaptive set consensus *in the α-model* (Definition 4, Theorem 2).

The paper's equivalence chain runs A-model ⇔ α-model ⇔ α-set-consensus
model.  This module operationalizes the constructive direction: an
α-adaptive set-consensus object built inside the α-model by composing
the paper's own tools —

1. run **Algorithm 1** (which the α-model supports) to place every
   process on a vertex of ``R_A``, with proposals carried through the
   immediate snapshots;
2. decide the proposal of the leader elected by **µ_Q** on that vertex
   (with ``Q = Π``).

Correctness is inherited from the two theorems: the decided vertices
form a simplex of ``R_A`` (Theorem 7), on which µ elects at most
``alpha(chi(carrier))  <= alpha(P)`` distinct leaders (Property 10),
each a witnessed participant (Property 9) — so decisions are valid
proposals and at most ``alpha(P)`` distinct.  The harness fuzzes
exactly these properties.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator, List

from ..adversaries.agreement import AgreementFunction
from ..runtime.algorithm1 import algorithm1_protocol
from ..runtime.memory import SharedMemory
from ..runtime.scheduler import (
    ExecutionPlan,
    RunResult,
    random_alpha_model_plan,
    run_plan,
)
from ..topology.chromatic import ChrVertex
from .mu_map import MuMap


def alpha_set_consensus_protocol(
    pid: int,
    n: int,
    memory: SharedMemory,
    alpha: AgreementFunction,
    proposal: Any,
    mu: MuMap,
) -> Generator:
    """Propose ``proposal``; decide the elected leader's proposal."""
    proposals = memory.snapshot_array("Proposals")
    yield ("update", proposals, proposal)

    view1, view2 = yield from algorithm1_protocol(pid, n, memory, alpha)
    vertex = ChrVertex(
        pid,
        frozenset(
            ChrVertex(j, frozenset(view1_j)) for j, view1_j in view2.items()
        ),
    )
    leader = mu(vertex, frozenset(range(n)))
    known = yield ("read", proposals, leader)
    return {"leader": leader, "decision": known, "vertex": vertex}


@dataclass
class AlphaSetConsensusOutcome:
    """One validated α-model set-consensus execution."""

    plan: ExecutionPlan
    result: RunResult
    decisions: Dict[int, Any]
    leaders: Dict[int, int]

    def distinct_decisions(self) -> int:
        return len(set(self.decisions.values()))


def run_alpha_set_consensus(
    alpha: AgreementFunction,
    plan: ExecutionPlan,
    proposals: Dict[int, Any],
    mu: MuMap | None = None,
    max_steps: int = 200_000,
) -> AlphaSetConsensusOutcome:
    """Execute the object under one α-model plan."""
    n = alpha.n
    mu = mu or MuMap(alpha)

    def factory(pid: int, memory: SharedMemory):
        return alpha_set_consensus_protocol(
            pid, n, memory, alpha, proposals[pid], mu
        )

    result = run_plan(factory, n, plan, max_steps=max_steps)
    decisions = {
        pid: output["decision"] for pid, output in result.outputs.items()
    }
    leaders = {
        pid: output["leader"] for pid, output in result.outputs.items()
    }
    return AlphaSetConsensusOutcome(plan, result, decisions, leaders)


def fuzz_alpha_set_consensus(
    alpha: AgreementFunction,
    runs: int,
    seed: int = 0,
) -> List[AlphaSetConsensusOutcome]:
    """Theorem-2 harness: validity + α-agreement + termination.

    Raises ``AssertionError`` on any violation.
    """
    rng = random.Random(seed)
    mu = MuMap(alpha)
    outcomes = []
    for index in range(runs):
        plan = random_alpha_model_plan(alpha, rng)
        proposals = {
            pid: f"p{pid}-r{index}" for pid in range(alpha.n)
        }
        outcome = run_alpha_set_consensus(alpha, plan, proposals, mu)
        decided_values = set(outcome.decisions.values())
        proposed = {
            proposals[pid] for pid in plan.participants
        }
        if not decided_values <= proposed:
            raise AssertionError(
                f"validity violated in run {index}: {decided_values}"
            )
        bound = alpha(plan.participants)
        if len(decided_values) > bound:
            raise AssertionError(
                f"alpha-agreement violated in run {index}: "
                f"{len(decided_values)} > {bound}"
            )
        outcomes.append(outcome)
    return outcomes

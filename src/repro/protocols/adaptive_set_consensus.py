"""α-adaptive set consensus inside the affine model ``R*_A`` (Section 6).

The protocol iterates the affine task.  Every iteration each process
submits ``(proposal, estimate, decision)``; from the received views it

1. adopts an estimate: a decided value if one is visible (decided
   processes are terminated and their value is final), otherwise the
   current estimate/proposal of the leader elected by ``µ_Q`` among the
   active processes it can see (Property 12 makes local knowledge of
   ``Q`` sufficient);
2. commits when every process it witnessed already carried an estimate
   in the received data — the paper's commit rule: all involved,
   non-terminated, observed processes possess a decision estimate.

Theorem-level guarantees exercised by the harness (experiment E13):

* validity — decisions are proposals of participants;
* α-agreement — distinct decisions never exceed ``alpha`` of the
  witnessed participation;
* termination — every process decides in finitely many iterations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..adversaries.agreement import AgreementFunction
from ..core.affine import AffineTask
from ..runtime.affine_executor import (
    AffineModelExecutor,
    FacetChooser,
    IterationView,
)
from .mu_map import MuMap


@dataclass
class ProcessState:
    """Per-process protocol state across iterations."""

    pid: int
    proposal: Any
    estimate: Optional[Any] = None
    decision: Optional[Any] = None

    def submitted(self) -> tuple:
        return (self.proposal, self.estimate, self.decision)


@dataclass
class ConsensusOutcome:
    """Result of one ``R*_A`` set-consensus execution."""

    decisions: Dict[int, Any]
    iterations: int
    history_length: int

    def distinct_decisions(self) -> int:
        return len(set(self.decisions.values()))


class AdaptiveSetConsensus:
    """Runs the iterated protocol over an affine-model executor."""

    def __init__(
        self,
        alpha: AgreementFunction,
        task: AffineTask,
        chooser: Optional[FacetChooser] = None,
        seed: int = 0,
    ):
        self.alpha = alpha
        self.task = task
        self.mu = MuMap(alpha)
        self.executor = AffineModelExecutor(task, chooser=chooser, seed=seed)

    def run(
        self,
        proposals: Dict[int, Any],
        max_iterations: int = 50,
    ) -> ConsensusOutcome:
        """Iterate until every process decides (or fail loudly)."""
        n = self.task.n
        if set(proposals) != set(range(n)):
            raise ValueError("need one proposal per process")
        states = {
            pid: ProcessState(pid, proposals[pid]) for pid in range(n)
        }
        for iteration in range(1, max_iterations + 1):
            submitted = {
                pid: state.submitted() for pid, state in states.items()
            }
            views = self.executor.run_iteration(submitted)
            for pid, view in views.items():
                self._local_step(states[pid], view)
            if all(state.decision is not None for state in states.values()):
                return ConsensusOutcome(
                    decisions={
                        pid: state.decision for pid, state in states.items()
                    },
                    iterations=iteration,
                    history_length=len(self.executor.history),
                )
        raise AssertionError(
            f"no termination within {max_iterations} iterations"
        )

    # ------------------------------------------------------------------
    def _local_step(self, state: ProcessState, view: IterationView) -> None:
        if state.decision is not None:
            return
        witnessed_states: Dict[int, tuple] = {}
        for block in view.view2_states.values():
            witnessed_states.update(block)
        witnessed_states.update(view.view1_states)

        decided_values = {
            data[2]
            for data in witnessed_states.values()
            if data[2] is not None
        }
        if decided_values:
            # Adoption from terminated processes: their value is final.
            state.estimate = min(decided_values, key=repr)
        else:
            active = frozenset(
                pid
                for pid, data in witnessed_states.items()
                if data[2] is None
            )
            leader = self.mu(view.vertex, active)
            proposal, estimate, _ = witnessed_states[leader]
            state.estimate = estimate if estimate is not None else proposal

        everyone_has_estimate = all(
            data[1] is not None or data[2] is not None
            for data in witnessed_states.values()
        )
        if everyone_has_estimate:
            state.decision = state.estimate


def exhaustive_adaptive_set_consensus(
    alpha: AgreementFunction,
    task: AffineTask,
    proposals: Optional[Dict[int, Any]] = None,
    max_iterations: int = 6,
) -> Dict[int, int]:
    """Exhaustive E13: run the protocol over *every* facet sequence.

    The protocol decides within two iterations, so enumerating all
    ordered facet pairs (with the sequence cycling afterwards) covers
    every reachable 2-iteration behavior of ``R*_A``.  Returns the
    histogram of distinct-decision counts; raises on any violation of
    validity or the α bound.
    """
    from ..runtime.affine_executor import scripted_chooser

    n = task.n
    proposals = proposals or {pid: f"v{pid}" for pid in range(n)}
    bound = alpha(frozenset(range(n)))
    facets = sorted(task.complex.facets, key=repr)
    histogram: Dict[int, int] = {}
    for first in facets:
        for second in facets:
            protocol = AdaptiveSetConsensus(
                alpha, task, chooser=scripted_chooser([first, second])
            )
            outcome = protocol.run(dict(proposals), max_iterations)
            values = set(outcome.decisions.values())
            if not values <= set(proposals.values()):
                raise AssertionError(
                    f"validity violated on facets ({first}, {second})"
                )
            if len(values) > bound:
                raise AssertionError(
                    f"alpha-agreement violated on facets "
                    f"({first}, {second}): {len(values)} > {bound}"
                )
            distinct = outcome.distinct_decisions()
            histogram[distinct] = histogram.get(distinct, 0) + 1
    return histogram


def fuzz_adaptive_set_consensus(
    alpha: AgreementFunction,
    task: AffineTask,
    runs: int,
    seed: int = 0,
) -> List[ConsensusOutcome]:
    """Experiment E13: random ``R*_A`` executions, all three properties.

    Raises ``AssertionError`` on any violation.
    """
    rng = random.Random(seed)
    n = task.n
    outcomes = []
    for index in range(runs):
        proposals = {pid: f"v{rng.randrange(n * 2)}" for pid in range(n)}
        protocol = AdaptiveSetConsensus(
            alpha, task, seed=rng.randint(0, 2**31)
        )
        outcome = protocol.run(proposals)
        values = set(outcome.decisions.values())
        if not values <= set(proposals.values()):
            raise AssertionError(f"validity violated in run {index}")
        bound = alpha(frozenset(range(n)))
        if len(values) > bound:
            raise AssertionError(
                f"alpha-agreement violated in run {index}: "
                f"{len(values)} > {bound}"
            )
        outcomes.append(outcome)
    return outcomes

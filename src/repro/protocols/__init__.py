"""Section-6 agreement machinery: ``µ_Q`` and adaptive set consensus."""

from .mu_map import (
    MuMap,
    all_process_subsets,
    check_agreement,
    check_robustness,
    check_validity,
    verify_mu_properties,
)
from .adaptive_set_consensus import (
    AdaptiveSetConsensus,
    ConsensusOutcome,
    ProcessState,
    fuzz_adaptive_set_consensus,
)
from .alpha_set_consensus import (
    AlphaSetConsensusOutcome,
    alpha_set_consensus_protocol,
    fuzz_alpha_set_consensus,
    run_alpha_set_consensus,
)
from .commit_adopt import (
    check_commit_adopt_outputs,
    commit_adopt_protocol,
    fuzz_commit_adopt,
    run_commit_adopt,
)
from .safe_agreement import (
    fuzz_safe_agreement,
    propose_then_read,
    run_safe_agreement,
    safe_agreement_propose,
    safe_agreement_read,
)

__all__ = [
    "AlphaSetConsensusOutcome",
    "alpha_set_consensus_protocol",
    "fuzz_alpha_set_consensus",
    "run_alpha_set_consensus",
    "check_commit_adopt_outputs",
    "commit_adopt_protocol",
    "fuzz_commit_adopt",
    "run_commit_adopt",
    "fuzz_safe_agreement",
    "propose_then_read",
    "run_safe_agreement",
    "safe_agreement_propose",
    "safe_agreement_read",
    "MuMap",
    "all_process_subsets",
    "check_agreement",
    "check_robustness",
    "check_validity",
    "verify_mu_properties",
    "AdaptiveSetConsensus",
    "ConsensusOutcome",
    "ProcessState",
    "fuzz_adaptive_set_consensus",
]

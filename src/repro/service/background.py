"""Run a :class:`ServiceServer` on a background thread.

Tests, benchmarks and examples need a real TCP server without giving up
the calling thread.  :class:`BackgroundServer` runs the server's event
loop on a daemon thread, exposes the bound address once the listener is
up, and drains gracefully on exit::

    with BackgroundServer(Engine(cache=MemCache())) as server:
        with ServiceClient(port=server.port) as client:
            client.ping()

This is a harness, not a deployment mode — production runs
``python -m repro serve`` as the process's main (and only) loop.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from ..engine.jobs import Engine
from .server import ServiceServer


class BackgroundServer:
    """A service server with its own event loop on a daemon thread."""

    def __init__(self, engine: Engine, *, start_timeout: float = 30.0, **kwargs):
        kwargs.setdefault("port", 0)  # ephemeral unless the caller pins one
        self._engine = engine
        self._kwargs = kwargs
        self._start_timeout = start_timeout
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.server: Optional[ServiceServer] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        server = ServiceServer(self._engine, **self._kwargs)
        await server.start()
        self.server = server
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await server.wait_stopped()

    # ------------------------------------------------------------------
    def start(self) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(self._start_timeout):
            raise TimeoutError("service server did not start in time")
        if self._failure is not None:
            raise RuntimeError("service server failed to start") from self._failure
        return self

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        """Request a graceful drain and join the server thread."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_drain)
        self._thread.join(timeout=self._start_timeout)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

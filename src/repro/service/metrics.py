"""Live service metrics: counters and log-bucketed latency histograms.

A single :class:`Metrics` registry per server, updated from the event
loop and the batcher's dispatch thread (every mutation takes the
registry lock).  Two read-out forms:

* :meth:`Metrics.snapshot` — a JSON-ready dict, returned by the
  protocol's ``stats`` op;
* :meth:`Metrics.render_text` — a plain-text dump (one
  ``repro_service_<name> <value>`` line each, Prometheus-style),
  returned by the ``metrics`` op and the HTTP shim's ``GET /metrics``.

Histogram quantiles are read from the bucket boundaries (the value
reported for p50/p99 is the upper bound of the containing bucket), so
they are estimates with bounded relative error — exact mean/max are
tracked alongside.

Snapshots are torn-read safe: one lock acquisition copies every raw
counter and histogram state, and the quantile math and text formatting
happen *outside* the lock — a scrape can never stall the hot
``observe()`` path or mix states from different moments.  When tracing
(:mod:`repro.obs`) is enabled, the tracer's span counters ride in the
same snapshot and ``render_text`` appends the ``repro_trace_*`` lines.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Sequence

from .. import obs

#: Latency bucket upper bounds (seconds): 100µs .. ~105s, doubling.
BUCKET_BOUNDS = tuple(0.0001 * 2**i for i in range(21))


def format_histogram(
    counts: Sequence[int], count: int, total: float, maximum: float
) -> Dict[str, Any]:
    """The JSON-ready view of raw histogram state (pure function).

    Operates on copied state so callers can snapshot under a lock and
    format outside it; :meth:`LatencyHistogram.snapshot` delegates here.
    """

    def quantile(q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0
        for index, bucket_count in enumerate(counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(BUCKET_BOUNDS):
                    # The bucket's upper bound, clamped to the observed
                    # max so quantiles never exceed a real measurement.
                    return min(BUCKET_BOUNDS[index], maximum)
                return maximum
        return maximum

    mean = total / count if count else 0.0
    return {
        "count": count,
        "mean_s": round(mean, 6),
        "p50_s": round(quantile(0.50), 6),
        "p99_s": round(quantile(0.99), 6),
        "max_s": round(maximum, 6),
    }


class LatencyHistogram:
    """Fixed log-spaced buckets plus exact count/sum/max."""

    def __init__(self):
        self.counts: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        index = 0
        while index < len(BUCKET_BOUNDS) and seconds > BUCKET_BOUNDS[index]:
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def quantile(self, q: float) -> float:
        """The bucket upper bound containing the q-quantile (0 if empty)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if index < len(BUCKET_BOUNDS):
                    # The bucket's upper bound, clamped to the observed
                    # max so quantiles never exceed a real measurement.
                    return min(BUCKET_BOUNDS[index], self.max)
                return self.max
        return self.max

    def raw(self):
        """Copied raw state: ``(counts, count, total, max)``."""
        return (list(self.counts), self.count, self.total, self.max)

    def snapshot(self) -> Dict[str, Any]:
        return format_histogram(*self.raw())


class Metrics:
    """A locked registry of named counters and latency histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.record(seconds)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def uptime(self) -> float:
        return time.monotonic() - self._started

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        # One lock acquisition copies all raw state; bucket walks and
        # quantile math happen on the copies, outside the lock.  Every
        # counter and histogram in one snapshot therefore comes from
        # the same instant — a scrape can never observe a request in
        # some counters but not others, and never recomputes quantiles
        # against buckets that mutate mid-walk.
        with self._lock:
            counters = dict(self._counters)
            raw = {
                name: histogram.raw()
                for name, histogram in self._histograms.items()
            }
        snap: Dict[str, Any] = {
            "uptime_s": round(self.uptime(), 3),
            "counters": dict(sorted(counters.items())),
            "latency": {
                name: format_histogram(*raw[name]) for name in sorted(raw)
            },
        }
        tracer = obs.get_tracer()
        if tracer is not None:
            snap["trace"] = tracer.stats()
        return snap

    def render_text(self) -> str:
        """Plain-text dump: one ``repro_service_<name> <value>`` per line.

        When tracing is enabled the ``repro_trace_*`` lines are appended
        from the *same* snapshot, so service and trace counters in one
        scrape are mutually consistent.
        """
        snap = self.snapshot()
        lines = [f"repro_service_uptime_seconds {snap['uptime_s']}"]
        for name, value in snap["counters"].items():
            lines.append(f"repro_service_{name} {value}")
        for name, histogram in snap["latency"].items():
            for field, value in histogram.items():
                lines.append(f"repro_service_{name}_{field} {value}")
        text = "\n".join(lines) + "\n"
        return text + obs.render_trace_text(snap.get("trace"))

"""Service clients: a blocking socket client and an asyncio client.

Both speak protocol v1 and share the calling convention of the engine's
typed batch API: payloads are ordinary Python values, canonically
serialized client-side (:mod:`repro.engine.serialize`), and a
successful query's value is deserialized back — so
``client.solve(L, T)`` returns exactly what
``Engine().solve_many([(L, T, None)])[0]`` returns.

Protocol-level failures raise :class:`ServiceError` carrying the typed
wire code — except ``budget_exceeded``, which is translated back into
the engine's own :class:`~repro.tasks.solvability.SearchBudgetExceeded`
so callers can keep one error-handling path for local and remote
engines.

Transient conditions — ``overloaded`` and ``shutting_down`` — are
retried once with jittered backoff on a *fresh* connection before the
error surfaces: both codes mean "this server, right now", so an
immediate re-ask is exactly the thundering herd that caused them, and
a brief randomized pause plus a reconnect (the draining server may
have closed the socket; a fleet router may have re-hashed the shard
away) usually lands the retry.  Pass ``retries=0`` to observe the raw
first answer.

Both clients accept optional ``tenant`` / ``priority`` labels, sent as
the protocol's additive admission fields on every query.
"""

from __future__ import annotations

import asyncio
import json
import random
import socket
import time
from typing import Any, Dict, Optional, Tuple

from ..engine.serialize import deserialize, serialize
from ..tasks.solvability import SearchBudgetExceeded, resolve_budget
from .protocol import PRIORITIES, PROTOCOL_VERSION, RETRYABLE_CODES
from .server import DEFAULT_HOST, DEFAULT_PORT

#: Base pause before the single transparent retry; the actual pause is
#: jittered uniformly over [0.5x, 1.5x] so simultaneous victims of one
#: overload don't re-arrive as a second synchronized burst.
DEFAULT_RETRY_BACKOFF = 0.05


def _jittered(backoff: float, rng: random.Random) -> float:
    return backoff * (0.5 + rng.random())


class ServiceError(RuntimeError):
    """A typed error response from the service."""

    def __init__(self, code: str, message: str):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message


def _raise_for(response: Dict[str, Any]) -> Dict[str, Any]:
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    code = error.get("code", "internal")
    message = error.get("message", "unknown error")
    if code == "budget_exceeded":
        raise SearchBudgetExceeded(
            message, nodes_explored=error.get("nodes_explored", 0)
        )
    raise ServiceError(code, message)


class _QueryMixin:
    """Typed helpers shared by the sync and async clients."""

    tenant: Optional[str] = None
    priority: Optional[str] = None

    def _query_fields(
        self, kind: str, payload: tuple, timeout: Optional[float]
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "kind": kind,
            "payload": serialize(payload),
        }
        if timeout is not None:
            fields["timeout"] = timeout
        if self.tenant is not None:
            fields["tenant"] = self.tenant
        if self.priority is not None:
            fields["priority"] = self.priority
        return fields

    @staticmethod
    def _check_priority(priority: Optional[str]) -> Optional[str]:
        if priority is not None and priority not in PRIORITIES:
            raise ValueError(
                f"priority must be one of {list(PRIORITIES)}, got {priority!r}"
            )
        return priority

    @staticmethod
    def _decode_value(response: Dict[str, Any]) -> Any:
        return deserialize(response["value"])


class ServiceClient(_QueryMixin):
    """Blocking line-protocol client (one request in flight at a time)."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 60.0,
        *,
        retries: int = 1,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, retries)
        self.retry_backoff = retry_backoff
        self.tenant = tenant
        self.priority = self._check_priority(priority)
        #: Transparent retries performed over this client's lifetime.
        self.retried = 0
        self._rng = random.Random()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # -- transport -----------------------------------------------------
    def _reconnect(self) -> None:
        self.close()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rwb")

    def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        self._file.write(json.dumps(message).encode("utf-8") + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One raw request/response cycle; raises on error responses.

        ``overloaded`` / ``shutting_down`` answers are retried once
        (per :data:`RETRYABLE_CODES`) after a jittered pause, on a
        fresh connection.
        """
        for attempt in range(self.retries + 1):
            self._next_id += 1
            message = {"v": PROTOCOL_VERSION, "id": self._next_id, "op": op}
            message.update(fields)
            response = self._roundtrip(message)
            if (
                not response.get("ok")
                and attempt < self.retries
                and (response.get("error") or {}).get("code")
                in RETRYABLE_CODES
            ):
                self.retried += 1
                time.sleep(_jittered(self.retry_backoff, self._rng))
                self._reconnect()
                continue
            if response.get("id") not in (None, self._next_id):
                raise ServiceError(
                    "internal",
                    f"response id mismatch: {response.get('id')!r}",
                )
            return _raise_for(response)
        raise AssertionError("unreachable")  # pragma: no cover

    def query_response(
        self, kind: str, payload: tuple, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        """The full wire response for one query (value still encoded)."""
        return self.request(
            "query", **self._query_fields(kind, payload, timeout)
        )

    def query(
        self, kind: str, payload: tuple, timeout: Optional[float] = None
    ) -> Any:
        """One query; returns the decoded engine value."""
        return self._decode_value(self.query_response(kind, payload, timeout))

    # -- typed helpers -------------------------------------------------
    def chr(self, n: int, depth: int) -> Any:
        return self.query("chr", (n, depth))

    def classify(self, adversary) -> Any:
        return self.query("classify", (adversary,))

    def r_affine(self, alpha, variant: Optional[str] = None) -> Any:
        if variant is None:
            from ..core.ra import DEFAULT_VARIANT

            variant = DEFAULT_VARIANT
        return self.query("r_affine", (alpha, variant))

    def solve(
        self,
        affine,
        task,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Tuple[Optional[Dict], int]:
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        return self.query("solve", (affine, task, budget, None))

    def certify(
        self,
        affine,
        task,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One certified FACT query; returns the certificate document.

        Budget overruns come back as resumable ``budget`` stubs, not as
        :class:`SearchBudgetExceeded` — the stub is the query's value.
        """
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        return self.query("certify", (affine, task, budget))

    def check(self, cert: Dict[str, Any]) -> Dict[str, Any]:
        """Server-side certificate check; returns the report dict.

        Convenience only — the certificate format is designed so any
        holder can run :func:`repro.certify.check` locally instead.
        """
        return self.query("check", (cert,))

    def fuzz(self, alpha, affine, case_seed: int) -> Tuple[bool, int]:
        return self.query("fuzz", (alpha, affine, case_seed))

    def simulate(
        self,
        protocol: str,
        adversary=None,
        *,
        n: int = 3,
        t: int = 0,
        k: int = 1,
        schedules: int = 4,
        seed: int = 7,
    ) -> Dict[str, Any]:
        """Explore one protocol under generated fault plans (repro.sim)."""
        return self.query(
            "simulate", (protocol, adversary, n, t, k, schedules, seed)
        )

    def oracle(
        self,
        protocol: str,
        adversary=None,
        *,
        n: int = 3,
        t: int = 0,
        k: int = 1,
        schedules: int = 4,
        seed: int = 7,
    ) -> Dict[str, Any]:
        """Differential simulator-versus-reference check for one pair."""
        return self.query(
            "oracle", (protocol, adversary, n, t, k, schedules, seed)
        )

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["stats"]

    def metrics_text(self) -> str:
        return self.request("metrics")["text"]

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServiceClient(_QueryMixin):
    """Asyncio client; one connection, lockstep request/response."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        retries: int = 1,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        tenant: Optional[str] = None,
        priority: Optional[str] = None,
    ):
        self.host = host
        self.port = port
        self.retries = max(0, retries)
        self.retry_backoff = retry_backoff
        self.tenant = tenant
        self.priority = self._check_priority(priority)
        self.retried = 0
        self._rng = random.Random()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()
        self._next_id = 0

    async def connect(self) -> "AsyncServiceClient":
        from .protocol import MAX_LINE_BYTES

        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        return self

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """As :meth:`ServiceClient.request`, with the same single
        jittered-backoff retry on ``overloaded`` / ``shutting_down``."""
        for attempt in range(self.retries + 1):
            if self._writer is None:
                await self.connect()
            async with self._lock:
                self._next_id += 1
                message = {
                    "v": PROTOCOL_VERSION,
                    "id": self._next_id,
                    "op": op,
                }
                message.update(fields)
                self._writer.write(json.dumps(message).encode("utf-8") + b"\n")
                await self._writer.drain()
                line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            response = json.loads(line)
            if (
                not response.get("ok")
                and attempt < self.retries
                and (response.get("error") or {}).get("code")
                in RETRYABLE_CODES
            ):
                self.retried += 1
                await asyncio.sleep(_jittered(self.retry_backoff, self._rng))
                await self.close()
                continue
            return _raise_for(response)
        raise AssertionError("unreachable")  # pragma: no cover

    async def query_response(
        self, kind: str, payload: tuple, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        return await self.request(
            "query", **self._query_fields(kind, payload, timeout)
        )

    async def query(
        self, kind: str, payload: tuple, timeout: Optional[float] = None
    ) -> Any:
        return self._decode_value(
            await self.query_response(kind, payload, timeout)
        )

    async def solve(
        self,
        affine,
        task,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Tuple[Optional[Dict], int]:
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        return await self.query("solve", (affine, task, budget, None))

    async def certify(
        self,
        affine,
        task,
        budget: Optional[int] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Dict[str, Any]:
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        return await self.query("certify", (affine, task, budget))

    async def check(self, cert: Dict[str, Any]) -> Dict[str, Any]:
        return await self.query("check", (cert,))

    async def simulate(
        self,
        protocol: str,
        adversary=None,
        *,
        n: int = 3,
        t: int = 0,
        k: int = 1,
        schedules: int = 4,
        seed: int = 7,
    ) -> Dict[str, Any]:
        return await self.query(
            "simulate", (protocol, adversary, n, t, k, schedules, seed)
        )

    async def oracle(
        self,
        protocol: str,
        adversary=None,
        *,
        n: int = 3,
        t: int = 0,
        k: int = 1,
        schedules: int = 4,
        seed: int = 7,
    ) -> Dict[str, Any]:
        return await self.query(
            "oracle", (protocol, adversary, n, t, k, schedules, seed)
        )

    async def ping(self) -> bool:
        return bool((await self.request("ping")).get("pong"))

    async def stats(self) -> Dict[str, Any]:
        return (await self.request("stats"))["stats"]

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncServiceClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

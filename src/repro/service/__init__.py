"""The query service: a resident, coalescing server over the engine.

``repro.service`` turns the batch compute engine into a long-lived
serving process — the paper's FACT decision procedure (Theorems 15/16)
and its sibling queries as a network oracle:

* :mod:`~repro.service.protocol` — versioned line-delimited JSON
  schema with typed error codes; values travel as the engine's
  canonical serialization, so service responses are byte-identical to
  direct :class:`~repro.engine.jobs.Engine` calls;
* :mod:`~repro.service.memcache` — a bounded in-memory LRU tier in
  front of the on-disk artifact cache;
* :mod:`~repro.service.batcher` — micro-batching with in-flight
  request coalescing (N identical concurrent queries cost one
  computation);
* :mod:`~repro.service.server` — the asyncio server: connection and
  in-flight limits, per-request deadlines, graceful drain on SIGTERM,
  live metrics, and a minimal HTTP shim;
* :mod:`~repro.service.client` — sync and async clients with the
  engine's typed calling conventions;
* :mod:`~repro.service.background` — a thread harness for tests,
  benchmarks and examples.

Entry points: ``python -m repro serve`` and ``python -m repro query``.
See ``docs/service.md`` for the protocol spec and deployment notes.
"""

from .background import BackgroundServer
from .batcher import Batcher
from .client import AsyncServiceClient, ServiceClient, ServiceError
from .memcache import MemCache
from .metrics import LatencyHistogram, Metrics
from .protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    encode_message,
    error_response,
    parse_request,
    query_response,
    response_for_result,
)
from .server import DEFAULT_HOST, DEFAULT_PORT, ServiceServer

__all__ = [
    "AsyncServiceClient",
    "BackgroundServer",
    "Batcher",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "LatencyHistogram",
    "MAX_LINE_BYTES",
    "MemCache",
    "Metrics",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "encode_message",
    "error_response",
    "parse_request",
    "query_response",
    "response_for_result",
]

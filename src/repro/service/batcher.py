"""Micro-batching and in-flight request coalescing for the service.

Queries arriving within one batching *window* are merged into a single
:meth:`Engine.run_jobs` call, which amortizes dispatch overhead and
lets the engine's cache and dedup layers see the whole batch at once.
Orthogonally, requests for a computation that is already in flight —
pending in the current window *or* executing in a dispatched batch —
never start a second computation: they attach to the existing result
future and receive the same :class:`JobResult` (marked
``coalesced=True``) when it lands.

The engine is synchronous and CPU-bound, so batches run on a dedicated
single worker thread (``run_in_executor``); the engine itself may still
fan out to worker *processes* via its ``jobs`` setting.  A single
dispatch thread also serializes all cache access, so the memcache tier
sees a consistent request stream.

Waiters hold the shared future through :func:`asyncio.shield`: a
cancelled or timed-out request abandons its *wait*, never the
computation, so late duplicates and the cache still benefit.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..engine.jobs import Engine, JobResult, JobSpec
from ..engine.serialize import digest
from .metrics import Metrics


class Batcher:
    """Coalescing micro-batch dispatcher in front of one engine."""

    def __init__(
        self,
        engine: Engine,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        metrics: Optional[Metrics] = None,
    ):
        if window < 0:
            raise ValueError("window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.engine = engine
        self.window = window
        self.max_batch = max_batch
        self.metrics = metrics if metrics is not None else Metrics()
        self._loop = asyncio.get_running_loop()
        self._pending: "OrderedDict[str, Tuple[JobSpec, asyncio.Future]]" = (
            OrderedDict()
        )
        self._inflight: Dict[str, asyncio.Future] = {}
        self._flush_handle: Optional[asyncio.TimerHandle] = None
        self._batch_tasks: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        self._closed = False

    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> JobResult:
        """One query through the batcher; returns the job's result.

        Identical concurrent submissions share one computation; every
        submission gets its own :class:`JobResult` view (attachers see
        ``coalesced=True``).
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        key_digest = await self._loop.run_in_executor(
            None, lambda: digest(spec.cache_key())
        )
        future = self._inflight.get(key_digest)
        if future is not None:
            self.metrics.inc("coalesced_total")
            result = await asyncio.shield(future)
            return replace(result, coalesced=True)
        future = self._loop.create_future()
        self._inflight[key_digest] = future
        self._pending[key_digest] = (spec, future)
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = self._loop.call_later(
                self.window, self._flush
            )
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    def _flush(self) -> None:
        """Dispatch everything pending as one engine batch."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        if not self._pending:
            return
        entries = list(self._pending.items())
        self._pending.clear()
        task = self._loop.create_task(self._run_batch(entries))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(
        self, entries: List[Tuple[str, Tuple[JobSpec, asyncio.Future]]]
    ) -> None:
        specs = [spec for _, (spec, _) in entries]
        self.metrics.inc("batches_total")
        # Dispatched, not necessarily computed: the engine may still
        # answer some of these from its cache tiers.
        self.metrics.inc("jobs_dispatched_total", len(specs))
        try:
            results = await self._loop.run_in_executor(
                self._executor, self._traced_run_jobs, specs
            )
        except Exception as exc:  # engine infrastructure failure
            for key_digest, (_, future) in entries:
                self._inflight.pop(key_digest, None)
                if not future.done():
                    future.set_exception(exc)
            return
        for (key_digest, (_, future)), result in zip(entries, results):
            self._inflight.pop(key_digest, None)
            if not future.done():
                future.set_result(result)

    def _traced_run_jobs(self, specs: List[JobSpec]) -> List[JobResult]:
        # ``run_in_executor`` does not propagate contextvars, so the
        # dispatch thread starts context-free: the ``service.batch``
        # span is deliberately a fresh trace root covering every query
        # merged into this batch (queries keep their own per-request
        # traces on the event loop side).
        with obs.span("service.batch", specs=len(specs)):
            return self.engine.run_jobs(specs)

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Distinct computations currently pending or executing."""
        return len(self._inflight)

    async def drain(self) -> None:
        """Flush and wait until every in-flight batch has completed."""
        self._flush()
        while self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain, then refuse further submissions and free the workers.

        Closing also releases the engine's persistent worker pool: all
        engine batches serialize through this batcher's dispatch thread,
        so once it is shut down nothing else is using the pool.  The
        engine itself stays usable (a later batch would start a fresh
        pool).
        """
        await self.drain()
        self._closed = True
        self._executor.shutdown(wait=True)
        self.engine.close()

"""The asyncio query server: connections, deadlines, drain, HTTP shim.

One :class:`ServiceServer` owns one :class:`~repro.engine.jobs.Engine`
(typically fronted by a :class:`~repro.service.memcache.MemCache`) and
serves the line-delimited JSON protocol of
:mod:`repro.service.protocol` over TCP:

* **Connection limits** — beyond ``max_connections`` concurrent
  connections, new clients get one ``overloaded`` error line and are
  disconnected.
* **Pipelining with bounded concurrency** — every request line becomes
  a task; beyond ``max_inflight`` concurrently-processing requests the
  server answers ``overloaded`` immediately instead of queueing
  unboundedly.  Responses are written as they complete (match by
  ``id``); TCP backpressure is honored via ``writer.drain()``.
* **Per-request deadlines** — ``min(request timeout, server default)``;
  expiry abandons the *wait*, never the computation (the result still
  lands in the cache for the next asker).
* **Graceful drain** — on SIGTERM/SIGINT (or :meth:`drain`) the
  listener closes, in-flight requests get ``drain_grace`` seconds to
  finish and flush, then connections close and :meth:`wait_stopped`
  returns.
* **HTTP shim** — a connection whose first line is an HTTP request gets
  minimal HTTP/1.1 handling: ``GET /metrics`` (plain-text dump),
  ``GET /stats`` (JSON), ``GET /healthz``, and ``POST /query`` with a
  protocol request as the body.  One request per connection.

Everything expensive — payload decode, result encode, the engine batch
itself — runs in executor threads; the event loop only shuffles bytes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Dict, Optional, Set

from .. import obs
from ..engine.jobs import JOB_KINDS, Engine
from ..engine.jobs import JobSpec
from ..engine.serialize import SerializationError, deserialize, serialize
from ..solver.api import as_solve_request
from .batcher import Batcher
from .metrics import Metrics
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    encode_message,
    error_response,
    metrics_response,
    parse_request,
    ping_response,
    response_for_result,
    stats_response,
)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7341

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ")


class ServiceServer:
    """A resident query server on top of one compute engine."""

    def __init__(
        self,
        engine: Engine,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        window: float = 0.002,
        max_batch: int = 64,
        max_connections: int = 64,
        max_inflight: int = 256,
        request_timeout: Optional[float] = None,
        drain_grace: float = 10.0,
        metrics: Optional[Metrics] = None,
    ):
        self.engine = engine
        self.host = host
        self.port = port  # updated to the bound port after start()
        self.window = window
        self.max_batch = max_batch
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.request_timeout = request_timeout
        self.drain_grace = drain_grace
        self.metrics = metrics if metrics is not None else Metrics()
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional[Batcher] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._request_tasks: Set[asyncio.Task] = set()
        self._active_requests = 0
        self._draining = False
        self._drain_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener; ``self.port`` holds the actual port."""
        self._stopped = asyncio.Event()
        self._batcher = Batcher(
            self.engine,
            window=self.window,
            max_batch=self.max_batch,
            metrics=self.metrics,
        )
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self.port,
            limit=MAX_LINE_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        """Block until a drain has fully completed."""
        assert self._stopped is not None, "server not started"
        await self._stopped.wait()

    def request_drain(self) -> None:
        """Schedule a graceful drain (idempotent; signal-handler safe)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.drain()
            )

    async def drain(self) -> None:
        """Stop accepting, let in-flight work finish, then shut down."""
        if self._draining:
            await self.wait_stopped()
            return
        self._draining = True
        self.metrics.inc("drains_total")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._request_tasks if not task.done()]
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=self.drain_grace
            )
            for task in still_pending:
                task.cancel()
        if self._batcher is not None:
            await self._batcher.close()
        for writer in list(self._connections):
            writer.close()
        self._stopped.set()

    async def run(self, *, handle_signals: bool = True) -> None:
        """Start, serve until SIGTERM/SIGINT, drain, return."""
        await self.start()
        if handle_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_drain)
                except NotImplementedError:  # pragma: no cover - non-POSIX
                    pass
        await self.wait_stopped()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._draining:
            writer.close()
            return
        self.metrics.inc("connections_total")
        if len(self._connections) >= self.max_connections:
            self.metrics.inc("errors_overloaded_total")
            await self._write(
                writer,
                asyncio.Lock(),
                error_response(
                    None, "overloaded", "connection limit reached"
                ),
            )
            writer.close()
            return
        self._connections.add(writer)
        write_lock = asyncio.Lock()
        first = True
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    self.metrics.inc("errors_bad_request_total")
                    await self._write(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            "bad_request",
                            f"request line exceeds {MAX_LINE_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if first and line.startswith(_HTTP_METHODS):
                    await self._handle_http(line, reader, writer)
                    break
                first = False
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._serve_line(line, writer, write_lock)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        response = await self._process_line(line)
        try:
            await self._write(writer, write_lock, response)
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        text = encode_message(response)
        async with write_lock:
            writer.write(text.encode("utf-8") + b"\n")
            await writer.drain()

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    async def _process_line(self, line: bytes) -> Dict[str, Any]:
        started = time.perf_counter()
        self.metrics.inc("requests_total")
        with obs.span("service.request") as request_span:
            try:
                request = parse_request(
                    line.decode("utf-8", errors="replace")
                )
            except ProtocolError as exc:
                self.metrics.inc(f"errors_{exc.code}_total")
                request_span.set_attr("error", exc.code)
                return error_response(None, exc.code, exc.message)
            request_span.set_attr("op", request.op)
            self.metrics.inc(f"op_{request.op}_total")
            if request.priority is not None:
                # Plain shards don't shed by lane (the router does) but
                # they account for it, so fleet dashboards can compare
                # lane mix across tiers.
                self.metrics.inc(f"lane_{request.priority}_total")
            try:
                if request.op == "ping":
                    response = ping_response(request.id)
                elif request.op == "stats":
                    response = stats_response(request.id, self.stats())
                elif request.op == "metrics":
                    response = metrics_response(
                        request.id, self.metrics.render_text()
                    )
                else:
                    response = await self._process_query(request)
            except ProtocolError as exc:
                response = error_response(request.id, exc.code, exc.message)
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # never let a request kill the loop
                response = error_response(
                    request.id, "internal", f"{type(exc).__name__}: {exc}"
                )
            if not response["ok"]:
                self.metrics.inc(
                    f"errors_{response['error']['code']}_total"
                )
                request_span.set_attr(
                    "error", response["error"]["code"]
                )
            else:
                self.metrics.inc("responses_ok_total")
            self.metrics.observe("request", time.perf_counter() - started)
            return response

    async def _process_query(self, request) -> Dict[str, Any]:
        if self._draining:
            raise ProtocolError("shutting_down", "server is draining")
        if self._active_requests >= self.max_inflight:
            raise ProtocolError(
                "overloaded",
                f"more than {self.max_inflight} requests in flight",
            )
        if request.kind not in JOB_KINDS:
            raise ProtocolError(
                "unknown_kind", f"unknown job kind {request.kind!r}"
            )
        loop = asyncio.get_running_loop()
        try:
            payload = await loop.run_in_executor(
                None, deserialize, request.payload_text
            )
        except (SerializationError, ValueError) as exc:
            raise ProtocolError("bad_payload", f"undecodable payload: {exc}")
        if not isinstance(payload, tuple):
            raise ProtocolError(
                "bad_payload",
                f"payload must decode to a tuple, got {type(payload).__name__}",
            )
        if request.kind == "solve":
            # Wire payloads for solve are protocol-v1 positional tuples
            # (or already-typed requests from newer clients); normalize
            # to the typed path without a deprecation warning — the
            # wire format is the protocol, not a deprecated call site.
            # Typed specs also keep cache digests aligned with
            # engine-internal queries, preserving cross-path hits.
            try:
                payload = (as_solve_request(payload, warn=False),)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    "bad_payload", f"malformed solve payload: {exc}"
                )
        spec = JobSpec(request.kind, payload)
        deadline = self._deadline(request.timeout)
        self._active_requests += 1
        started = time.perf_counter()
        with obs.span("service.query", kind=request.kind) as query_span:
            try:
                waiter = self._batcher.submit(spec)
                if deadline is not None:
                    result = await asyncio.wait_for(waiter, deadline)
                else:
                    result = await waiter
            except asyncio.TimeoutError:
                raise ProtocolError(
                    "timeout", f"request deadline of {deadline}s expired"
                )
            finally:
                self._active_requests -= 1
                self.metrics.observe(
                    f"query_{request.kind}", time.perf_counter() - started
                )
            query_span.set_attr("cache_hit", result.cache_hit)
            query_span.set_attr("coalesced", result.coalesced)
            value_text = None
            if result.ok:
                value_text = await loop.run_in_executor(
                    None, serialize, result.value
                )
                if result.cache_hit:
                    self.metrics.inc("cache_hits_total")
                if result.coalesced:
                    self.metrics.inc("coalesced_responses_total")
            return response_for_result(request.id, result, value_text)

    def _deadline(self, requested: Optional[float]) -> Optional[float]:
        candidates = [
            value
            for value in (requested, self.request_timeout)
            if value is not None
        ]
        return min(candidates) if candidates else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The structured snapshot served by the ``stats`` op."""
        stats: Dict[str, Any] = {
            "server": {
                "host": self.host,
                "port": self.port,
                "protocol_version": PROTOCOL_VERSION,
                "memcache_capacity": self.memcache_capacity(),
                "connections": len(self._connections),
                "active_requests": self._active_requests,
                "draining": self._draining,
                "uptime_s": round(self.metrics.uptime(), 3),
            },
            "engine": {"jobs": self.engine.jobs, **self.engine.stats()},
            "batcher": {
                "window_s": self.window,
                "max_batch": self.max_batch,
                "inflight": self._batcher.inflight if self._batcher else 0,
            },
            "metrics": self.metrics.snapshot(),
        }
        cache_stats = getattr(self.engine.cache, "stats", None)
        if callable(cache_stats):
            stats["memcache"] = cache_stats()
        return stats

    def memcache_capacity(self) -> Optional[int]:
        """Entries the in-memory cache tier holds (None: no such tier)."""
        capacity = getattr(self.engine.cache, "max_entries", None)
        return capacity if isinstance(capacity, int) else None

    # ------------------------------------------------------------------
    # HTTP shim
    # ------------------------------------------------------------------
    async def _handle_http(
        self,
        first_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.metrics.inc("http_requests_total")
        try:
            method, path, _ = first_line.decode("ascii").split(" ", 2)
        except ValueError:
            method, path = "GET", "/"
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    content_length = 0
        status, content_type, body = "404 Not Found", "text/plain", "not found\n"
        if method in ("GET", "HEAD") and path == "/metrics":
            status, body = "200 OK", self.metrics.render_text()
        elif method in ("GET", "HEAD") and path == "/stats":
            status, content_type = "200 OK", "application/json"
            body = json.dumps(self.stats(), sort_keys=True) + "\n"
        elif method in ("GET", "HEAD") and path == "/healthz":
            # JSON health document: the router sanity-checks a shard's
            # protocol version and memcache capacity at registration.
            status, content_type = "200 OK", "application/json"
            body = (
                json.dumps(
                    {
                        "status": "draining" if self._draining else "ok",
                        "protocol_version": PROTOCOL_VERSION,
                        "memcache_capacity": self.memcache_capacity(),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        elif method == "POST" and path == "/query":
            raw = await reader.readexactly(min(content_length, MAX_LINE_BYTES))
            response = await self._process_line(raw)
            status, content_type = "200 OK", "application/json"
            body = encode_message(response) + "\n"
        payload = b"" if method == "HEAD" else body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}; charset=utf-8\r\n"
            f"Content-Length: {len(body.encode('utf-8'))}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + payload)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

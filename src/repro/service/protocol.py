"""Wire protocol v1: line-delimited JSON requests and responses.

One request is one JSON object on one line; the response is one JSON
object on one line.  Responses carry the request's ``id``, so a client
may pipeline requests on a single connection and match responses out of
order.

The *value* of a successful ``query`` is the engine's canonical
serialization (:func:`repro.engine.serialize.serialize`) of the job's
return value, embedded as a JSON string.  The service never re-encodes
results through a second codec, which is what makes service responses
byte-identical to direct :class:`~repro.engine.jobs.Engine` calls.

Request fields::

    {"v": 1, "id": 7, "op": "query", "kind": "solve",
     "payload": "<canonical text>", "timeout": 30.0,
     "tenant": "bench", "priority": "interactive"}

* ``v``       — protocol version; must equal :data:`PROTOCOL_VERSION`.
* ``id``      — any JSON scalar; echoed verbatim in the response.
* ``op``      — ``query`` | ``stats`` | ``metrics`` | ``ping``.
* ``kind``    — (query only) an engine job kind from ``JOB_KINDS``.
  Dispatch is generic over the registry, so kinds added after v1 —
  ``certify`` (payload ``(affine, task, node_budget)``, value: a
  certificate document) and ``check`` (payload ``(cert,)``, value: a
  ``CheckReport`` dict) — work with no protocol change.  ``certify``
  returns budget overruns as resumable ``budget`` stubs in the value,
  never as a ``budget_exceeded`` error.
* ``payload`` — (query only) canonical serialization of the job's
  payload tuple.
* ``timeout`` — (query only, optional) per-request deadline in seconds;
  the server enforces ``min(timeout, server default)``.
* ``tenant``  — (optional, additive) the accounting identity the fleet
  router rate-limits by.  Plain servers accept and count it; absent
  means the shared ``"default"`` tenant, so v1 clients are unchanged.
* ``priority`` — (optional, additive) admission lane, one of
  :data:`PRIORITIES` (``interactive`` > ``batch`` > ``sweep``).  Under
  load the router sheds low lanes first via the typed ``overloaded``
  error; absent means ``interactive``, so unlabeled v1 traffic is
  never penalized relative to today.

Response fields: ``v``, ``id``, ``ok``; on success one of ``value`` (+
``kind``, ``cache_hit``, ``coalesced``, ``wall_time``), ``stats``,
``text`` or ``pong``; on failure ``error = {"code", "message"}`` with a
code from :data:`ERROR_CODES` (plus ``nodes_explored`` for
``budget_exceeded``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Version of the request/response schema.  Bump on any incompatible
#: change; servers reject other versions with ``unsupported_version``.
PROTOCOL_VERSION = 1

#: Hard cap on one request/response line (serialized affine tasks are
#: large; 16 MiB leaves generous headroom).
MAX_LINE_BYTES = 16 * 2**20

OPS = frozenset({"query", "stats", "metrics", "ping"})

#: Admission lanes, highest priority first.  Order is meaningful: the
#: fleet router sheds the *last* lanes first when overloaded.
PRIORITIES = ("interactive", "batch", "sweep")

#: Typed error codes — the complete, closed set a v1 server may return.
#: ``verification_failed`` is a fleet-era additive code: only edge
#: replicas (which re-check certificates before returning them) ever
#: emit it; plain shards never do, so v1 clients against a single
#: server observe exactly the original set.
ERROR_CODES = frozenset(
    {
        "bad_request",  # unparsable line / missing or malformed fields
        "unsupported_version",  # request "v" != PROTOCOL_VERSION
        "unknown_op",  # "op" not in OPS
        "unknown_kind",  # query kind not in the engine registry
        "bad_payload",  # payload undecodable or not a tuple
        "job_error",  # the engine job raised; message has traceback
        "budget_exceeded",  # solve search budget exhausted after retry
        "timeout",  # per-request deadline expired
        "overloaded",  # connection, in-flight or admission limit hit
        "shutting_down",  # server is draining; retry elsewhere
        "verification_failed",  # replica: no shard produced a valid cert
        "internal",  # unexpected server-side failure
    }
)

#: Codes a client may transparently retry once with jittered backoff:
#: both signal a transient condition on *this* server, not a problem
#: with the request itself.
RETRYABLE_CODES = frozenset({"overloaded", "shutting_down"})


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass(frozen=True)
class Request:
    """A parsed, validated v1 request."""

    id: Any
    op: str
    kind: Optional[str] = None
    payload_text: Optional[str] = None
    timeout: Optional[float] = None
    #: Accounting identity for fleet admission control (additive field;
    #: ``None`` = the shared default tenant).
    tenant: Optional[str] = None
    #: Admission lane from :data:`PRIORITIES` (additive field; ``None``
    #: = ``interactive``).
    priority: Optional[str] = None


def parse_request(line: str) -> Request:
    """Parse one request line; raises :class:`ProtocolError` on misuse.

    Version and op are validated here; ``kind`` and the payload are
    validated by the server against the live engine registry, so the
    protocol module has no dependency on the engine.
    """
    try:
        fields = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad_request", f"unparsable JSON: {exc}")
    if not isinstance(fields, dict):
        raise ProtocolError("bad_request", "request must be a JSON object")
    request_id = fields.get("id")
    version = fields.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"protocol v{version!r} not supported (server speaks v{PROTOCOL_VERSION})",
        )
    op = fields.get("op")
    if op not in OPS:
        raise ProtocolError("unknown_op", f"unknown op {op!r}")
    kind = fields.get("kind")
    payload_text = fields.get("payload")
    timeout = fields.get("timeout")
    tenant = fields.get("tenant")
    priority = fields.get("priority")
    if tenant is not None and not isinstance(tenant, str):
        raise ProtocolError("bad_request", "'tenant' must be a string")
    if priority is not None and priority not in PRIORITIES:
        raise ProtocolError(
            "bad_request",
            f"'priority' must be one of {list(PRIORITIES)}, got {priority!r}",
        )
    if op == "query":
        if not isinstance(kind, str):
            raise ProtocolError("bad_request", "query requires a string 'kind'")
        if not isinstance(payload_text, str):
            raise ProtocolError(
                "bad_request", "query requires a string 'payload'"
            )
        if timeout is not None:
            if not isinstance(timeout, (int, float)) or timeout <= 0:
                raise ProtocolError(
                    "bad_request", "'timeout' must be a positive number"
                )
    return Request(
        id=request_id,
        op=op,
        kind=kind,
        payload_text=payload_text,
        timeout=None if timeout is None else float(timeout),
        tenant=tenant,
        priority=priority,
    )


# ----------------------------------------------------------------------
# Response constructors
# ----------------------------------------------------------------------
def _base(request_id: Any, ok: bool) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": ok}


def query_response(
    request_id: Any,
    kind: str,
    value_text: str,
    *,
    cache_hit: bool = False,
    coalesced: bool = False,
    wall_time: float = 0.0,
) -> Dict[str, Any]:
    response = _base(request_id, True)
    response.update(
        kind=kind,
        value=value_text,
        cache_hit=bool(cache_hit),
        coalesced=bool(coalesced),
        wall_time=round(float(wall_time), 6),
    )
    return response


def stats_response(request_id: Any, stats: Dict[str, Any]) -> Dict[str, Any]:
    response = _base(request_id, True)
    response["stats"] = stats
    return response


def metrics_response(request_id: Any, text: str) -> Dict[str, Any]:
    response = _base(request_id, True)
    response["text"] = text
    return response


def ping_response(request_id: Any) -> Dict[str, Any]:
    response = _base(request_id, True)
    response["pong"] = True
    return response


def error_response(
    request_id: Any,
    code: str,
    message: str,
    *,
    nodes_explored: Optional[int] = None,
) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    response = _base(request_id, False)
    response["error"] = {"code": code, "message": message}
    if nodes_explored is not None:
        response["error"]["nodes_explored"] = nodes_explored
    return response


def response_for_result(request_id: Any, result, value_text: Optional[str]):
    """The wire response for an engine :class:`JobResult`.

    ``value_text`` is the canonical serialization of ``result.value``
    (serialized by the caller so it can happen off the event loop);
    ignored for error results.
    """
    if result.ok:
        return query_response(
            request_id,
            result.kind,
            value_text if value_text is not None else "",
            cache_hit=result.cache_hit,
            coalesced=result.coalesced,
            wall_time=result.wall_time,
        )
    if result.error == "budget":
        return error_response(
            request_id,
            "budget_exceeded",
            "node budget exceeded after split-retry",
            nodes_explored=result.nodes_explored or 0,
        )
    if result.error == "timeout":
        return error_response(
            request_id, "timeout", "job exceeded the engine's per-job timeout"
        )
    return error_response(request_id, "job_error", result.error)


def encode_message(message: Dict[str, Any]) -> str:
    """One deterministic wire line (no trailing newline) for a message."""
    return json.dumps(
        message, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )

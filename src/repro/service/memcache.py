"""Bounded in-memory LRU tier fronting a backing artifact cache.

The on-disk :class:`~repro.engine.cache.ArtifactCache` makes artifacts
cheap (one read + one canonical decode); this tier makes *hot*
artifacts free by keeping the decoded Python values resident.  It
speaks the same ``get``/``put`` protocol the engine expects, so a
:class:`MemCache` simply *is* the engine's cache inside the service
process: reads check memory first and fall back to the backing store
(promoting on hit), writes go through to the backing store.

Values are cached by reference and must be treated as immutable — true
for every engine artifact (complexes, affine tasks, result tuples).
All operations take an internal lock: the server's event loop and the
batcher's dispatch thread share this object.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Tuple

from ..engine.cache import MISS, NullCache


class MemCache:
    """An LRU of decoded artifacts in front of a persistent store."""

    def __init__(self, backing=None, max_entries: int = 256):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.backing = backing if backing is not None else NullCache()
        self.max_entries = max_entries
        self._lru: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0  # answered from memory
        self.misses = 0  # not in memory (backing may still hit)
        self.evictions = 0

    @property
    def persistent(self) -> bool:
        return self.backing.persistent

    def __repr__(self) -> str:
        return (
            f"MemCache(max_entries={self.max_entries}, "
            f"size={len(self._lru)}, hits={self.hits}, "
            f"misses={self.misses}, backing={self.backing!r})"
        )

    # ------------------------------------------------------------------
    def get(self, key_digest: str) -> Any:
        """The cached value for a key digest, or :data:`MISS`."""
        with self._lock:
            if key_digest in self._lru:
                self._lru.move_to_end(key_digest)
                self.hits += 1
                return self._lru[key_digest]
            self.misses += 1
        value = self.backing.get(key_digest)
        if value is not MISS:
            self._store(key_digest, value)
        return value

    def put(self, key_digest: str, value: Any) -> None:
        """Store a value in memory and write it through to the backing."""
        self.backing.put(key_digest, value)
        self._store(key_digest, value)

    def _store(self, key_digest: str, value: Any) -> None:
        with self._lock:
            self._lru[key_digest] = value
            self._lru.move_to_end(key_digest)
            while len(self._lru) > self.max_entries:
                self._lru.popitem(last=False)
                self.evictions += 1

    def get_or_compute(
        self, key_digest: str, compute: Callable[[], Any]
    ) -> Tuple[Any, bool]:
        """``(value, was_hit)`` — compute and store on a full miss."""
        value = self.get(key_digest)
        if value is not MISS:
            return value, True
        value = compute()
        self.put(key_digest, value)
        return value, False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def clear(self) -> int:
        """Drop the in-memory tier only; the backing store is untouched."""
        with self._lock:
            dropped = len(self._lru)
            self._lru.clear()
        return dropped

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction accounting for both tiers."""
        with self._lock:
            size = len(self._lru)
            hits, misses, evictions = self.hits, self.misses, self.evictions
        lookups = hits + misses
        return {
            "size": size,
            "max_entries": self.max_entries,
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "backing_hits": self.backing.hits,
            "backing_misses": self.backing.misses,
            "backing_persistent": self.backing.persistent,
        }

"""The span tracer: monotonic timings, context propagation, no-op off.

One process holds at most one *active* :class:`Tracer` (module global,
installed with :func:`enable`, removed with :func:`disable`).  Code
under measurement never touches the tracer directly — it calls
:func:`span`::

    with span("engine.batch", jobs=4) as batch_span:
        ...
        batch_span.set_attr("cache_hits", hits)

When no tracer is active, :func:`span` returns one shared
:data:`NOOP_SPAN` singleton — no allocation, no contextvar write, no
lock — so instrumented hot paths cost a single module-global read when
tracing is off.  The tier-1 suite and the committed benchmarks all run
in that state.

**Context.**  The current span is a ``contextvars.ContextVar`` holding
``(trace_id, span_id)``, so nesting works across ``await`` points (each
asyncio task gets its own context) and new threads start at the root
(thread pools never inherit a request's context by accident).

**Cross-process propagation.**  A span context can be exported as a
*carrier* dict (:func:`current_carrier`) and re-installed elsewhere
with :func:`attach` — including in a pool worker process, which runs
its jobs under a private tracer and ships the finished spans back as
plain dicts for :meth:`Tracer.ingest` to reattach.  Span ids embed the
producing process id, so reattached ids never collide with local ones.

Span attributes are coerced to JSON-safe scalars at ``set_attr`` time
(anything else becomes its ``repr``), which keeps serialization total
and byte-stable.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "attach",
    "current_carrier",
    "disable",
    "enable",
    "get_tracer",
    "span",
]

#: ``(trace_id, span_id)`` of the innermost open span, or ``None``.
_CURRENT: contextvars.ContextVar[Optional[Tuple[str, str]]] = (
    contextvars.ContextVar("repro_obs_current", default=None)
)

#: The process-wide active tracer (``None`` = tracing off).
_ACTIVE: Optional["Tracer"] = None


def _attr_value(value: Any) -> Any:
    """Coerce one attribute to a JSON-safe scalar (repr as last resort)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class Span:
    """One timed, named region of work, with parent/child identity.

    Spans are context managers: entering installs the span as the
    current context (children created inside parent to it), exiting
    stamps the monotonic duration and hands the span to its tracer.
    An exception propagating through ``__exit__`` records the exception
    type under the ``error`` attribute before re-raising.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "pid",
        "start_s",
        "dur_s",
        "attrs",
        "_tracer",
        "_token",
        "_t0",
    )

    recording = True

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        attrs: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = os.getpid()
        #: Wall-clock start (epoch seconds) — for humans reading traces;
        #: ordering and durations come from the monotonic clock.
        self.start_s = round(time.time(), 6)
        self.dur_s = 0.0
        self.attrs: Dict[str, Any] = {}
        if attrs:
            for key, value in attrs.items():
                self.attrs[key] = _attr_value(value)
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------
    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = _attr_value(value)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.dur_s = round(time.perf_counter() - self._t0, 9)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._finish(self)
        return False

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict with deterministic key content.

        Serializing the same finished span twice yields identical bytes
        (see :func:`repro.obs.export.span_line`): attributes are emitted
        in sorted key order and every value is a JSON scalar.
        """
        data: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
        }
        if self.attrs:
            data["attrs"] = {key: self.attrs[key] for key in sorted(self.attrs)}
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a finished span (e.g. one shipped from a worker)."""
        span_obj = cls.__new__(cls)
        span_obj.name = data["name"]
        span_obj.trace_id = data["trace_id"]
        span_obj.span_id = data["span_id"]
        span_obj.parent_id = data.get("parent_id")
        span_obj.pid = data.get("pid", 0)
        span_obj.start_s = data.get("start_s", 0.0)
        span_obj.dur_s = data.get("dur_s", 0.0)
        span_obj.attrs = dict(data.get("attrs") or {})
        span_obj._tracer = None
        span_obj._token = None
        span_obj._t0 = 0.0
        return span_obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, dur={self.dur_s:.6f}s)"
        )


class _NoopSpan:
    """The shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    recording = False

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton every ``span()`` call returns when tracing is off.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects finished spans and per-name aggregates (thread-safe).

    ``max_spans`` bounds the buffered span list so a long-lived traced
    server cannot grow without limit; overflowing spans are dropped from
    the buffer (and counted in ``spans_dropped``) but still feed the
    per-name aggregates, so :meth:`stats` stays truthful.
    """

    def __init__(self, max_spans: int = 100_000):
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._seq = 0
        self._total = 0
        self._dropped = 0
        #: name -> [count, total_seconds, max_seconds]
        self._agg: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------
    def start_span(
        self, name: str, attrs: Optional[Dict[str, Any]] = None
    ) -> Span:
        """A new open span parented under the current context."""
        parent = _CURRENT.get()
        with self._lock:
            self._seq += 1
            sequence = self._seq
        span_id = f"{os.getpid():x}.{sequence:x}"
        if parent is not None:
            trace_id, parent_id = parent
        else:
            trace_id = f"t{span_id}"
            parent_id = None
        return Span(name, trace_id, span_id, parent_id, attrs, tracer=self)

    def _finish(self, span_obj: Span) -> None:
        with self._lock:
            self._record_locked(span_obj)

    def _record_locked(self, span_obj: Span) -> None:
        self._total += 1
        entry = self._agg.get(span_obj.name)
        if entry is None:
            entry = self._agg[span_obj.name] = [0, 0.0, 0.0]
        entry[0] += 1
        entry[1] += span_obj.dur_s
        if span_obj.dur_s > entry[2]:
            entry[2] = span_obj.dur_s
        if len(self._spans) < self.max_spans:
            self._spans.append(span_obj)
        else:
            self._dropped += 1

    def ingest(self, span_dicts: Iterable[Dict[str, Any]]) -> int:
        """Reattach finished spans shipped from another process."""
        count = 0
        with self._lock:
            for data in span_dicts:
                self._record_locked(Span.from_dict(data))
                count += 1
        return count

    # ------------------------------------------------------------------
    def drain(self) -> List[Span]:
        """Remove and return every buffered span (aggregates persist)."""
        with self._lock:
            drained, self._spans = self._spans, []
        return drained

    def spans(self) -> List[Span]:
        """A snapshot copy of the buffered spans."""
        with self._lock:
            return list(self._spans)

    def stats(self) -> Dict[str, Any]:
        """Aggregate counters: totals plus per-name count/total/max."""
        with self._lock:
            by_name = {
                name: {
                    "count": int(entry[0]),
                    "total_s": round(entry[1], 6),
                    "max_s": round(entry[2], 6),
                }
                for name, entry in sorted(self._agg.items())
            }
            return {
                "spans_total": self._total,
                "spans_dropped": self._dropped,
                "spans_buffered": len(self._spans),
                "by_name": by_name,
            }


# ----------------------------------------------------------------------
# The module-global switch and context helpers
# ----------------------------------------------------------------------
def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable() -> None:
    """Remove the active tracer; :func:`span` reverts to the no-op."""
    global _ACTIVE
    _ACTIVE = None


def get_tracer() -> Optional[Tracer]:
    """The active tracer, or ``None`` when tracing is off."""
    return _ACTIVE


def span(name: str, **attrs: Any):
    """An open span under the active tracer — or the no-op singleton.

    This is the only call sites use.  Keep the disabled path at one
    global read: anything more belongs behind the ``is None`` check.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NOOP_SPAN
    return tracer.start_span(name, attrs)


def current_carrier() -> Optional[Dict[str, str]]:
    """The current span context as a JSON-safe carrier dict.

    ``None`` when tracing is off *or* no span is open — callers pass
    the result across a process/thread boundary and hand it to
    :func:`attach` on the other side.
    """
    if _ACTIVE is None:
        return None
    current = _CURRENT.get()
    if current is None:
        return None
    return {"trace_id": current[0], "span_id": current[1]}


class attach:
    """Context manager installing a carrier as the current span context.

    ``attach(None)`` clears the context (new spans become trace roots),
    which is how detached work — a micro-batch aggregating many
    requests, a worker thread — starts a fresh trace on purpose.
    """

    __slots__ = ("_carrier", "_token")

    def __init__(self, carrier: Optional[Dict[str, str]]):
        self._carrier = carrier
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "attach":
        if self._carrier is None:
            self._token = _CURRENT.set(None)
        else:
            self._token = _CURRENT.set(
                (self._carrier["trace_id"], self._carrier["span_id"])
            )
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False

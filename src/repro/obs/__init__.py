"""repro.obs — zero-dependency tracing and profiling for the stack.

The serving stack spans service → batcher → engine → process-pool
workers → solver kernels; ``repro.obs`` makes one query's journey
through all of it visible as a tree of timed spans:

* :mod:`~repro.obs.tracer` — the contextvar-propagated span tracer:
  :func:`span` context managers with monotonic timings, parent/child
  ids, JSON-safe attributes, and explicit cross-process propagation
  (:func:`current_carrier` / :func:`attach` / :meth:`Tracer.ingest`)
  so spans from pool workers reattach under the submitting job's span;
* :mod:`~repro.obs.export` — JSONL trace files (byte-stable lines) and
  the ``repro_trace_*`` Prometheus-text extension of the service's
  ``/metrics`` dump;
* :mod:`~repro.obs.summary` — per-span-kind latency breakdowns behind
  the ``repro trace <jsonl>`` CLI.

Tracing is **off by default** and the disabled path is a deliberate
no-op fast path: :func:`span` returns one shared singleton, allocating
nothing — the tier-1 suite and the committed benchmark numbers run in
exactly that state (``benchmarks/bench_obs.py`` records the cost of
both states honestly).  Enable with :func:`enable`, the ``--trace``
CLI flag, or ``REPRO_TRACE=<path>`` in the environment.

Stdlib-only, and imported *by* the instrumented layers — never the
other way around — so it sits below everything without cycles.
"""

from .export import (
    JsonlExporter,
    export_jsonl,
    load_spans,
    render_trace_text,
    span_line,
)
from .summary import render_summary, summarize
from .tracer import (
    NOOP_SPAN,
    Span,
    Tracer,
    attach,
    current_carrier,
    disable,
    enable,
    get_tracer,
    span,
)

__all__ = [
    "JsonlExporter",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "attach",
    "current_carrier",
    "disable",
    "enable",
    "export_jsonl",
    "get_tracer",
    "load_spans",
    "render_summary",
    "render_trace_text",
    "span",
    "span_line",
    "summarize",
]

"""Span exporters: JSONL trace files and Prometheus-style text.

Two read-out formats, both derived from :meth:`Span.to_dict`:

* **JSONL** — one canonical JSON object per line
  (:func:`span_line` / :class:`JsonlExporter` / :func:`export_jsonl`),
  loadable with :func:`load_spans` and summarized by
  :mod:`repro.obs.summary` and the ``repro trace`` CLI.  Lines are
  byte-stable: the same finished span always serializes to the same
  bytes (sorted keys, no whitespace), so traces diff cleanly.
* **Prometheus text** — :func:`render_trace_text` turns
  :meth:`Tracer.stats` into ``repro_trace_*`` lines that the service's
  ``/metrics`` shim appends to its existing dump.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from .tracer import Span

__all__ = [
    "JsonlExporter",
    "export_jsonl",
    "load_spans",
    "render_trace_text",
    "span_line",
]

SpanLike = Union[Span, Dict[str, Any]]


def span_line(span_obj: SpanLike) -> str:
    """One canonical JSONL line for a finished span (no newline)."""
    data = span_obj.to_dict() if isinstance(span_obj, Span) else span_obj
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class JsonlExporter:
    """Appends spans to a JSONL trace file as they are handed over."""

    def __init__(self, path: str):
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")
        self.exported = 0

    def export(self, spans: Iterable[SpanLike]) -> int:
        """Write spans; returns how many were written (and flushed)."""
        count = 0
        for span_obj in spans:
            self._handle.write(span_line(span_obj) + "\n")
            count += 1
        self._handle.flush()
        self.exported += count
        return count

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def export_jsonl(path: str, spans: Iterable[SpanLike]) -> int:
    """One-shot append of a span batch to ``path``; returns the count."""
    with JsonlExporter(path) as exporter:
        return exporter.export(spans)


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into span dicts (blank-line safe)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def render_trace_text(
    stats: Optional[Dict[str, Any]], prefix: str = "repro_trace"
) -> str:
    """Prometheus-style text for :meth:`Tracer.stats` output.

    Totals come first, then one ``_span_count`` / ``_span_seconds_total``
    pair per span name (label form, sorted).  Returns ``""`` for
    ``None`` so callers can append unconditionally.
    """
    if stats is None:
        return ""
    lines = [
        f"{prefix}_spans_total {stats.get('spans_total', 0)}",
        f"{prefix}_spans_dropped_total {stats.get('spans_dropped', 0)}",
    ]
    for name, entry in sorted(stats.get("by_name", {}).items()):
        label = name.replace('"', "'")
        lines.append(
            f'{prefix}_span_count{{name="{label}"}} {entry["count"]}'
        )
        lines.append(
            f'{prefix}_span_seconds_total{{name="{label}"}} {entry["total_s"]}'
        )
    return "\n".join(lines) + "\n"

"""Trace summarization: per-span-kind latency breakdowns.

Input is span dicts (from :func:`repro.obs.export.load_spans` or
``Span.to_dict``); output is a JSON-ready summary plus a plain-text
rendering used by the ``repro trace`` CLI.  Stdlib-only by design —
the summarizer must run anywhere a trace file lands.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["render_summary", "summarize"]

#: Sort keys accepted by the CLI and :func:`render_summary`.
SORT_KEYS = ("total_s", "count", "mean_s", "max_s")


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered))))
    return ordered[rank]


def summarize(spans: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate spans per name: count, total, mean, p50, p95, max.

    Also reports the distinct trace count, the total span count and the
    slowest individual spans (for "where did that one query go" style
    digging without replaying the whole file).
    """
    durations: Dict[str, List[float]] = {}
    traces = set()
    all_spans: List[Dict[str, Any]] = []
    for span_data in spans:
        durations.setdefault(span_data["name"], []).append(
            float(span_data.get("dur_s", 0.0))
        )
        traces.add(span_data.get("trace_id"))
        all_spans.append(span_data)

    by_name: Dict[str, Dict[str, Any]] = {}
    for name, values in durations.items():
        values.sort()
        total = sum(values)
        by_name[name] = {
            "count": len(values),
            "total_s": round(total, 6),
            "mean_s": round(total / len(values), 6),
            "p50_s": round(_percentile(values, 0.50), 6),
            "p95_s": round(_percentile(values, 0.95), 6),
            "max_s": round(values[-1], 6),
        }

    slowest = sorted(
        all_spans, key=lambda s: float(s.get("dur_s", 0.0)), reverse=True
    )[:5]
    return {
        "spans": len(all_spans),
        "traces": len(traces),
        "by_name": by_name,
        "slowest": [
            {
                "name": s["name"],
                "dur_s": float(s.get("dur_s", 0.0)),
                "trace_id": s.get("trace_id"),
                "attrs": s.get("attrs") or {},
            }
            for s in slowest
        ],
    }


def render_summary(
    summary: Dict[str, Any],
    sort: str = "total_s",
    limit: int = 0,
) -> str:
    """A plain-text table of the per-span-kind breakdown."""
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, got {sort!r}")
    rows = sorted(
        summary["by_name"].items(),
        key=lambda item: item[1][sort],
        reverse=True,
    )
    if limit:
        rows = rows[:limit]
    header = ["span", "count", "total_s", "mean_s", "p50_s", "p95_s", "max_s"]
    table: List[List[str]] = [header]
    for name, entry in rows:
        table.append(
            [
                name,
                str(entry["count"]),
                f"{entry['total_s']:.6f}",
                f"{entry['mean_s']:.6f}",
                f"{entry['p50_s']:.6f}",
                f"{entry['p95_s']:.6f}",
                f"{entry['max_s']:.6f}",
            ]
        )
    widths = [
        max(len(row[column]) for row in table)
        for column in range(len(header))
    ]
    lines = [
        f"{summary['spans']} spans in {summary['traces']} traces",
        "",
    ]
    for index, row in enumerate(table):
        lines.append(
            "  ".join(
                cell.ljust(width) if column == 0 else cell.rjust(width)
                for column, (cell, width) in enumerate(zip(row, widths))
            )
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    if summary.get("slowest"):
        lines.append("")
        lines.append("slowest spans:")
        for entry in summary["slowest"]:
            attrs = ""
            if entry["attrs"]:
                rendered = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(entry["attrs"].items())
                )
                attrs = f"  [{rendered}]"
            lines.append(
                f"  {entry['dur_s']:.6f}s  {entry['name']}"
                f"  (trace {entry['trace_id']}){attrs}"
            )
    return "\n".join(lines)

"""repro — affine tasks for fair adversaries, executably.

A from-scratch reproduction of

    Petr Kuznetsov, Thibault Rieutord, Yuan He.
    "An Asynchronous Computability Theorem for Fair Adversaries."
    PODC 2018 (extended version arXiv:2004.08348).

The library implements the paper end to end:

* :mod:`repro.topology` — chromatic simplicial complexes, the standard
  chromatic subdivision ``Chr`` and its iterations, carriers, maps,
  geometry and connectivity;
* :mod:`repro.adversaries` — adversaries, ``setcon``, agreement
  functions, fairness (Definition 2);
* :mod:`repro.core` — contention and critical simplices, concurrency
  maps, and the affine tasks ``R_A``, ``R_{k-OF}``, ``R_{t-res}``;
* :mod:`repro.tasks` — tasks, k-set consensus, and the FACT decision
  procedure (search for a carried chromatic simplicial map);
* :mod:`repro.runtime` — an asynchronous shared-memory runtime:
  schedulers, immediate snapshots, IIS, the paper's Algorithm 1 and the
  Section-6 simulation in ``R*_A``;
* :mod:`repro.protocols` — ``µ_Q`` leader election and α-adaptive set
  consensus in the affine model;
* :mod:`repro.analysis` — censuses, compactness, Sperner parity.

Quickstart::

    from repro import r_affine_of_adversary, t_resilient, setcon
    adversary = t_resilient(3, 1)
    task = r_affine_of_adversary(adversary)
    print(task.complex)           # the affine task R_A as a complex
    print(setcon(adversary))      # its agreement power

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and theorem.
"""

from .adversaries import (
    Adversary,
    AgreementFunction,
    agreement_function_of,
    build_catalogue,
    csize,
    figure5b_adversary,
    is_fair,
    k_concurrency_alpha,
    k_obstruction_free,
    setcon,
    symmetric_from_sizes,
    t_resilience_alpha,
    t_resilient,
    wait_free,
    wait_free_alpha,
)
from .core import (
    AffineTask,
    contention_complex,
    full_affine_task,
    r_affine,
    r_affine_of_adversary,
    r_k_obstruction_free,
    r_t_resilient,
)
from .tasks import (
    Task,
    binary_consensus_task,
    consensus_task,
    find_carried_map,
    general_task_solvable,
    k_test_and_set_task,
    leader_election_task,
    minimal_set_consensus,
    set_consensus_task,
    solves_set_consensus,
)
from .topology import (
    ChromaticComplex,
    ChrVertex,
    SimplicialComplex,
    chr_complex,
    chromatic_subdivision,
    standard_simplex,
)

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "AgreementFunction",
    "agreement_function_of",
    "build_catalogue",
    "csize",
    "figure5b_adversary",
    "is_fair",
    "k_concurrency_alpha",
    "k_obstruction_free",
    "setcon",
    "symmetric_from_sizes",
    "t_resilience_alpha",
    "t_resilient",
    "wait_free",
    "wait_free_alpha",
    "AffineTask",
    "contention_complex",
    "full_affine_task",
    "r_affine",
    "r_affine_of_adversary",
    "r_k_obstruction_free",
    "r_t_resilient",
    "Task",
    "binary_consensus_task",
    "consensus_task",
    "find_carried_map",
    "general_task_solvable",
    "k_test_and_set_task",
    "leader_election_task",
    "minimal_set_consensus",
    "set_consensus_task",
    "solves_set_consensus",
    "ChromaticComplex",
    "ChrVertex",
    "SimplicialComplex",
    "chr_complex",
    "chromatic_subdivision",
    "standard_simplex",
    "__version__",
]

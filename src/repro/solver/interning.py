"""Dense-integer interning of one FACT constraint problem.

The legacy :class:`~repro.tasks.solvability.MapSearch` spends its inner
loop hashing ``frozenset`` images of :class:`OutputVertex` tuples and
probing them against ``Delta``'s allowed-output sets.  The bitset
kernels instead intern everything **once per (affine, task) pair**:

* every output vertex that appears in any candidate domain gets a dense
  integer id, so a *set* of output vertices becomes a Python-int
  bitmask (one bit per id) and set union / membership become ``|`` and
  a hash probe on a small ``frozenset`` of ints;
* every affine vertex becomes its position in the legacy assignment
  order (the interner is built *from* a ``MapSearch``, so vertex order,
  candidate order and firing positions are identical by construction);
* every simplex constraint ``image(sigma) in Delta(carrier(sigma, s))``
  is pre-compiled into a :class:`CompiledConstraint`: the member
  positions plus the set of allowed image bitmasks.

On top of the compiled constraints the table memoizes **allowed-
candidate bitmasks**: for a constraint, a target position and the
bitmask of the already-chosen members, the set of candidates at the
target that complete an allowed image — computed once, then a single
``&`` per arrival at that position.  The memo is shared by the
tree-identical bitset kernel (target = firing position) and the
forward-checking kernel (any unassigned position).

Memo *misses* are vectorized with numpy when the interned output
universe fits one machine word: a miss tests every candidate (or, for
the GAC revision in :meth:`InternTable.supported_candidates`, every
live ``(source, target)`` candidate pair) against the constraint's
allowed-mask array in one ``isin`` call instead of a Python-level
probe per candidate.  The numpy paths are bit-identical to the scalar
fallbacks — they fill the same memos with the same masks — so kernels
never observe which path ran.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..tasks.solvability import MapSearch
from ..tasks.task import OutputVertex

try:  # numpy is optional: every vectorized path has a scalar fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
    _np = None

__all__ = ["CompiledConstraint", "InternTable"]

#: Below this many membership probes a memo miss stays scalar — numpy
#: call overhead would dominate the loop it replaces.
_VECTOR_MIN_PROBES = 8


class CompiledConstraint:
    """One simplex constraint over interned positions.

    ``positions`` are the simplex's vertices as assignment-order
    indices, ascending — so ``positions[-1]`` is the firing position
    (the constraint is fully assigned exactly when it is reached).
    ``allowed`` holds the bitmask of every allowed image that is
    reachable (images mentioning an output vertex no domain offers are
    dropped: no assignment can ever produce them).
    """

    __slots__ = ("positions", "allowed", "memo", "allowed_array")

    def __init__(
        self, positions: Tuple[int, ...], allowed: FrozenSet[int]
    ):
        self.positions = positions
        self.allowed = allowed
        #: ``(target_position, others_mask) -> candidate-index bitmask``
        self.memo: Dict[Tuple[int, int], int] = {}
        #: lazily-built sorted numpy view of ``allowed`` (vector path).
        self.allowed_array = None


class InternTable:
    """Interned view of a :class:`MapSearch` problem.

    Built from an already-constructed ``MapSearch`` so every ordering
    decision (vertex order, candidate order, firing assignment) is
    inherited rather than re-derived — the parity guarantees of the
    bitset kernel reduce to "same orders, same booleans".
    """

    def __init__(self, search: MapSearch):
        self.search = search
        vertices = search.vertices
        self.position: Dict = {v: i for i, v in enumerate(vertices)}

        # Output-vertex interning: ids are assigned in canonical domain
        # order (vertex order, then candidate order), so the id layout
        # is as deterministic as the search itself.
        self.out_index: Dict[OutputVertex, int] = {}
        #: per position, the bit of each candidate (candidate order).
        self.domain_bits: List[List[int]] = []
        for vertex in vertices:
            bits: List[int] = []
            for out in search.domains[vertex]:
                idx = self.out_index.setdefault(out, len(self.out_index))
                bits.append(1 << idx)
            self.domain_bits.append(bits)

        #: constraints indexed by firing position (legacy ``firing``).
        self.firing: List[List[CompiledConstraint]] = [[] for _ in vertices]
        #: constraints indexed by every member position (for the
        #: forward-checking kernel's propagation).
        self.involving: List[List[CompiledConstraint]] = [[] for _ in vertices]
        # Thousands of simplices share a handful of participation sets,
        # so the allowed-image mask set is computed once per
        # participation, not once per simplex.
        allowed_masks: Dict[FrozenSet, FrozenSet[int]] = {}
        for sigma in search.simplices:
            positions = tuple(
                sorted(self.position[v] for v in sigma)
            )
            participation = search.participation[sigma]
            allowed = allowed_masks.get(participation)
            if allowed is None:
                raw = search.task.allowed_outputs(participation)
                allowed = frozenset(
                    mask
                    for mask in (self._image_mask(image) for image in raw)
                    if mask is not None
                )
                allowed_masks[participation] = allowed
            constraint = CompiledConstraint(positions, allowed)
            self.firing[positions[-1]].append(constraint)
            for position in positions:
                self.involving[position].append(constraint)

        #: vector paths need every mask to fit one unsigned word.
        self.vectorized = _np is not None and len(self.out_index) <= 63

    def _image_mask(self, image) -> Optional[int]:
        """Bitmask of an allowed image, or ``None`` if unreachable."""
        mask = 0
        for out in image:
            idx = self.out_index.get(out)
            if idx is None:
                return None
            mask |= 1 << idx
        return mask

    # ------------------------------------------------------------------
    def allowed_candidates(
        self, constraint: CompiledConstraint, target: int, others_mask: int
    ) -> int:
        """Candidates at ``target`` completing an allowed image.

        ``others_mask`` is the OR of the chosen bits of every *other*
        assigned member of the constraint; the result is a bitmask over
        candidate **indices** of ``target``'s domain.  Memoized: search
        trees revisit the same ``(target, others)`` context constantly,
        and distinct output choices at non-member positions collapse
        onto one memo entry.
        """
        key = (target, others_mask)
        mask = constraint.memo.get(key)
        if mask is None:
            bits = self.domain_bits[target]
            if self.vectorized and len(bits) >= _VECTOR_MIN_PROBES:
                mask = self._vector_candidates(
                    constraint, bits, others_mask
                )
            else:
                mask = 0
                allowed = constraint.allowed
                for index, bit in enumerate(bits):
                    if (others_mask | bit) in allowed:
                        mask |= 1 << index
            constraint.memo[key] = mask
        return mask

    def supported_candidates(
        self,
        constraint: CompiledConstraint,
        target: int,
        others_mask: int,
        source: int,
        alive: int,
    ) -> int:
        """Union of allowed candidates at ``target`` over the live
        candidates of ``source`` — the GAC revision step.

        Equivalent to OR-ing :meth:`allowed_candidates` over every live
        source candidate, and memoized through the same per-call memo,
        but the *misses* are batched: one vectorized membership test
        covers every missing ``(source candidate, target candidate)``
        pair instead of a Python probe per pair.
        """
        memo = constraint.memo
        source_bits = self.domain_bits[source]
        supported = 0
        missing: List[int] = []
        for candidate, bit in enumerate(source_bits):
            if not (alive >> candidate) & 1:
                continue
            context = others_mask | bit
            mask = memo.get((target, context))
            if mask is None:
                missing.append(context)
            else:
                supported |= mask
        if not missing:
            return supported
        target_bits = self.domain_bits[target]
        probes = len(missing) * len(target_bits)
        if self.vectorized and probes >= _VECTOR_MIN_PROBES:
            contexts = _np.fromiter(
                missing, dtype=_np.uint64, count=len(missing)
            )
            bits_arr = _np.fromiter(
                target_bits, dtype=_np.uint64, count=len(target_bits)
            )
            hits = _np.isin(
                contexts[:, None] | bits_arr[None, :],
                self._allowed_array(constraint),
            )
            for row, context in enumerate(missing):
                mask = 0
                for index in _np.flatnonzero(hits[row]):
                    mask |= 1 << int(index)
                memo[(target, context)] = mask
                supported |= mask
        else:
            allowed = constraint.allowed
            for context in missing:
                mask = 0
                for index, bit in enumerate(target_bits):
                    if (context | bit) in allowed:
                        mask |= 1 << index
                memo[(target, context)] = mask
                supported |= mask
        return supported

    # -- numpy internals ------------------------------------------------
    def _allowed_array(self, constraint: CompiledConstraint):
        array = constraint.allowed_array
        if array is None:
            array = _np.fromiter(
                constraint.allowed,
                dtype=_np.uint64,
                count=len(constraint.allowed),
            )
            array.sort()
            constraint.allowed_array = array
        return array

    def _vector_candidates(
        self, constraint: CompiledConstraint, bits: List[int], others: int
    ) -> int:
        bits_arr = _np.fromiter(bits, dtype=_np.uint64, count=len(bits))
        hits = _np.isin(
            _np.uint64(others) | bits_arr, self._allowed_array(constraint)
        )
        mask = 0
        for index in _np.flatnonzero(hits):
            mask |= 1 << int(index)
        return mask

"""Dense-integer interning of one FACT constraint problem.

The legacy :class:`~repro.tasks.solvability.MapSearch` spends its inner
loop hashing ``frozenset`` images of :class:`OutputVertex` tuples and
probing them against ``Delta``'s allowed-output sets.  The bitset
kernels instead intern everything **once per (affine, task) pair**:

* every output vertex that appears in any candidate domain gets a dense
  integer id, so a *set* of output vertices becomes a Python-int
  bitmask (one bit per id) and set union / membership become ``|`` and
  a hash probe on a small ``frozenset`` of ints;
* every affine vertex becomes its position in the legacy assignment
  order (the interner is built *from* a ``MapSearch``, so vertex order,
  candidate order and firing positions are identical by construction);
* every simplex constraint ``image(sigma) in Delta(carrier(sigma, s))``
  is pre-compiled into a :class:`CompiledConstraint`: the member
  positions plus the set of allowed image bitmasks.

On top of the compiled constraints the table memoizes **allowed-
candidate bitmasks**: for a constraint, a target position and the
bitmask of the already-chosen members, the set of candidates at the
target that complete an allowed image — computed once, then a single
``&`` per arrival at that position.  The memo is shared by the
tree-identical bitset kernel (target = firing position) and the
forward-checking kernel (any unassigned position).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..tasks.solvability import MapSearch
from ..tasks.task import OutputVertex

__all__ = ["CompiledConstraint", "InternTable"]


class CompiledConstraint:
    """One simplex constraint over interned positions.

    ``positions`` are the simplex's vertices as assignment-order
    indices, ascending — so ``positions[-1]`` is the firing position
    (the constraint is fully assigned exactly when it is reached).
    ``allowed`` holds the bitmask of every allowed image that is
    reachable (images mentioning an output vertex no domain offers are
    dropped: no assignment can ever produce them).
    """

    __slots__ = ("positions", "allowed", "memo")

    def __init__(
        self, positions: Tuple[int, ...], allowed: FrozenSet[int]
    ):
        self.positions = positions
        self.allowed = allowed
        #: ``(target_position, others_mask) -> candidate-index bitmask``
        self.memo: Dict[Tuple[int, int], int] = {}


class InternTable:
    """Interned view of a :class:`MapSearch` problem.

    Built from an already-constructed ``MapSearch`` so every ordering
    decision (vertex order, candidate order, firing assignment) is
    inherited rather than re-derived — the parity guarantees of the
    bitset kernel reduce to "same orders, same booleans".
    """

    def __init__(self, search: MapSearch):
        self.search = search
        vertices = search.vertices
        self.position: Dict = {v: i for i, v in enumerate(vertices)}

        # Output-vertex interning: ids are assigned in canonical domain
        # order (vertex order, then candidate order), so the id layout
        # is as deterministic as the search itself.
        self.out_index: Dict[OutputVertex, int] = {}
        #: per position, the bit of each candidate (candidate order).
        self.domain_bits: List[List[int]] = []
        for vertex in vertices:
            bits: List[int] = []
            for out in search.domains[vertex]:
                idx = self.out_index.setdefault(out, len(self.out_index))
                bits.append(1 << idx)
            self.domain_bits.append(bits)

        #: constraints indexed by firing position (legacy ``firing``).
        self.firing: List[List[CompiledConstraint]] = [[] for _ in vertices]
        #: constraints indexed by every member position (for the
        #: forward-checking kernel's propagation).
        self.involving: List[List[CompiledConstraint]] = [[] for _ in vertices]
        # Thousands of simplices share a handful of participation sets,
        # so the allowed-image mask set is computed once per
        # participation, not once per simplex.
        allowed_masks: Dict[FrozenSet, FrozenSet[int]] = {}
        for sigma in search.simplices:
            positions = tuple(
                sorted(self.position[v] for v in sigma)
            )
            participation = search.participation[sigma]
            allowed = allowed_masks.get(participation)
            if allowed is None:
                raw = search.task.allowed_outputs(participation)
                allowed = frozenset(
                    mask
                    for mask in (self._image_mask(image) for image in raw)
                    if mask is not None
                )
                allowed_masks[participation] = allowed
            constraint = CompiledConstraint(positions, allowed)
            self.firing[positions[-1]].append(constraint)
            for position in positions:
                self.involving[position].append(constraint)

    def _image_mask(self, image) -> Optional[int]:
        """Bitmask of an allowed image, or ``None`` if unreachable."""
        mask = 0
        for out in image:
            idx = self.out_index.get(out)
            if idx is None:
                return None
            mask |= 1 << idx
        return mask

    # ------------------------------------------------------------------
    def allowed_candidates(
        self, constraint: CompiledConstraint, target: int, others_mask: int
    ) -> int:
        """Candidates at ``target`` completing an allowed image.

        ``others_mask`` is the OR of the chosen bits of every *other*
        assigned member of the constraint; the result is a bitmask over
        candidate **indices** of ``target``'s domain.  Memoized: search
        trees revisit the same ``(target, others)`` context constantly,
        and distinct output choices at non-member positions collapse
        onto one memo entry.
        """
        key = (target, others_mask)
        mask = constraint.memo.get(key)
        if mask is None:
            mask = 0
            allowed = constraint.allowed
            for index, bit in enumerate(self.domain_bits[target]):
                if (others_mask | bit) in allowed:
                    mask |= 1 << index
            constraint.memo[key] = mask
        return mask

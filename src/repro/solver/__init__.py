"""repro.solver — bitset constraint kernels behind a typed solve API.

The FACT decision procedure is a constraint problem; this package is
its production kernel.  :class:`SolveRequest`/:class:`SolveResult` are
the typed query surface the engine, service and CLI share;
:class:`BitsetKernel` is the default tree-identical integer rewrite of
the legacy :class:`~repro.tasks.solvability.MapSearch` (same verdicts,
maps *and node counts* — legacy stays on as the differential-testing
oracle); :class:`ForwardCheckingKernel` is the opt-in pruning kernel;
:class:`SymmetryKernel` quotients the DFS by verified process-symmetry
orbits (symmetric adversaries are the paper-central case);
:func:`split_request` slices a request for the engine's split-retry and
:func:`portfolio_requests` fans one request out to the racing kernels.
See docs/solver.md.
"""

from .api import (
    DEFAULT_KERNEL,
    KERNEL_BITSET,
    KERNEL_FC,
    KERNEL_LEGACY,
    KERNEL_SYMMETRY,
    KERNELS,
    TREE_IDENTICAL_KERNELS,
    SolveRequest,
    SolveResult,
    as_solve_request,
    make_searcher,
    run_request,
    solve_request_from_payload,
)
from .interning import CompiledConstraint, InternTable
from .kernel import BitsetKernel, ForwardCheckingKernel
from .split import PORTFOLIO_KERNELS, portfolio_requests, split_request
from .symmetry import Automorphism, SymmetryKernel, automorphism_group

__all__ = [
    "Automorphism",
    "BitsetKernel",
    "CompiledConstraint",
    "DEFAULT_KERNEL",
    "ForwardCheckingKernel",
    "InternTable",
    "KERNELS",
    "KERNEL_BITSET",
    "KERNEL_FC",
    "KERNEL_LEGACY",
    "KERNEL_SYMMETRY",
    "PORTFOLIO_KERNELS",
    "SolveRequest",
    "SolveResult",
    "SymmetryKernel",
    "TREE_IDENTICAL_KERNELS",
    "as_solve_request",
    "automorphism_group",
    "make_searcher",
    "portfolio_requests",
    "run_request",
    "solve_request_from_payload",
    "split_request",
]

"""repro.solver — bitset constraint kernels behind a typed solve API.

The FACT decision procedure is a constraint problem; this package is
its production kernel.  :class:`SolveRequest`/:class:`SolveResult` are
the typed query surface the engine, service and CLI share;
:class:`BitsetKernel` is the default tree-identical integer rewrite of
the legacy :class:`~repro.tasks.solvability.MapSearch` (same verdicts,
maps *and node counts* — legacy stays on as the differential-testing
oracle); :class:`ForwardCheckingKernel` is the opt-in pruning kernel;
:func:`split_request` slices a request for the engine's portfolio
split-retry.  See docs/solver.md.
"""

from .api import (
    DEFAULT_KERNEL,
    KERNEL_BITSET,
    KERNEL_FC,
    KERNEL_LEGACY,
    KERNELS,
    TREE_IDENTICAL_KERNELS,
    SolveRequest,
    SolveResult,
    as_solve_request,
    make_searcher,
    run_request,
    solve_request_from_payload,
)
from .interning import CompiledConstraint, InternTable
from .kernel import BitsetKernel, ForwardCheckingKernel
from .split import split_request

__all__ = [
    "BitsetKernel",
    "CompiledConstraint",
    "DEFAULT_KERNEL",
    "ForwardCheckingKernel",
    "InternTable",
    "KERNELS",
    "KERNEL_BITSET",
    "KERNEL_FC",
    "KERNEL_LEGACY",
    "SolveRequest",
    "SolveResult",
    "TREE_IDENTICAL_KERNELS",
    "as_solve_request",
    "make_searcher",
    "run_request",
    "solve_request_from_payload",
    "split_request",
]

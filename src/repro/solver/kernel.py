"""The bitset search kernels for the FACT decision procedure.

Two kernels, one contract:

* :class:`BitsetKernel` — the default.  **Tree-identical** to the
  legacy :class:`~repro.tasks.solvability.MapSearch`: same vertex
  order, same candidate order, same per-candidate consistency boolean,
  hence the same verdicts, the same returned maps *and the same node
  counts*.  All the speedup comes from doing each consistency test as
  one bit probe against a memoized allowed-candidate mask instead of
  building and hashing a ``frozenset`` image per firing simplex.
  Because the tree is identical, budget stubs, resume seeding and
  unsolvable certificates (which replay ``nodes_explored``
  node-for-node) are interchangeable with legacy ones.

* :class:`ForwardCheckingKernel` — opt-in (``kernel="fc"``).  Adds
  forward checking plus bounded arc-consistency propagation with
  conflict-weighted revision ordering.  Pruning is *sound* and the
  static variable order and canonical value order are preserved, so
  consistent leaves are enumerated in the same lexicographic order as
  legacy: the verdict **and the returned map** still match, but node
  counts do not — the engine caches its results under kernel-specific
  keys and never uses it for certificates or resume.

Both kernels expose the attribute surface certificate extraction reads
(``vertices``, ``domains``, ``nodes_explored``, ``domains_overridden``)
by delegating to the :class:`MapSearch` they are built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import obs
from ..core.affine import AffineTask
from ..tasks.solvability import (
    DomainOverrides,
    MapSearch,
    SearchBudgetExceeded,
    resolve_budget,
)
from ..tasks.task import OutputVertex, Task
from ..topology.chromatic import ChrVertex
from .interning import InternTable

__all__ = ["BitsetKernel", "ForwardCheckingKernel"]


def _shared_setup(affine: AffineTask, task: Task):
    """The interned problem for ``(affine, task)``, built once per pair.

    The ISSUE-level contract of this package: interning happens once
    per (affine, task) pair, not once per query.  The cache lives on
    the task object (``task._solver_setup``), so its lifetime is the
    task's own — no global registry to leak in a long-lived server —
    and repeated queries (the service traffic pattern, the engine's
    split-retry escalations, resume) pay only the search, not the
    setup.  The cached ``MapSearch`` and :class:`InternTable` are
    read-only to the kernels (per-search state lives on the kernel
    instance); the shared allowed-candidate memos are the point — they
    warm up across queries.
    """
    cache = getattr(task, "_solver_setup", None)
    if cache is None:
        cache = {}
        task._solver_setup = cache
    entry = cache.get(affine)
    if entry is None:
        with obs.span("solver.setup", shared=True) as setup_span:
            search = MapSearch(affine, task)
            entry = (search, InternTable(search))
            setup_span.set_attr("vertices", len(search.vertices))
        cache[affine] = entry
    return entry


class _KernelBase:
    """Shared setup: compose a ``MapSearch`` and intern it.

    Without ``domain_overrides`` the composed search and tables come
    from the per-(affine, task) cache (see :func:`_shared_setup`);
    overridden domains change the candidate index layout, so sliced
    searches build fresh.
    """

    def __init__(
        self,
        affine: AffineTask,
        task: Task,
        domain_overrides: Optional[DomainOverrides] = None,
    ):
        if domain_overrides:
            with obs.span("solver.setup", overridden=True) as setup_span:
                self._search = MapSearch(
                    affine, task, domain_overrides=domain_overrides
                )
                self.tables = InternTable(self._search)
                setup_span.set_attr(
                    "vertices", len(self._search.vertices)
                )
        else:
            self._search, self.tables = _shared_setup(affine, task)
        self.nodes_explored = 0

    # -- the attribute surface certificate extraction reads ------------
    @property
    def affine(self) -> AffineTask:
        return self._search.affine

    @property
    def task(self) -> Task:
        return self._search.task

    @property
    def vertices(self):
        return self._search.vertices

    @property
    def domains(self):
        return self._search.domains

    @property
    def domains_overridden(self) -> bool:
        return self._search.domains_overridden


class BitsetKernel(_KernelBase):
    """Tree-identical bitset rewrite of the legacy backtracking search."""

    kernel = "bitset"

    def search(
        self,
        budget: Optional[int] = None,
        resume_from: Optional[Dict[ChrVertex, OutputVertex]] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Optional[Dict[ChrVertex, OutputVertex]]:
        """Drop-in for :meth:`MapSearch.search` (same tree, same counts)."""
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        self.nodes_explored = 0
        search = self._search
        tables = self.tables
        vertices = search.vertices
        total = len(vertices)
        if total == 0:
            return {}
        domain_lists = [search.domains[v] for v in vertices]
        domain_bits = tables.domain_bits

        choice = [0] * total  # next candidate index to try per depth
        chosen_bit = [0] * total  # output bit of the assignment per depth
        chosen_idx = [0] * total  # candidate index of the assignment
        ok_mask = [0] * total  # allowed-candidate mask on arrival
        ok_valid = [False] * total

        depth = 0
        if resume_from:
            depth = self._seed(choice, chosen_bit, chosen_idx, resume_from)
            if depth == total:
                return {
                    vertices[i]: domain_lists[i][chosen_idx[i]]
                    for i in range(total)
                }
        while True:
            if not ok_valid[depth]:
                ok_mask[depth] = self._arrival_mask(depth, chosen_bit)
                ok_valid[depth] = True
            ok = ok_mask[depth]
            bits = domain_bits[depth]
            size = len(bits)
            index = choice[depth]
            advanced = False
            nodes = self.nodes_explored
            while index < size:
                index += 1
                nodes += 1
                if budget is not None and nodes > budget:
                    self.nodes_explored = nodes
                    choice[depth] = index
                    raise SearchBudgetExceeded(
                        f"exceeded {budget} nodes",
                        nodes_explored=nodes,
                        partial_assignment={
                            vertices[i]: domain_lists[i][chosen_idx[i]]
                            for i in range(depth)
                        },
                    )
                if (ok >> (index - 1)) & 1:
                    chosen_bit[depth] = bits[index - 1]
                    chosen_idx[depth] = index - 1
                    advanced = True
                    break
            self.nodes_explored = nodes
            choice[depth] = index
            if advanced:
                if depth + 1 == total:
                    return {
                        vertices[i]: domain_lists[i][chosen_idx[i]]
                        for i in range(total)
                    }
                depth += 1
                choice[depth] = 0
                ok_valid[depth] = False
            else:
                depth -= 1
                if depth < 0:
                    return None

    # ------------------------------------------------------------------
    def _arrival_mask(self, depth: int, chosen_bit: List[int]) -> int:
        """AND of the allowed-candidate masks of every firing constraint."""
        tables = self.tables
        ok = (1 << len(tables.domain_bits[depth])) - 1
        for constraint in tables.firing[depth]:
            others = 0
            for position in constraint.positions:
                if position != depth:
                    others |= chosen_bit[position]
            ok &= tables.allowed_candidates(constraint, depth, others)
            if not ok:
                break
        return ok

    def _seed(
        self,
        choice: List[int],
        chosen_bit: List[int],
        chosen_idx: List[int],
        resume_from: Dict[ChrVertex, OutputVertex],
    ) -> int:
        """Rebuild the DFS stack from a partial assignment.

        Mirrors ``MapSearch._seed`` exactly, including its error
        messages, so stubs flow between kernels unchanged.
        """
        search = self._search
        tables = self.tables
        vertices = search.vertices
        depth = 0
        for vertex in vertices:
            if vertex not in resume_from:
                break
            depth += 1
        extra = set(resume_from) - set(vertices[:depth])
        if extra:
            raise ValueError(
                "resume assignment is not an initial segment of the "
                f"vertex order ({len(extra)} stray entries)"
            )
        for index in range(depth):
            vertex = vertices[index]
            candidate = resume_from[vertex]
            domain = search.domains[vertex]
            if candidate not in domain:
                raise ValueError(
                    f"resume candidate for {vertex!r} is outside its domain"
                )
            position = domain.index(candidate)
            chosen_bit[index] = tables.domain_bits[index][position]
            chosen_idx[index] = position
            for constraint in tables.firing[index]:
                image = 0
                for member in constraint.positions:
                    image |= chosen_bit[member]
                if image not in constraint.allowed:
                    raise ValueError(
                        "resume assignment violates a constraint"
                    )
            choice[index] = position + 1
        if depth < len(vertices):
            choice[depth] = 0
        return depth


class ForwardCheckingKernel(_KernelBase):
    """Forward checking + bounded arc-consistency propagation.

    On every assignment at depth ``d``:

    * constraints containing ``d`` whose members are all assigned are
      checked directly (one mask probe);
    * constraints with exactly one unassigned member have that member's
      live domain restricted to the memoized allowed-candidate mask
      (classic forward checking);
    * every restriction enqueues its position; the queue is revised to
      a bounded generalized arc consistency over constraints with
      exactly two unassigned members (supported values at one are those
      with a live supporting value at the other), ordered by descending
      conflict weight — positions whose domains wiped out most often
      propagate first — with position index as the deterministic
      tie-break.

    All pruning is sound, the variable order is static and candidate
    order canonical, so the first consistent leaf — the returned map —
    is the same one legacy/bitset find.  Node counts differ (pruned
    candidates are never visited), so this kernel is cached separately
    and excluded from certificates and resume.
    """

    kernel = "fc"

    def __init__(
        self,
        affine: AffineTask,
        task: Task,
        domain_overrides: Optional[DomainOverrides] = None,
    ):
        super().__init__(affine, task, domain_overrides=domain_overrides)
        self.conflict_weight = [0] * len(self._search.vertices)

    def search(
        self,
        budget: Optional[int] = None,
        resume_from: Optional[Dict[ChrVertex, OutputVertex]] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Optional[Dict[ChrVertex, OutputVertex]]:
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        if resume_from:
            raise ValueError(
                "the fc kernel explores a pruned tree and cannot honor "
                "resume_from; use the bitset or legacy kernel to resume"
            )
        self.nodes_explored = 0
        search = self._search
        tables = self.tables
        vertices = search.vertices
        total = len(vertices)
        if total == 0:
            return {}
        domain_lists = [search.domains[v] for v in vertices]
        domain_bits = tables.domain_bits

        live = [(1 << len(domain_bits[d])) - 1 for d in range(total)]
        choice = [0] * total
        chosen_bit = [0] * total
        chosen_idx = [0] * total
        trails: List[Optional[List]] = [None] * total

        depth = 0
        while True:
            bits = domain_bits[depth]
            size = len(bits)
            index = choice[depth]
            alive = live[depth]
            advanced = False
            while index < size:
                candidate = index
                index += 1
                if not (alive >> candidate) & 1:
                    continue  # pruned by an ancestor: never visited
                self.nodes_explored += 1
                if (
                    budget is not None
                    and self.nodes_explored > budget
                ):
                    choice[depth] = index
                    raise SearchBudgetExceeded(
                        f"exceeded {budget} nodes",
                        nodes_explored=self.nodes_explored,
                        partial_assignment={
                            vertices[i]: domain_lists[i][chosen_idx[i]]
                            for i in range(depth)
                        },
                    )
                chosen_bit[depth] = bits[candidate]
                chosen_idx[depth] = candidate
                trail: List = []
                if self._propagate(depth, chosen_bit, live, trail):
                    trails[depth] = trail
                    advanced = True
                    break
                self._undo(trail, live)
            choice[depth] = index
            if advanced:
                if depth + 1 == total:
                    mapping = {
                        vertices[i]: domain_lists[i][chosen_idx[i]]
                        for i in range(total)
                    }
                    self._unwind(trails, live, depth)
                    return mapping
                depth += 1
                choice[depth] = 0
            else:
                depth -= 1
                if depth < 0:
                    return None
                self._undo(trails[depth], live)
                trails[depth] = None

    # ------------------------------------------------------------------
    def _propagate(
        self,
        depth: int,
        chosen_bit: List[int],
        live: List[int],
        trail: List,
    ) -> bool:
        """Forward-check then propagate; ``False`` on a domain wipeout."""
        tables = self.tables
        queue: List[int] = []
        for constraint in tables.involving[depth]:
            positions = constraint.positions
            unassigned = [p for p in positions if p > depth]
            if not unassigned:
                image = 0
                for member in positions:
                    image |= chosen_bit[member]
                if image not in constraint.allowed:
                    self.conflict_weight[depth] += 1
                    return False
            elif len(unassigned) == 1:
                target = unassigned[0]
                others = 0
                for member in positions:
                    if member <= depth:
                        others |= chosen_bit[member]
                mask = tables.allowed_candidates(constraint, target, others)
                if not self._restrict(target, mask, live, trail, queue):
                    return False
        weights = self.conflict_weight
        while queue:
            queue.sort(key=lambda p: (-weights[p], p))
            source = queue.pop(0)
            for constraint in tables.involving[source]:
                positions = constraint.positions
                unassigned = [p for p in positions if p > depth]
                if len(unassigned) != 2 or source not in unassigned:
                    continue
                target = (
                    unassigned[0]
                    if unassigned[1] == source
                    else unassigned[1]
                )
                others = 0
                for member in positions:
                    if member <= depth:
                        others |= chosen_bit[member]
                supported = tables.supported_candidates(
                    constraint, target, others, source, live[source]
                )
                if not self._restrict(
                    target, supported, live, trail, queue
                ):
                    return False
        return True

    def _restrict(
        self,
        position: int,
        mask: int,
        live: List[int],
        trail: List,
        queue: List[int],
    ) -> bool:
        narrowed = live[position] & mask
        if narrowed == live[position]:
            return True
        trail.append((position, live[position]))
        live[position] = narrowed
        if not narrowed:
            self.conflict_weight[position] += 1
            return False
        if position not in queue:
            queue.append(position)
        return True

    @staticmethod
    def _undo(trail: Optional[List], live: List[int]) -> None:
        if trail:
            for position, previous in reversed(trail):
                live[position] = previous

    def _unwind(
        self, trails: List[Optional[List]], live: List[int], depth: int
    ) -> None:
        """Restore all live domains after a successful search."""
        for level in range(depth, -1, -1):
            self._undo(trails[level], live)
            trails[level] = None

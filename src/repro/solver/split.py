"""Portfolio splitting of a solve request into disjoint slices.

Wraps :func:`~repro.tasks.solvability.split_search_domains` at the
typed level: a budget-stalled :class:`~repro.solver.api.SolveRequest`
is partitioned into sub-requests over disjoint bitmask slices of one
vertex's candidate domain.  Running the slices in list order visits
assignments in exactly the order the undivided search would, so the
first slice that finds a map returns the same map the full search
returns — the property the engine's split-retry relies on.

Slices inherit the parent's kernel and drop any ``resume`` seed (a
resume prefix encodes the *unsliced* tree).  Because sub-requests are
``SolveRequest`` instances, their override tuples are normalized to
structural ``vertex_key`` order at construction — never ``repr`` or
dict insertion order — which is what makes split slices platform- and
hash-seed-stable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from ..tasks.solvability import split_search_domains
from .api import SolveRequest

__all__ = ["split_request"]


def split_request(request: SolveRequest, parts: int = 2) -> List[SolveRequest]:
    """Partition a request's search space into disjoint sub-requests.

    Returns ``[]`` when the space has no splittable domain (single
    branch); the caller retries the undivided request with a larger
    budget instead.
    """
    sub_spaces = split_search_domains(
        request.affine,
        request.task,
        parts=parts,
        domain_overrides=request.overrides_dict(),
    )
    return [
        replace(request, domain_overrides=overrides, resume=None)
        for overrides in sub_spaces
    ]

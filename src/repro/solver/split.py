"""Portfolio splitting of a solve request into disjoint slices.

Wraps :func:`~repro.tasks.solvability.split_search_domains` at the
typed level: a budget-stalled :class:`~repro.solver.api.SolveRequest`
is partitioned into sub-requests over disjoint bitmask slices of one
vertex's candidate domain.  Running the slices in list order visits
assignments in exactly the order the undivided search would, so the
first slice that finds a map returns the same map the full search
returns — the property the engine's split-retry relies on.

Slices inherit the parent's kernel and drop any ``resume`` seed (a
resume prefix encodes the *unsliced* tree).  Because sub-requests are
``SolveRequest`` instances, their override tuples are normalized to
structural ``vertex_key`` order at construction — never ``repr`` or
dict insertion order — which is what makes split slices platform- and
hash-seed-stable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

from ..tasks.solvability import split_search_domains
from .api import (
    KERNEL_BITSET,
    KERNEL_FC,
    KERNEL_SYMMETRY,
    KERNELS,
    SolveRequest,
)

__all__ = ["PORTFOLIO_KERNELS", "portfolio_requests", "split_request"]

#: The kernels a ``portfolio`` job races, in deterministic lane order.
PORTFOLIO_KERNELS = (KERNEL_BITSET, KERNEL_FC, KERNEL_SYMMETRY)


def split_request(request: SolveRequest, parts: int = 2) -> List[SolveRequest]:
    """Partition a request's search space into disjoint sub-requests.

    Returns ``[]`` when the space has no splittable domain (single
    branch); the caller retries the undivided request with a larger
    budget instead.
    """
    sub_spaces = split_search_domains(
        request.affine,
        request.task,
        parts=parts,
        domain_overrides=request.overrides_dict(),
    )
    return [
        replace(request, domain_overrides=overrides, resume=None)
        for overrides in sub_spaces
    ]


def portfolio_requests(
    request: SolveRequest,
    kernels: Sequence[str] = PORTFOLIO_KERNELS,
) -> List[SolveRequest]:
    """One request per racing kernel, covering the *same* search space.

    The portfolio job kind races these on the worker pool: every lane
    decides the identical query, so the first verdict is *the* verdict
    and the losers are pure redundancy to cancel.  Any ``resume`` seed
    is dropped (only tree-identical kernels can honor one, and a race
    must start every lane from the same line); overrides are kept —
    sliced races are still races over one slice.
    """
    if not kernels:
        raise ValueError("a portfolio needs at least one kernel")
    for kernel in kernels:
        if kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}"
            )
    return [
        replace(request, kernel=kernel, resume=None) for kernel in kernels
    ]

"""Typed solve API: :class:`SolveRequest` in, :class:`SolveResult` out.

The engine's ``solve`` jobs historically carried positional 4/5-element
payload tuples ``(affine, task, budget, overrides[, resume])``.  This
module replaces them with a frozen, hashable, canonically-normalized
:class:`SolveRequest` — the single value that flows through
``Engine.solve``/``solve_many``/``resume_solve``, the service batcher
and the CLI — and a :class:`SolveResult` carrying the verdict, the map,
the node count and the kernel that produced them.

Normalization happens at construction: ``domain_overrides`` and
``resume`` mappings are flattened to tuples of pairs sorted by the
structural :func:`~repro.topology.simplex.vertex_key`, never by
``repr`` or hash order — so two requests describing the same slice are
equal, share one cache digest, and split slices are platform-stable.

Legacy tuple payloads remain accepted everywhere through
:func:`as_solve_request`, a one-line adapter that emits a
``DeprecationWarning`` (suppressed on the service wire, where tuples
are the protocol-v1 format and not a deprecated call site).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .. import obs
from ..core.affine import AffineTask
from ..tasks.solvability import MapSearch
from ..tasks.task import OutputVertex, Task
from ..topology.chromatic import ChrVertex
from ..topology.simplex import vertex_key
from .kernel import BitsetKernel, ForwardCheckingKernel

__all__ = [
    "DEFAULT_KERNEL",
    "KERNELS",
    "KERNEL_BITSET",
    "KERNEL_FC",
    "KERNEL_LEGACY",
    "KERNEL_SYMMETRY",
    "SolveRequest",
    "SolveResult",
    "TREE_IDENTICAL_KERNELS",
    "as_solve_request",
    "make_searcher",
    "run_request",
    "setup_digest",
    "solve_request_from_payload",
]

KERNEL_LEGACY = "legacy"
KERNEL_BITSET = "bitset"
KERNEL_FC = "fc"
KERNEL_SYMMETRY = "symmetry"
#: Every selectable kernel, in documentation order.
KERNELS = (KERNEL_LEGACY, KERNEL_BITSET, KERNEL_FC, KERNEL_SYMMETRY)
#: The kernel used when none is requested: tree-identical to legacy.
DEFAULT_KERNEL = KERNEL_BITSET

#: Parity classes: kernels whose search tree — verdicts, maps *and*
#: node counts — is identical to legacy ``MapSearch``.  Only these may
#: back certificates and resume seeding.
TREE_IDENTICAL_KERNELS = frozenset({KERNEL_LEGACY, KERNEL_BITSET})


def _normalize_pairs(value, what: str):
    """Flatten a vertex-keyed mapping to a vertex_key-sorted pair tuple."""
    if not value:
        return None
    if isinstance(value, dict):
        items = list(value.items())
    else:
        items = [tuple(pair) for pair in value]
    normalized = []
    for vertex, payload in items:
        if what == "domain_overrides":
            payload = tuple(payload)
        normalized.append((vertex, payload))
    normalized.sort(key=lambda pair: vertex_key(pair[0]))
    return tuple(normalized)


@dataclass(frozen=True)
class SolveRequest:
    """One FACT solvability query, canonically normalized.

    ``domain_overrides`` and ``resume`` accept either mappings or pair
    sequences and are stored as vertex_key-sorted tuples of pairs —
    hashable, order-independent, and stable across platforms and hash
    seeds (this ordering *is* the split-slice stability fix).
    """

    affine: AffineTask
    task: Task
    budget: Optional[int] = None
    domain_overrides: Optional[Tuple] = None
    resume: Optional[Tuple] = None
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self):
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNELS}"
            )
        object.__setattr__(
            self,
            "domain_overrides",
            _normalize_pairs(self.domain_overrides, "domain_overrides"),
        )
        object.__setattr__(
            self, "resume", _normalize_pairs(self.resume, "resume")
        )

    # ------------------------------------------------------------------
    def overrides_dict(self):
        """The ``MapSearch`` view of ``domain_overrides`` (or ``None``)."""
        if self.domain_overrides is None:
            return None
        return {vertex: outs for vertex, outs in self.domain_overrides}

    def resume_dict(self):
        """The ``search(resume_from=...)`` view of ``resume`` (or ``None``)."""
        if self.resume is None:
            return None
        return {vertex: out for vertex, out in self.resume}

    def legacy_payload(self) -> Tuple:
        """The positional tuple this request replaces (for the wire)."""
        base = (
            self.affine,
            self.task,
            self.budget,
            self.overrides_dict(),
        )
        if self.resume is not None:
            return base + (self.resume_dict(),)
        return base

    def setup_digest(self) -> str:
        """Digest of the solver setup this request would build/reuse."""
        return setup_digest(self.affine, self.task)


@dataclass(frozen=True)
class SolveResult:
    """The outcome of one solve: verdict, map, node count, kernel."""

    verdict: str  # "solvable" | "unsolvable"
    mapping: Optional[Dict[ChrVertex, OutputVertex]]
    nodes: int
    kernel: str = DEFAULT_KERNEL

    @property
    def solvable(self) -> bool:
        return self.verdict == "solvable"

    def as_pair(self) -> Tuple[Optional[Dict], int]:
        """The legacy ``(mapping, nodes_explored)`` value shape."""
        return (self.mapping, self.nodes)


def setup_digest(affine: AffineTask, task: Task) -> str:
    """The content address of one ``(affine, task)`` solver setup.

    The expensive part of a solve — the interned ``MapSearch`` tables
    the bitset kernel caches on ``task._solver_setup`` — depends only
    on the ``(affine, task)`` pair, never on budgets, overrides or
    resume seeds.  This digest therefore identifies the *warm state* a
    request reuses, and is what :class:`repro.workers.WorkerPool` routes
    job affinity by: a worker that has built this setup keeps receiving
    the requests that hit it.
    """
    # Late import: repro.engine.serialize imports this module.
    from ..engine.serialize import digest

    return digest(("repro.solver.setup", affine, task))


# ----------------------------------------------------------------------
# Payload adapters
# ----------------------------------------------------------------------
def solve_request_from_payload(
    payload: Tuple, kernel: str = DEFAULT_KERNEL
) -> SolveRequest:
    """Build a request from a positional 4/5-tuple (no deprecation)."""
    if not 4 <= len(payload) <= 5:
        raise ValueError(
            f"solve payload must have 4 or 5 elements, got {len(payload)}"
        )
    affine, task, budget, overrides = payload[:4]
    resume = payload[4] if len(payload) == 5 else None
    return SolveRequest(
        affine=affine,
        task=task,
        budget=budget,
        domain_overrides=overrides or None,
        resume=resume or None,
        kernel=kernel,
    )


def as_solve_request(
    payload, *, kernel: str = DEFAULT_KERNEL, warn: bool = True
) -> SolveRequest:
    """Coerce a solve payload — typed or legacy tuple — to a request.

    Accepts a :class:`SolveRequest`, a 1-tuple wrapping one (the typed
    job payload shape), or a legacy positional 4/5-tuple.  The legacy
    form emits a ``DeprecationWarning`` unless ``warn=False`` (the
    service wire, where tuples are the v1 protocol, not a call site).
    """
    if isinstance(payload, SolveRequest):
        return payload
    if (
        isinstance(payload, tuple)
        and len(payload) == 1
        and isinstance(payload[0], SolveRequest)
    ):
        return payload[0]
    if warn:
        # Late import: the compat module lives in the engine package,
        # which imports this module at package-import time.
        from ..engine.compat import deprecated

        deprecated(
            "positional solve payload tuples are deprecated; "
            "pass a SolveRequest",
            stacklevel=4,
        )
    return solve_request_from_payload(tuple(payload), kernel=kernel)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def make_searcher(request: SolveRequest):
    """The searcher object a request resolves to (kernel dispatch).

    A request carrying ``resume`` is coerced to a tree-identical kernel
    — resume stubs encode positions in the *legacy* tree, which the fc
    kernel prunes and the symmetry kernel quotients.
    """
    kernel = request.kernel
    if request.resume is not None and kernel not in TREE_IDENTICAL_KERNELS:
        kernel = KERNEL_BITSET
    overrides = request.overrides_dict()
    if kernel == KERNEL_LEGACY:
        # Legacy searches always build fresh (no shared setup cache),
        # so the whole construction is the setup phase.
        with obs.span("solver.setup", kernel=KERNEL_LEGACY):
            return MapSearch(
                request.affine, request.task, domain_overrides=overrides
            )
    if kernel == KERNEL_FC:
        return ForwardCheckingKernel(
            request.affine, request.task, domain_overrides=overrides
        )
    if kernel == KERNEL_SYMMETRY:
        # Late import: the symmetry module imports kernel machinery.
        from .symmetry import SymmetryKernel

        return SymmetryKernel(
            request.affine, request.task, domain_overrides=overrides
        )
    return BitsetKernel(
        request.affine, request.task, domain_overrides=overrides
    )


def run_request(request: SolveRequest) -> SolveResult:
    """Execute one request; raises :class:`SearchBudgetExceeded` as legacy."""
    searcher = make_searcher(request)
    with obs.span(
        "solver.search",
        kernel=request.kernel,
        budget=request.budget,
        resumed=request.resume is not None,
    ) as search_span:
        try:
            mapping = searcher.search(
                request.budget, resume_from=request.resume_dict()
            )
        finally:
            # The budget exception path still reports how far it got.
            search_span.set_attr("nodes", searcher.nodes_explored)
        search_span.set_attr("solvable", mapping is not None)
    return SolveResult(
        verdict="solvable" if mapping is not None else "unsolvable",
        mapping=mapping,
        nodes=searcher.nodes_explored,
        kernel=request.kernel,
    )

"""Symmetry-reduced search kernel: quotient the DFS by verified automorphisms.

The paper's central adversary classes are *symmetric* — membership of a
live set depends only on its size (``Adversary.is_symmetric``), so the
affine tasks ``R_A`` they induce are invariant under relabeling the
processes.  The FACT constraint problem inherits that invariance: a
process permutation ``pi`` acts on the affine vertices (recursively,
through nested ``ChrVertex`` carriers) and on the output vertices, and
when that action maps domains onto domains and constraints onto
constraints it maps solutions onto solutions.  Branches of the DFS that
differ by such an action are redundant: exploring one decides all.

:class:`SymmetryKernel` exploits this with **orbit-representative
pruning under setwise prefix stabilizers**:

* the candidate group is seeded from ``S_n`` — every process
  permutation, each tried with two value actions (relabel process ids
  inside decision values, or leave values fixed);
* every candidate is **verified against the interned CSP itself**
  (domain bijections position-by-position, constraint table preserved
  allowed-mask-for-allowed-mask) before it is admitted.  Verification
  is what makes the quotient *sound*: the heuristic value action only
  affects how much symmetry is found, never correctness;
* the kernel searches under its **own vertex order**: the legacy
  constrained-first order, except that placing a vertex places its
  whole ``S_n``-orbit contiguously.  Prefixes are then unions of
  complete orbits (plus one partial orbit at the tail), which is what
  lets automorphisms act *within* a prefix instead of mapping it out
  of the assigned region — the reason this kernel's node counts (and
  possibly its returned map) legitimately differ from legacy's;
* during the DFS, at depth ``d`` an automorphism is *live* when it
  fixes position ``d`` as a variable and **setwise stabilizes the
  assigned prefix** — it permutes the assigned ``(position, value)``
  pairs among themselves, so it maps the current partial assignment to
  itself.  Candidates in one orbit under the live set are
  interchangeable (the action carries any completing solution of one
  branch to a completing solution of the other), so only the
  minimal-index representative of each orbit is tried.

Verdicts are exact (an automorphism maps solutions to solutions, so a
skipped branch can only contain solutions when its representative's
branch does); the returned map is a **concrete, fully valid** carried
map — pruning skips branches, it never abstracts the assignment, so
de-quotienting a found map is the identity and
``verify_carried_map``/``witness.solvable_cert`` accept the result
as-is.  Node counts shrink on symmetric instances (skipped subtrees
are never visited) and are counted in the kernel's own tree, so like
the ``fc`` kernel this one is cached under kernel-specific keys and
coerced to a tree-identical kernel for certificates and resume.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..tasks.solvability import (
    DomainOverrides,
    MapSearch,
    SearchBudgetExceeded,
    resolve_budget,
)
from ..tasks.task import OutputVertex, Task
from ..core.affine import AffineTask
from ..topology.chromatic import ChrVertex
from .interning import InternTable
from .kernel import BitsetKernel, _shared_setup

try:  # numpy is optional: the scalar paths are complete fallbacks
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY
    _np = None

_SETUP_KEY = "symmetry"

__all__ = [
    "Automorphism",
    "SymmetryKernel",
    "automorphism_group",
    "compute_automorphisms",
]

#: ``S_n`` enumeration is factorial; beyond this the candidate pool is
#: not enumerated and the kernel degenerates to plain bitset search.
_MAX_GROUP_N = 6


class Automorphism:
    """One verified symmetry of an interned FACT constraint problem.

    ``perm`` is the process permutation, ``value_action`` how decision
    values were transported (``"relabel"`` or ``"fixed"``),
    ``var_perm`` the induced permutation of assignment positions and
    ``val_maps[i][j]`` the candidate index at position ``var_perm[i]``
    that candidate ``j`` at position ``i`` maps to.  Instances hash by
    identity, which is what the kernel's per-depth memo keys rely on.
    """

    __slots__ = ("perm", "value_action", "var_perm", "val_maps")

    def __init__(
        self,
        perm: Tuple[int, ...],
        value_action: str,
        var_perm: Tuple[int, ...],
        val_maps: Tuple[Tuple[int, ...], ...],
    ):
        self.perm = perm
        self.value_action = value_action
        self.var_perm = var_perm
        self.val_maps = val_maps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Automorphism(perm={self.perm}, action={self.value_action})"


# ----------------------------------------------------------------------
# The group action
# ----------------------------------------------------------------------
def _act_input_vertex(perm: Tuple[int, ...], vertex):
    """Relabel processes through arbitrarily nested ``ChrVertex`` carriers."""
    if isinstance(vertex, int):
        return perm[vertex]
    if isinstance(vertex, ChrVertex):
        return ChrVertex(
            perm[vertex.color],
            frozenset(_act_input_vertex(perm, m) for m in vertex.carrier),
        )
    raise TypeError(f"cannot act on vertex {vertex!r}")


def _act_value(perm: Tuple[int, ...], value):
    """Heuristically relabel process ids inside a decision value.

    Small ints in ``range(n)`` read as process ids (the convention of
    consensus-style tasks, where the decided value names a proposer);
    containers recurse; everything else rides along unchanged.  This is
    only a *candidate* action — verification against the interned CSP
    decides whether the resulting map is an automorphism.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return perm[value] if 0 <= value < len(perm) else value
    if isinstance(value, tuple):
        return tuple(_act_value(perm, item) for item in value)
    if isinstance(value, frozenset):
        return frozenset(_act_value(perm, item) for item in value)
    return value


def _act_output(
    perm: Tuple[int, ...], value_action: str, out: OutputVertex
) -> OutputVertex:
    value = (
        _act_value(perm, out.value) if value_action == "relabel" else out.value
    )
    return OutputVertex(perm[out.process], value)


# ----------------------------------------------------------------------
# Candidate verification
# ----------------------------------------------------------------------
def _validate(
    perm: Tuple[int, ...],
    value_action: str,
    search: MapSearch,
    tables: InternTable,
    constraint_allowed: Dict[frozenset, frozenset],
    id_to_index: Optional[List[Dict[int, int]]] = None,
    check_constraints: bool = True,
) -> Optional[Automorphism]:
    """Verify one ``(perm, value_action)`` candidate against the CSP.

    Returns the :class:`Automorphism` when the action is a bijection of
    positions and candidates that maps every domain onto the image
    position's domain and every compiled constraint onto a compiled
    constraint with the identical allowed-mask set — or ``None``.

    ``check_constraints=False`` skips the (expensive) constraint-table
    check; it is sound **only** when the same abstract ``(perm,
    value_action)`` action already passed it against another encoding
    of the same CSP — constraint preservation is a property of the
    action on simplices and output vertices, not of the interning
    (see :func:`_translate_group`).
    """
    vertices = search.vertices
    total = len(vertices)

    # Positions: the vertex action must permute the assignment order.
    var_perm_list: List[int] = []
    for vertex in vertices:
        try:
            image = _act_input_vertex(perm, vertex)
        except TypeError:
            return None
        position = tables.position.get(image)
        if position is None:
            return None
        var_perm_list.append(position)
    var_perm = tuple(var_perm_list)

    # Output ids: the output action must permute the interned universe.
    out_map: List[Optional[int]] = [None] * len(tables.out_index)
    for out, out_id in tables.out_index.items():
        target = tables.out_index.get(_act_output(perm, value_action, out))
        if target is None:
            return None
        out_map[out_id] = target
    if len(set(out_map)) != len(out_map):
        return None

    # Domains: candidate j at position i must land at a candidate of
    # position var_perm[i], giving a bijection of equal-size domains.
    if id_to_index is None:
        id_to_index = _id_to_index(tables)
    val_maps: List[Tuple[int, ...]] = []
    for i in range(total):
        j = var_perm[i]
        bits_i = tables.domain_bits[i]
        index_j = id_to_index[j]
        if len(bits_i) != len(index_j):
            return None
        row: List[int] = []
        for bit in bits_i:
            mapped = index_j.get(out_map[bit.bit_length() - 1])
            if mapped is None:
                return None
            row.append(mapped)
        val_maps.append(tuple(row))

    if not check_constraints:
        return Automorphism(perm, value_action, var_perm, tuple(val_maps))

    # Constraints: every compiled constraint must map onto one with the
    # same allowed-mask set.  Allowed sets are shared objects (one per
    # participation class), so they are interned to small class ids
    # once and the per-constraint check is an integer compare; the
    # remapped class of each distinct allowed object is memoized per
    # candidate.
    class_of, class_by_content = _allowed_classes(constraint_allowed)
    remapped_class: Dict[int, Optional[int]] = {}
    for positions, allowed in constraint_allowed.items():
        image_positions = frozenset(var_perm[p] for p in positions)
        image_allowed = constraint_allowed.get(image_positions)
        if image_allowed is None:
            return None
        key = id(allowed)
        moved = remapped_class.get(key)
        if moved is None and key not in remapped_class:
            remapped = _remap_allowed(allowed, out_map)
            moved = (
                None
                if remapped is None
                else class_by_content.get(remapped)
            )
            remapped_class[key] = moved
        if moved is None or moved != class_of[id(image_allowed)]:
            return None
    return Automorphism(perm, value_action, var_perm, tuple(val_maps))


def _allowed_classes(constraint_allowed: Dict[frozenset, frozenset]):
    """The allowed-class interning of a ``constraint_allowed`` dict.

    :class:`_ClassifiedConstraints` (what :func:`compute_automorphisms`
    builds) carries it precomputed — one interning pass serves all
    ``S_n`` candidates; a plain dict pays for a fresh pass.
    """
    if isinstance(constraint_allowed, _ClassifiedConstraints):
        return constraint_allowed.class_of, constraint_allowed.by_content
    classified = _ClassifiedConstraints(constraint_allowed)
    return classified.class_of, classified.by_content


class _ClassifiedConstraints(dict):
    """``constraint_allowed`` with its allowed-class interning attached."""

    def __init__(self, constraint_allowed: Dict[frozenset, frozenset]):
        super().__init__(constraint_allowed)
        class_of: Dict[int, int] = {}
        by_content: Dict[frozenset, int] = {}
        for allowed in self.values():
            if id(allowed) in class_of:
                continue
            existing = by_content.get(allowed)
            if existing is None:
                existing = len(by_content)
                by_content[allowed] = existing
            class_of[id(allowed)] = existing
        self.class_of = class_of
        self.by_content = by_content


def _id_to_index(tables: InternTable) -> List[Dict[int, int]]:
    """Per position, the out-id -> candidate-index view of the domain."""
    return [
        {bit.bit_length() - 1: idx for idx, bit in enumerate(bits)}
        for bits in tables.domain_bits
    ]


def _remap_allowed(
    allowed: frozenset, out_map: List[Optional[int]]
) -> Optional[frozenset]:
    """Push an allowed-mask set through the output bijection.

    Vectorized with numpy when available and the interned output
    universe fits one machine word; the scalar path walks set bits.
    """
    if _np is not None and len(out_map) <= 63 and allowed:
        masks = _np.fromiter(allowed, dtype=_np.uint64, count=len(allowed))
        ids = _np.arange(len(out_map), dtype=_np.uint64)
        bits = (masks[:, None] >> ids) & 1
        targets = _np.fromiter(
            (0 if t is None else t for t in out_map),
            dtype=_np.uint64,
            count=len(out_map),
        )
        moved = (bits << targets).sum(axis=1, dtype=_np.uint64)
        return frozenset(int(m) for m in moved)
    masks = set()
    for mask in allowed:
        result = 0
        remaining = mask
        while remaining:
            low = remaining & -remaining
            target = out_map[low.bit_length() - 1]
            if target is None:
                return None
            result |= 1 << target
            remaining ^= low
        masks.add(result)
    return frozenset(masks)


def compute_automorphisms(
    search: MapSearch, tables: InternTable
) -> Tuple[Automorphism, ...]:
    """Every verified non-identity automorphism seeded from ``S_n``.

    Each process permutation is tried with the value-relabeling action
    first, then the value-fixing action; the first that verifies is
    kept (trying both matters: ``id``-valued tasks need relabeling,
    input-independent tasks need fixing).  The identity is omitted —
    it stabilizes everything and prunes nothing.
    """
    n = search.affine.n
    if n > _MAX_GROUP_N:
        return ()
    constraint_allowed = _ClassifiedConstraints(
        {
            frozenset(constraint.positions): constraint.allowed
            for bucket in tables.firing
            for constraint in bucket
        }
    )
    identity = tuple(range(n))
    id_to_index = _id_to_index(tables)
    found: List[Automorphism] = []
    for perm in permutations(range(n)):
        if perm == identity:
            continue
        for value_action in ("relabel", "fixed"):
            auto = _validate(
                perm,
                value_action,
                search,
                tables,
                constraint_allowed,
                id_to_index=id_to_index,
            )
            if auto is not None:
                found.append(auto)
                break
    return tuple(found)


def _translate_group(
    base_group: Tuple[Automorphism, ...],
    search: MapSearch,
    tables: InternTable,
) -> Tuple[Automorphism, ...]:
    """Re-express a verified group against a different interning.

    The expensive constraint-preservation check is a property of the
    abstract ``(perm, value_action)`` action — it holds in any encoding
    of the same CSP once it held in one — so translation only rebuilds
    ``var_perm``/``val_maps`` (which do depend on the vertex order and
    the output-id assignment).
    """
    id_to_index = _id_to_index(tables)
    translated = []
    for auto in base_group:
        moved = _validate(
            auto.perm,
            auto.value_action,
            search,
            tables,
            {},
            id_to_index=id_to_index,
            check_constraints=False,
        )
        if moved is not None:
            translated.append(moved)
    return tuple(translated)


def automorphism_group(
    search: MapSearch, tables: InternTable
) -> Tuple[Automorphism, ...]:
    """The (cached) verified automorphisms of one interned problem.

    Cached on the :class:`InternTable`, so it shares the lifetime of
    the per-(affine, task) setup the kernels already reuse — overridden
    (sliced) domains build fresh tables and therefore recompute the
    group against the *restricted* domains, which is what keeps slicing
    sound (a slice that breaks a symmetry simply loses it).
    """
    group = getattr(tables, "_symmetry_group", None)
    if group is None:
        with obs.span(
            "solver.symmetry.group", n=search.affine.n
        ) as group_span:
            group = compute_automorphisms(search, tables)
            group_span.set_attr("order", len(group) + 1)
        tables._symmetry_group = group
    return group


# ----------------------------------------------------------------------
# Orbit-blocked vertex order
# ----------------------------------------------------------------------
class _OrbitOrderedSearch(MapSearch):
    """``MapSearch`` whose order places verified-group orbits contiguously.

    The constrained-first order scatters each vertex orbit across
    positions, so no non-trivial automorphism maps a prefix of it onto
    itself and orbit pruning never fires.  This subclass keeps the
    constrained-first greedy as-is but places a vertex's whole orbit
    (under the *verified* group, passed in as a vertex partition) the
    moment its first member is picked: prefixes become unions of
    complete orbits plus at most one partial orbit — exactly the sets
    an automorphism can setwise stabilize.  Each orbit member is chosen
    by the same adjacency-to-placed key as the base greedy, which keeps
    constraint firing — and with it tree quality — close to legacy's.
    """

    def __init__(
        self,
        affine: AffineTask,
        task: Task,
        domain_overrides: Optional[DomainOverrides] = None,
        orbits: Optional[Dict[ChrVertex, frozenset]] = None,
    ):
        self._orbit_of = orbits or {}
        super().__init__(affine, task, domain_overrides=domain_overrides)

    def _order_vertices(self, vertices):
        base = super()._order_vertices(vertices)
        if not self._orbit_of:
            return base
        rank = {v: i for i, v in enumerate(base)}
        adjacency: Dict[ChrVertex, set] = {v: set() for v in base}
        for sigma in self.simplices:
            if len(sigma) == 2:
                a, b = tuple(sigma)
                adjacency[a].add(b)
                adjacency[b].add(a)

        def greedy_key(v):
            return (
                -len(adjacency[v] & placed),
                len(self.participation[frozenset([v])]),
                rank[v],
            )

        ordered: List[ChrVertex] = []
        placed: set = set()
        remaining = set(base)
        while remaining:
            best = min(remaining, key=greedy_key)
            pending = set(self._orbit_of.get(best, (best,))) & remaining
            pending.add(best)
            while pending:
                member = min(pending, key=greedy_key)
                ordered.append(member)
                placed.add(member)
                remaining.remove(member)
                pending.remove(member)
        return ordered


def _vertex_orbits(
    search: MapSearch, group: Tuple[Automorphism, ...]
) -> Dict[ChrVertex, frozenset]:
    """Partition the vertices into orbits under the verified group.

    Connectivity under the *undirected* edges of each element's
    ``var_perm`` — sound without composition closure for the same
    reason as :func:`_orbit_representatives`.
    """
    vertices = search.vertices
    total = len(vertices)
    neighbors: List[set] = [set() for _ in range(total)]
    for auto in group:
        for i, j in enumerate(auto.var_perm):
            if i != j:
                neighbors[i].add(j)
                neighbors[j].add(i)
    orbit_of: Dict[ChrVertex, frozenset] = {}
    seen = [False] * total
    for start in range(total):
        if seen[start]:
            continue
        component = {start}
        seen[start] = True
        stack = [start]
        while stack:
            current = stack.pop()
            for target in neighbors[current]:
                if not seen[target]:
                    seen[target] = True
                    component.add(target)
                    stack.append(target)
        block = frozenset(vertices[i] for i in component)
        for member in block:
            orbit_of[member] = block
    return orbit_of


def _build_setup(
    affine: AffineTask,
    task: Task,
    domain_overrides: Optional[DomainOverrides] = None,
):
    """Compose the symmetry kernel's (search, tables) pair.

    Two-pass: verify the group against the plain constrained-first
    setup first (orbits don't depend on the vertex order), then — only
    when symmetry actually exists — rebuild the search with that
    group's orbits placed contiguously.  A trivial group reuses the
    plain setup unchanged, so the kernel degenerates to an exact
    bitset search with zero reordering risk.
    """
    if domain_overrides:
        base_search = MapSearch(
            affine, task, domain_overrides=domain_overrides
        )
        base_tables = InternTable(base_search)
    else:
        base_search, base_tables = _shared_setup(affine, task)
    base_group = automorphism_group(base_search, base_tables)
    if not base_group:
        return base_search, base_tables
    orbits = _vertex_orbits(base_search, base_group)
    search = _OrbitOrderedSearch(
        affine, task, domain_overrides=domain_overrides, orbits=orbits
    )
    tables = InternTable(search)
    # Seed the ordered tables' group cache by translation: re-running
    # the S_n enumeration (and its constraint check) against the new
    # encoding would double the setup cost for an identical answer.
    tables._symmetry_group = _translate_group(base_group, search, tables)
    return search, tables


def _symmetry_setup(affine: AffineTask, task: Task):
    """The orbit-ordered interned problem, cached beside the shared one.

    Mirrors :func:`~repro.solver.kernel._shared_setup` but caches under
    a kernel-specific key in the same ``task._solver_setup`` dict, so
    it shares the task-lifetime semantics without colliding with the
    bitset/fc setup (their keys are bare ``AffineTask`` objects).
    """
    cache = getattr(task, "_solver_setup", None)
    if cache is None:
        cache = {}
        task._solver_setup = cache
    key = (affine, _SETUP_KEY)
    entry = cache.get(key)
    if entry is None:
        with obs.span(
            "solver.setup", shared=True, kernel="symmetry"
        ) as setup_span:
            entry = _build_setup(affine, task)
            setup_span.set_attr("vertices", len(entry[0].vertices))
        cache[key] = entry
    return entry


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
def _orbit_representatives(
    stabilizer: Tuple[Automorphism, ...], depth: int, size: int
) -> int:
    """Bitmask of minimal-index orbit representatives at ``depth``.

    Orbits are connected components of the *undirected* graph with an
    edge ``j — a.val_maps[depth][j]`` per live automorphism: equivalence
    of subtrees transfers along each edge in both directions (the
    action is a bijection), so the closure is sound even though the
    live set need not be composition-closed.
    """
    neighbors: List[List[int]] = [[] for _ in range(size)]
    for auto in stabilizer:
        val_map = auto.val_maps[depth]
        for j in range(size):
            target = val_map[j]
            if target != j:
                neighbors[j].append(target)
                neighbors[target].append(j)
    reps = 0
    seen = [False] * size
    for j in range(size):
        if seen[j]:
            continue
        reps |= 1 << j
        stack = [j]
        seen[j] = True
        while stack:
            current = stack.pop()
            for target in neighbors[current]:
                if not seen[target]:
                    seen[target] = True
                    stack.append(target)
    return reps


class SymmetryKernel(BitsetKernel):
    """Bitset DFS quotiented by orbit representatives (``kernel="symmetry"``).

    Subclasses :class:`BitsetKernel` for the ``_arrival_mask``
    constraint filter, but searches its *own* orbit-blocked vertex
    order (see :class:`_OrbitOrderedSearch`) with its own setup cache;
    the DFS loop adds orbit pruning and drops resume support.
    """

    kernel = "symmetry"

    def __init__(
        self,
        affine: AffineTask,
        task: Task,
        domain_overrides: Optional[DomainOverrides] = None,
    ):
        if domain_overrides:
            with obs.span(
                "solver.setup", overridden=True, kernel="symmetry"
            ) as setup_span:
                self._search, self.tables = _build_setup(
                    affine, task, domain_overrides=domain_overrides
                )
                setup_span.set_attr("vertices", len(self._search.vertices))
        else:
            self._search, self.tables = _symmetry_setup(affine, task)
        self.nodes_explored = 0
        self.group = automorphism_group(self._search, self.tables)
        #: Per depth, the automorphisms fixing that position as a
        #: variable — the static half of the liveness condition.
        self._fixers: List[Tuple[Automorphism, ...]] = [
            tuple(
                a
                for a in self.group
                if a.var_perm[d] == d
            )
            for d in range(len(self._search.vertices))
        ]
        #: ``(depth, live set) -> representative mask`` — the same live
        #: set recurs at a depth across sibling subtrees.
        self._orbit_memo: Dict[tuple, int] = {}

    def search(
        self,
        budget: Optional[int] = None,
        resume_from: Optional[Dict[ChrVertex, OutputVertex]] = None,
        *,
        node_budget: Optional[int] = None,
        max_nodes: Optional[int] = None,
    ) -> Optional[Dict[ChrVertex, OutputVertex]]:
        budget = resolve_budget(
            budget, node_budget=node_budget, max_nodes=max_nodes
        )
        if resume_from:
            raise ValueError(
                "the symmetry kernel explores a quotiented tree and cannot "
                "honor resume_from; use the bitset or legacy kernel to resume"
            )
        self.nodes_explored = 0
        search = self._search
        tables = self.tables
        vertices = search.vertices
        total = len(vertices)
        if total == 0:
            return {}
        domain_lists = [search.domains[v] for v in vertices]
        domain_bits = tables.domain_bits

        choice = [0] * total
        chosen_bit = [0] * total
        chosen_idx = [0] * total
        ok_mask = [0] * total
        ok_valid = [False] * total
        fixers = self._fixers

        depth = 0
        while True:
            if not ok_valid[depth]:
                ok = self._arrival_mask(depth, chosen_bit)
                if ok and fixers[depth]:
                    live = tuple(
                        a
                        for a in fixers[depth]
                        if self._stabilizes_prefix(a, depth, chosen_idx)
                    )
                    if live:
                        key = (depth, live)
                        reps = self._orbit_memo.get(key)
                        if reps is None:
                            reps = _orbit_representatives(
                                live, depth, len(domain_bits[depth])
                            )
                            self._orbit_memo[key] = reps
                        ok &= reps
                ok_mask[depth] = ok
                ok_valid[depth] = True
            ok = ok_mask[depth]
            bits = domain_bits[depth]
            size = len(bits)
            index = choice[depth]
            advanced = False
            nodes = self.nodes_explored
            while index < size:
                index += 1
                nodes += 1
                if budget is not None and nodes > budget:
                    self.nodes_explored = nodes
                    choice[depth] = index
                    raise SearchBudgetExceeded(
                        f"exceeded {budget} nodes",
                        nodes_explored=nodes,
                        partial_assignment={
                            vertices[i]: domain_lists[i][chosen_idx[i]]
                            for i in range(depth)
                        },
                    )
                if (ok >> (index - 1)) & 1:
                    chosen_bit[depth] = bits[index - 1]
                    chosen_idx[depth] = index - 1
                    advanced = True
                    break
            self.nodes_explored = nodes
            choice[depth] = index
            if advanced:
                if depth + 1 == total:
                    return {
                        vertices[i]: domain_lists[i][chosen_idx[i]]
                        for i in range(total)
                    }
                depth += 1
                choice[depth] = 0
                ok_valid[depth] = False
            else:
                depth -= 1
                if depth < 0:
                    return None

    @staticmethod
    def _stabilizes_prefix(
        auto: Automorphism, depth: int, chosen_idx: List[int]
    ) -> bool:
        """Does ``auto`` map the assigned prefix onto itself?

        The prefix occupies exactly positions ``0..depth-1``, so the
        action preserves it as a set of ``(position, value)`` pairs iff
        every assigned position lands on an assigned position carrying
        the image value.  (``var_perm`` is a permutation, so "all images
        below ``depth``" already forces a bijection of the prefix.)
        """
        var_perm = auto.var_perm
        val_maps = auto.val_maps
        for i in range(depth):
            j = var_perm[i]
            if j >= depth or chosen_idx[j] != val_maps[i][chosen_idx[i]]:
                return False
        return True

#!/usr/bin/env python3
"""Benchmark trajectory gate: fresh BENCH_*.json versus committed baselines.

CI runs the benchmark suite, which rewrites the ``BENCH_*.json`` files
in the repository root, then runs this gate to compare the fresh
numbers against the committed baselines.  The gate fails (nonzero
exit, readable per-metric diff) when the trajectory regresses:

* **Parity metrics** (workload shapes, node counts, error counts,
  cached-artifact counts) must match **exactly** — these are
  deterministic, so any drift is a correctness change, not noise.
* **Ratio metrics** (warm-cache speedups, coalesce rates, overhead
  ratios) carry per-metric tolerances: a warm speedup may not drop
  below ``RATIO`` of its baseline (default 0.75 — a >25%% drop fails),
  and overhead ratios may not *grow* beyond their ceiling factor.

Absolute latencies are deliberately **not** gated — they track the CI
machine, not the code.  Ratios computed inside one run (speedup of
path A over path B on the same box) are the machine-independent signal.

A gated metric that exists in the fresh file but not in the committed
baseline is **informational**, not a failure: it is newer than the
baseline and starts gating once re-baselined (a metric missing from the
*fresh* file remains a failure — a renamed field ungates nothing).
The dedicated multi-core CI lane opts into ``MULTICORE_RULES`` via
``--require-multicore`` / ``REPRO_BENCH_MULTICORE=1``: scaling metrics
that ordinary boxes may record as ``null`` must be real measurements
there.

Baselines come from ``git show HEAD:<file>`` by default so the gate
compares against what is committed even after the benchmark step has
overwritten the working-tree files; ``--baseline-dir`` overrides this
(used by the gate's own tests).  ``--fresh-dir`` points at the freshly
produced files (default: the repository root).

Re-baselining: when a change legitimately moves a gated number —
a faster kernel, a new workload shape — run the benchmark locally,
inspect the diff this tool prints, and commit the regenerated
``BENCH_*.json`` together with the change that explains it.  The gate
compares against HEAD, so the PR that moves the number and the PR that
re-baselines it are the same PR.

Stdlib only; importable (``main(argv)``) for the test suite.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional, Tuple

#: Comparison kinds.
EXACT = "exact"  # fresh == baseline, exactly
MIN_RATIO = "min_ratio"  # fresh >= tolerance * baseline (bigger is better)
MAX_RATIO = "max_ratio"  # fresh <= tolerance * baseline (smaller is better)
MIN_VALUE = "min_value"  # fresh >= tolerance, absolute; null/missing fails
PRESENT = "present"  # the metric must exist in the fresh file; any value

#: file -> [(dotted metric path, kind, tolerance)].
#:
#: Every metric listed here must exist in both files; a missing metric
#: is itself a gate failure (a renamed field silently ungates nothing).
RULES: Dict[str, List[Tuple[str, str, float]]] = {
    "BENCH_solver.json": [
        ("workload.queries", EXACT, 0.0),
        ("workload.solvable", EXACT, 0.0),
        ("workload.search_nodes_total", EXACT, 0.0),
        ("fc_nodes_vs_legacy", EXACT, 0.0),
        ("median_speedup_warm", MIN_RATIO, 0.75),
        ("median_speedup_cold", MIN_RATIO, 0.50),
        ("median_speedup_fc_warm", MIN_RATIO, 0.50),
        # Symmetry quotient: cold speedup over the qualifying subset
        # (symmetric adversary + search-dominant); null when no case
        # qualifies on this grid — skipped, never a failure.
        ("symmetry.qualifying_queries", EXACT, 0.0),
        ("median_speedup_cold_symmetry", MIN_RATIO, 0.50),
        # Portfolio racing: the race count is deterministic; which
        # kernel wins each race is a property of the host, so the
        # histogram is gated for presence only.
        ("portfolio.races", EXACT, 0.0),
        ("portfolio.win_histogram", PRESENT, 0.0),
    ],
    "BENCH_engine.json": [
        ("workload.adversaries_classified", EXACT, 0.0),
        ("workload.solvability_queries", EXACT, 0.0),
        ("artifacts_cached", EXACT, 0.0),
        ("speedup_warm_cache", MIN_RATIO, 0.75),
        # Multiworker scaling (null on single-CPU hosts — skipped):
        # cold measures process fan-out, warm measures the persistent
        # pool's warm-setup advantage over its own first batch.
        ("speedup_multiworker_cold", MIN_RATIO, 0.75),
        ("speedup_multiworker_warm", MIN_RATIO, 0.75),
        ("saturation.speedup_jobs2", MIN_RATIO, 0.75),
    ],
    "BENCH_workers.json": [
        ("workload.affinity_jobs", EXACT, 0.0),
        ("workload.distinct_setups", EXACT, 0.0),
        ("workload.sleep_jobs", EXACT, 0.0),
        # Routing is deterministic by construction (idle-pool
        # submissions): hits and the rate must not drift at all beyond
        # tolerance, and a healthy run never restarts a worker.
        ("affinity.routed", EXACT, 0.0),
        ("affinity.hits", EXACT, 0.0),
        ("affinity.hit_rate", MIN_RATIO, 0.90),
        ("failures.worker_restarts", EXACT, 0.0),
        ("failures.redispatched", EXACT, 0.0),
        ("failures.codec_errors", EXACT, 0.0),
        ("dispatch_overhead_ratio", MAX_RATIO, 3.00),
        ("saturation.speedup_jobs2", MIN_RATIO, 0.75),
    ],
    "BENCH_landscape.json": [
        ("workload.grid_cells", EXACT, 0.0),
        ("workload.adversaries", EXACT, 0.0),
        ("verdicts.solvable", EXACT, 0.0),
        ("verdicts.unsolvable", EXACT, 0.0),
        ("verdicts.budget", EXACT, 0.0),
        ("resume.recomputed_cells", EXACT, 0.0),
        ("compact_vs_naive_memory_ratio", MIN_RATIO, 0.75),
        ("resume_overhead_ratio", MAX_RATIO, 10.0),
    ],
    "BENCH_service.json": [
        ("requests_total", EXACT, 0.0),
        ("errors", EXACT, 0.0),
        ("burst.engine_computations", EXACT, 0.0),
        ("memcache_hit_rate", MIN_RATIO, 0.95),
        ("coalesce_rate", MIN_RATIO, 0.50),
    ],
    "BENCH_certify.json": [
        ("workload.queries", EXACT, 0.0),
        ("workload.solvable", EXACT, 0.0),
        ("workload.unsolvable", EXACT, 0.0),
        ("certify_overhead_ratio", MAX_RATIO, 1.50),
        ("check_positive_speedup_vs_search", MIN_RATIO, 0.60),
    ],
    "BENCH_obs.json": [
        ("workload.queries", EXACT, 0.0),
        ("spans_per_batch", EXACT, 0.0),
        ("traced_overhead_ratio", MAX_RATIO, 3.00),
        ("sim.span_sim_schedule", EXACT, 0.0),
        ("sim.span_sim_round", EXACT, 0.0),
        ("sim.span_sim_guard_wait", EXACT, 0.0),
        ("sim.traced_overhead_ratio", MAX_RATIO, 3.00),
    ],
    "BENCH_fleet.json": [
        ("workload.shard_counts", EXACT, 0.0),
        ("workload.fixed_service_queries", EXACT, 0.0),
        ("errors", EXACT, 0.0),
        ("edge.doctored_certs_rejected", EXACT, 0.0),
        # Intra-run scaling ratios on the fixed-service-time mix: the
        # serving architecture must keep multiplying throughput with
        # shard processes regardless of the host's core count.
        ("fixed_service_time.speedup_2x", MIN_RATIO, 0.75),
        ("fixed_service_time.speedup_4x", MIN_RATIO, 0.60),
        # CPU-bound scaling is null on single-CPU hosts (skipped).
        ("cpu_bound.speedup_2x", MIN_RATIO, 0.60),
        ("edge.verify_overhead_ratio", MAX_RATIO, 3.00),
    ],
    "BENCH_sim.json": [
        ("workload.cases", EXACT, 0.0),
        ("workload.schedules_total", EXACT, 0.0),
        ("deliveries_total", EXACT, 0.0),
        ("oracle_agreement_rate", EXACT, 0.0),
        ("disagreements", EXACT, 0.0),
    ],
}


#: Extra, environment-conditional rules for the dedicated multi-core CI
#: lane (``--require-multicore`` or ``REPRO_BENCH_MULTICORE=1``).  The
#: regular rules treat a null scaling metric as "skipped (environment)"
#: because most boxes cannot measure it; the multicore lane exists to
#: measure exactly those, so there a null *is* a failure.  The floors
#: are deliberately loose sanity bounds (the trajectory gating stays
#: ratio-vs-baseline) — their job is to guarantee the lane produced
#: real, non-null measurements.
MULTICORE_RULES: Dict[str, List[Tuple[str, str, float]]] = {
    "BENCH_engine.json": [
        ("cpu_count", MIN_VALUE, 2.0),
        ("speedup_multiworker_cold", MIN_VALUE, 0.10),
        ("speedup_multiworker_warm", MIN_VALUE, 0.10),
        ("saturation.speedup_jobs2", MIN_VALUE, 0.10),
    ],
    "BENCH_workers.json": [
        # Sleep-job saturation parallelizes independently of solver
        # economics: two workers must beat one by a real margin.
        ("saturation.speedup_jobs2", MIN_VALUE, 1.20),
    ],
    "BENCH_solver.json": [
        ("portfolio.races", MIN_VALUE, 1.0),
    ],
}


class GateFailure(Exception):
    """One metric outside its tolerance (message is the diff line)."""


def lookup(data: Dict[str, Any], path: str) -> Any:
    """Resolve a dotted path; raises :class:`GateFailure` when absent."""
    node: Any = data
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise GateFailure(f"metric {path!r} is missing")
        node = node[part]
    return node


def check_metric(
    path: str, kind: str, tolerance: float, baseline: Any, fresh: Any
) -> Optional[str]:
    """``None`` when within tolerance, else a human-readable diff line.

    Ratio metrics may legitimately be ``null`` on either side: a
    benchmark records ``null`` when its environment cannot produce the
    measurement (e.g. multiworker scaling on a single-CPU box).  A
    null on either end of a ratio comparison is "skipped (environment)",
    never a regression — the environments differ, so there is nothing
    to compare.  Parity metrics get no such out: a null there must
    match the baseline exactly like any other value.
    """
    if kind == EXACT:
        if fresh != baseline:
            return (
                f"{path}: expected exactly {baseline!r}, got {fresh!r} "
                "(parity metric — deterministic, any drift is a bug)"
            )
        return None
    if kind == PRESENT:
        return None  # existence was established by the lookup
    if kind == MIN_VALUE:
        # Absolute floor against the fresh value alone: the lane that
        # activates this rule promised the environment can measure it,
        # so null is a failure here, not a skip.
        if fresh is None:
            return (
                f"{path}: null, but this lane requires a real measurement"
            )
        try:
            fresh_value = float(fresh)
        except (TypeError, ValueError):
            return f"{path}: not numeric (fresh={fresh!r})"
        if fresh_value < tolerance:
            return f"{path}: {fresh_value:g} < required minimum {tolerance:g}"
        return None
    if baseline is None or fresh is None:
        return None  # skipped (environment): no comparable measurement
    try:
        baseline_value = float(baseline)
        fresh_value = float(fresh)
    except (TypeError, ValueError):
        return f"{path}: not numeric (baseline={baseline!r}, fresh={fresh!r})"
    if kind == MIN_RATIO:
        floor = tolerance * baseline_value
        if fresh_value < floor:
            drop = 100.0 * (1.0 - fresh_value / baseline_value)
            return (
                f"{path}: {fresh_value:g} < floor {floor:g} "
                f"({tolerance:g} x baseline {baseline_value:g}; "
                f"dropped {drop:.1f}%)"
            )
        return None
    if kind == MAX_RATIO:
        ceiling = tolerance * baseline_value
        if fresh_value > ceiling:
            return (
                f"{path}: {fresh_value:g} > ceiling {ceiling:g} "
                f"({tolerance:g} x baseline {baseline_value:g})"
            )
        return None
    raise ValueError(f"unknown rule kind {kind!r}")


def load_baseline(
    name: str, baseline_dir: Optional[str], repo_root: str
) -> Optional[Dict[str, Any]]:
    """The committed baseline, or ``None`` when it does not exist yet."""
    if baseline_dir is not None:
        path = os.path.join(baseline_dir, name)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    proc = subprocess.run(
        ["git", "show", f"HEAD:{name}"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def load_fresh(name: str, fresh_dir: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(fresh_dir, name)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def compare_file(
    name: str,
    baseline: Optional[Dict[str, Any]],
    fresh: Optional[Dict[str, Any]],
    rules: Optional[List[Tuple[str, str, float]]] = None,
) -> Tuple[List[str], List[str]]:
    """``(failures, notes)`` for one benchmark file (no failures = pass).

    A gated metric **missing from the fresh file** is a failure (a
    renamed field silently ungates nothing).  A gated metric present in
    the fresh file but **absent from the baseline** is informational: it
    is a metric newer than the committed baseline, so there is nothing
    to regress against yet — it starts gating once re-baselined.
    """
    if baseline is None:
        # First benchmark of its kind: nothing to regress against.
        return [], []
    if fresh is None:
        return [f"{name}: fresh results missing (benchmark did not run?)"], []
    failures: List[str] = []
    notes: List[str] = []
    for path, kind, tolerance in rules if rules is not None else RULES[name]:
        try:
            fresh_value = lookup(fresh, path)
        except GateFailure as exc:
            failures.append(f"{name}: fresh {exc}")
            continue
        if kind in (PRESENT, MIN_VALUE):
            # Judged against the fresh file alone — no baseline needed.
            diff = check_metric(path, kind, tolerance, None, fresh_value)
            if diff is not None:
                failures.append(f"{name}: {diff}")
            continue
        try:
            baseline_value = lookup(baseline, path)
        except GateFailure:
            notes.append(
                f"{name}: {path} = {fresh_value!r} is new (absent from "
                "the baseline) — informational until re-baselined"
            )
            continue
        diff = check_metric(path, kind, tolerance, baseline_value, fresh_value)
        if diff is not None:
            failures.append(f"{name}: {diff}")
    return failures, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="gate fresh BENCH_*.json files against committed baselines"
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help="read baselines from this directory instead of git HEAD",
    )
    parser.add_argument(
        "--fresh-dir",
        default=None,
        help="read fresh results from this directory (default: repo root)",
    )
    parser.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root for git baseline lookup",
    )
    parser.add_argument(
        "--require-multicore",
        action="store_true",
        default=os.environ.get("REPRO_BENCH_MULTICORE") == "1",
        help="additionally enforce MULTICORE_RULES: scaling metrics "
        "must be real (non-null) measurements — the dedicated "
        "multi-core CI lane (also via REPRO_BENCH_MULTICORE=1)",
    )
    args = parser.parse_args(argv)
    fresh_dir = args.fresh_dir or args.repo_root

    failures: List[str] = []
    compared = 0
    for name in sorted(RULES):
        baseline = load_baseline(name, args.baseline_dir, args.repo_root)
        fresh = load_fresh(name, fresh_dir)
        if baseline is None and fresh is None:
            continue
        rules = list(RULES[name])
        if args.require_multicore:
            rules.extend(MULTICORE_RULES.get(name, []))
        file_failures, notes = compare_file(name, baseline, fresh, rules)
        if baseline is not None and fresh is not None:
            compared += 1
        if file_failures:
            failures.extend(file_failures)
            print(f"FAIL {name}")
            for line in file_failures:
                print(f"  {line}")
        else:
            status = "PASS" if baseline is not None else "NEW "
            print(f"{status} {name}")
        for line in notes:
            print(f"  note: {line}")

    if failures:
        print(
            f"\nbench gate: {len(failures)} metric(s) outside tolerance "
            f"across {compared} compared file(s)."
        )
        print(
            "If the change is intentional, re-run the benchmarks and "
            "commit the regenerated BENCH_*.json (see tools/bench_gate.py "
            "docstring on re-baselining)."
        )
        return 1
    print(f"\nbench gate: all gated metrics within tolerance ({compared} file(s)).")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Solving set consensus inside the iterated affine model R*_A.

The Section-6 direction of the paper, executed: processes communicate
*only* through iterations of the affine task ``R_A`` (no failures, no
waiting) and still solve α-adaptive set consensus via the ``µ_Q``
leader-election map.  The demo runs three contrasting models:

* 1-obstruction-freedom — consensus (one decision) out of pure
  iterated structure;
* the Figure-5b adversary — at most 2 distinct decisions;
* wait-freedom (full ``Chr² s``) — at most 3 (trivial bound).

Run:  python examples/set_consensus_in_affine_model.py
"""

from repro import (
    agreement_function_of,
    figure5b_adversary,
    full_affine_task,
    k_concurrency_alpha,
    r_affine,
    wait_free_alpha,
)
from repro.analysis import banner, render_table
from repro.protocols import AdaptiveSetConsensus


def main() -> None:
    print(banner("α-adaptive set consensus in R*_A (Section 6)"))
    models = [
        ("1-obstruction-free", k_concurrency_alpha(3, 1), None),
        (
            "figure-5b",
            agreement_function_of(figure5b_adversary(), name="fig5b"),
            None,
        ),
        ("wait-free", wait_free_alpha(3), full_affine_task(3, 2)),
    ]
    proposals = {0: "red", 1: "green", 2: "blue"}
    print(f"proposals: {proposals}\n")

    rows = []
    for name, alpha, task in models:
        task = task or r_affine(alpha)
        bound = alpha(frozenset(range(3)))
        for seed in range(3):
            protocol = AdaptiveSetConsensus(alpha, task, seed=seed)
            outcome = protocol.run(dict(proposals))
            rows.append(
                [
                    name,
                    seed,
                    outcome.iterations,
                    sorted(set(outcome.decisions.values())),
                    f"<= {bound}",
                ]
            )
            assert outcome.distinct_decisions() <= bound
    print(
        render_table(
            ["model", "seed", "iterations", "decisions", "alpha bound"],
            rows,
        )
    )
    print("\nall runs met their alpha-agreement bound.")


if __name__ == "__main__":
    main()

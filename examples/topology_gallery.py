#!/usr/bin/env python3
"""Topology gallery: the complexes behind the paper's figures, in numbers.

Regenerates the combinatorial content of Figures 1, 4, 6 and 7 — the
standard chromatic subdivision, the contention complex, concurrency
maps and affine tasks — together with the homological profile that the
paper's concluding remarks discuss (link-connectivity of ``R_{t-res}``
versus ``R_{k-OF}``).

Run:  python examples/topology_gallery.py
"""

from repro import (
    agreement_function_of,
    chr_complex,
    contention_complex,
    figure5b_adversary,
    k_concurrency_alpha,
    r_affine,
    r_k_obstruction_free,
    r_t_resilient,
)
from repro.analysis import banner, complex_census, render_mapping, render_table
from repro.core import concurrency_census
from repro.topology import fubini_number, homology_summary


def main() -> None:
    print(banner("Figure 1 — the standard chromatic subdivision"))
    rows = []
    for depth in (1, 2):
        census = complex_census(chr_complex(3, depth))
        rows.append([f"Chr^{depth} s", census["vertices"], census["facets"]])
    rows.append(["Fubini(3), Fubini(3)^2", "-", f"{fubini_number(3)}, {fubini_number(3)**2}"])
    print(render_table(["complex", "vertices", "facets"], rows))

    print()
    print(banner("Figure 4c — the 2-contention complex"))
    cont = contention_complex(3)
    print(render_mapping("Cont2 census", complex_census(cont)))

    print()
    print(banner("Figure 6 — concurrency maps"))
    chr1 = chr_complex(3, 1)
    for name, alpha in [
        ("1-obstruction-free", k_concurrency_alpha(3, 1)),
        ("figure-5b", agreement_function_of(figure5b_adversary())),
    ]:
        print(
            render_mapping(
                f"Conc levels for {name}", concurrency_census(chr1, alpha)
            )
        )

    print()
    print(banner("Figures 1b & 7 — affine tasks and their topology"))
    tasks = [
        r_k_obstruction_free(3, 1),
        r_t_resilient(3, 1),
        r_affine(k_concurrency_alpha(3, 1)),
        r_affine(agreement_function_of(figure5b_adversary(), name="fig5b")),
    ]
    rows = []
    for task in tasks:
        homology = homology_summary(task.complex.complex)
        rows.append(
            [
                task.name,
                len(task.complex.facets),
                homology["euler_characteristic"],
                homology["connected"],
                homology["link_connected"],
            ]
        )
    print(
        render_table(
            ["task", "facets", "euler", "connected", "link-connected"],
            rows,
        )
    )
    print(
        "\nNote the Section-8 remark made concrete: R_{1-res} is"
        " link-connected, R_{1-OF} is not."
    )


if __name__ == "__main__":
    main()

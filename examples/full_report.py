#!/usr/bin/env python3
"""Regenerate every fast experiment of the reproduction in one run.

Walks E1–E21 (skipping only the slow n=4 sweeps) and prints a compact
PASS/FAIL report — the one-command sanity check that the paper still
reproduces on this machine.

Run:  python examples/full_report.py
"""

import time

from repro.adversaries import (
    agreement_function_of,
    build_catalogue,
    figure5b_adversary,
    is_fair,
    k_concurrency_alpha,
)
from repro.analysis import banner, render_check
from repro.analysis.compactness import (
    obstruction_free_witness,
    solo_run_prefixes_comply_one_resilient,
)
from repro.analysis.landscape import classify_all, summarize
from repro.analysis.sperner import fuzz_sperner
from repro.core import (
    concurrency_census,
    contention_complex,
    full_affine_task,
    r_affine,
    r_t_resilient,
)
from repro.core.theorems import ra_equals_rkof, ra_equals_rtres
from repro.protocols.adaptive_set_consensus import fuzz_adaptive_set_consensus
from repro.protocols.alpha_set_consensus import fuzz_alpha_set_consensus
from repro.protocols.mu_map import verify_mu_properties
from repro.runtime.algorithm1 import fuzz_algorithm1
from repro.runtime.bg_simulation import full_information_code, run_bg_simulation
from repro.tasks import minimal_set_consensus
from repro.tasks.approximate_agreement import solvable_at_depth
from repro.tasks.general_task import binary_consensus_task, general_task_solvable
from repro.topology import chr_complex, fubini_number


def main() -> None:
    started = time.time()
    print(banner("repro — full fast-experiment report"))
    checks = []

    def record(name, passed):
        checks.append(passed)
        print(render_check(name, passed))

    chr1, chr2 = chr_complex(3, 1), chr_complex(3, 2)
    record(
        "E1a  Chr s census (12 vertices, 13 facets)",
        len(chr1.vertices) == 12 and len(chr1.facets) == fubini_number(3),
    )
    record(
        "E1b  R_1-res census (142 facets)",
        len(r_t_resilient(3, 1).complex.facets) == 142,
    )

    catalogue = build_catalogue(3)
    record(
        "E2   classification: superset-closed/symmetric => fair",
        all(
            is_fair(e.adversary)
            for e in catalogue
            if e.adversary.is_superset_closed() or e.adversary.is_symmetric()
        ),
    )

    record("E4   Cont2 census [99, 78, 6]", contention_complex(3).f_vector() == [99, 78, 6])

    alpha_1of = k_concurrency_alpha(3, 1)
    alpha_fig = agreement_function_of(figure5b_adversary(), name="fig5b")
    record(
        "E6   concurrency censuses (Figures 6a/6b)",
        concurrency_census(chr1, alpha_1of) == {0: 18, 1: 31}
        and concurrency_census(chr1, alpha_fig) == {0: 4, 1: 14, 2: 31},
    )

    ra_1of = r_affine(alpha_1of)
    ra_fig = r_affine(alpha_fig)
    record(
        "E7   R_A facet counts (73 / 145)",
        len(ra_1of.complex.facets) == 73 and len(ra_fig.complex.facets) == 145,
    )

    record(
        "E9   union guard matches R_1-OF and all R_t-res",
        ra_equals_rkof(3, 1, "union")
        and all(ra_equals_rtres(3, t, "union") for t in range(3)),
    )

    outcomes = fuzz_algorithm1(alpha_fig, ra_fig, runs=20, seed=1)
    record(
        "E8   Algorithm 1 safety+liveness (20 fuzzed runs)",
        all(o.in_affine_task for o in outcomes),
    )

    record(
        "E10  µ_Q Properties 9/10/12 (exhaustive)",
        all(verify_mu_properties(alpha_fig, ra_fig).values()),
    )

    record(
        "E11  FACT: min-k = setcon on three models",
        minimal_set_consensus(ra_1of) == 1
        and minimal_set_consensus(ra_fig) == 2
        and minimal_set_consensus(full_affine_task(3, 1)) == 3,
    )

    record(
        "E12  non-compactness witnesses + Sperner parity",
        not solo_run_prefixes_comply_one_resilient()["compact"]
        and not obstruction_free_witness()["compact"]
        and fuzz_sperner(chr2, 20, seed=2),
    )

    results = fuzz_adaptive_set_consensus(alpha_fig, ra_fig, runs=20, seed=3)
    record(
        "E13  set consensus in R*_A (alpha bound)",
        all(o.distinct_decisions() <= 2 for o in results),
    )

    record(
        "E14  ε-agreement crossover at depth == precision",
        all(
            solvable_at_depth(m, l) == (l >= m)
            for m in (1, 2)
            for l in (1, 2)
        ),
    )

    summary = summarize(classify_all(3))
    record(
        "E15  landscape: 127 / 43 fair / 37 alphas / 37 tasks",
        (summary.total, summary.fair, summary.distinct_alphas_fair,
         summary.distinct_affine_tasks) == (127, 43, 37, 37),
    )

    outs = fuzz_alpha_set_consensus(alpha_fig, runs=20, seed=4)
    record("E16  α-set-consensus object in the α-model", len(outs) == 20)

    record(
        "E17  FLP by search; consensus from R_A(1-OF)",
        not general_task_solvable(full_affine_task(3, 1), binary_consensus_task(3))
        and general_task_solvable(ra_1of, binary_consensus_task(3)),
    )

    bg = run_bg_simulation(
        {j: full_information_code(2) for j in range(3)},
        n_simulators=2,
        crash_simulators={1: 20},
        seed=5,
    )
    record(
        "E19  BG simulation under a simulator crash",
        len(bg.completed_simulated()) >= 2 and bg.histories_agree(),
    )

    from repro.tasks.test_and_set import k_test_and_set_task
    from repro.tasks.solvability import MapSearch

    record(
        "E21  1-TAS exactly at consensus power",
        MapSearch(ra_1of, k_test_and_set_task(3, 1)).search() is not None
        and MapSearch(ra_fig, k_test_and_set_task(3, 1)).search() is None,
    )

    print()
    status = "ALL PASS" if all(checks) else "FAILURES PRESENT"
    print(
        f"{status}: {sum(checks)}/{len(checks)} experiment groups, "
        f"{time.time() - started:.1f}s"
    )


if __name__ == "__main__":
    main()

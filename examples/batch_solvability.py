#!/usr/bin/env python3
"""Batch solvability through the compute engine.

Classifies the Figure-2 adversary zoo and decides the E11 FACT
set-consensus table — twice, through one persistent
:class:`repro.engine.Engine` session:

1. a *cold* pass computes every artifact and fills a content-addressed
   on-disk cache;
2. a *warm* pass answers the identical batch from cache reads alone.

Both passes print the same tables (the engine is required to reproduce
the legacy sequential results exactly); the closing statistics show the
hit/miss ledger and the measured warm-over-cold speedup.

Run:  python examples/batch_solvability.py [--jobs N]
"""

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    build_catalogue,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.analysis import banner, render_mapping, render_table
from repro.core import full_affine_task, r_affine
from repro.engine import ArtifactCache, Engine


def run_batch(engine: Engine) -> None:
    catalogue = build_catalogue(3)
    classified = engine.classify_many(
        [entry.adversary for entry in catalogue]
    )
    rows = [
        [
            entry.name,
            "yes" if record.superset_closed else "no",
            "yes" if record.symmetric else "no",
            "yes" if record.fair else "NO",
            record.power,
        ]
        for entry, record in zip(catalogue, classified)
    ]
    print(render_table(["adversary", "ssc", "sym", "fair", "setcon"], rows))

    cases = [
        ("wait-free (Chr s)", full_affine_task(3, 1)),
        ("R_A(1-OF)", r_affine(k_concurrency_alpha(3, 1))),
        ("R_A(2-OF)", r_affine(k_concurrency_alpha(3, 2))),
        ("R_A(1-res)", r_affine(t_resilience_alpha(3, 1))),
        ("R_A(fig5b)", r_affine(agreement_function_of(figure5b_adversary()))),
    ]
    answers = engine.minimal_set_consensus_many([task for _, task in cases])
    print(
        render_table(
            ["affine task", "min k-set consensus"],
            [(name, k) for (name, _), k in zip(cases, answers)],
        )
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "engine-cache"

        print(banner(f"cold pass — jobs={args.jobs}, filling {cache_dir}"))
        cold = Engine(jobs=args.jobs, cache=ArtifactCache(cache_dir))
        started = time.perf_counter()
        run_batch(cold)
        t_cold = time.perf_counter() - started

        print(banner("warm pass — identical batch, cache reads only"))
        warm = Engine(jobs=args.jobs, cache=ArtifactCache(cache_dir))
        started = time.perf_counter()
        run_batch(warm)
        t_warm = time.perf_counter() - started

        print(
            render_mapping(
                "engine session:",
                {
                    "cold pass": f"{t_cold:.3f} s  {cold.stats()}",
                    "warm pass": f"{t_warm:.3f} s  {warm.stats()}",
                    "warm speedup": f"{t_cold / t_warm:.1f}x",
                    "artifacts on disk": len(ArtifactCache(cache_dir)),
                },
            )
        )
        assert warm.stats()["misses"] == 0, "warm pass recomputed something"
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""BG simulation demo: two simulators, three simulated processes.

Runs the Borowsky–Gafni simulation on the library's runtime: two
simulators jointly execute three simulated full-information processes
against a simulated atomic-snapshot memory, agreeing on every simulated
snapshot through per-step safe-agreement instances.  A simulator crash
is injected halfway; the BG guarantee — at most one simulated process
blocked per crash — is visible in the output.

Run:  python examples/bg_simulation_demo.py
"""

from repro.analysis import banner, render_table
from repro.runtime.bg_simulation import (
    check_simulated_history,
    full_information_code,
    run_bg_simulation,
)


def describe(outcome, title):
    print(banner(title))
    rows = []
    for simulator, results in sorted(outcome.per_simulator.items()):
        for j, (output, history) in sorted(results.items()):
            rows.append(
                [
                    f"sim{simulator}",
                    f"p{j}",
                    len(history),
                    repr(output)[:40],
                ]
            )
    print(
        render_table(
            ["simulator", "simulated", "history length", "final state"],
            rows,
        )
    )
    print(f"completed simulated processes: {sorted(outcome.completed_simulated())}")
    print(f"histories agree across simulators: {outcome.histories_agree()}")
    for j, history in outcome.merged_histories().items():
        check_simulated_history(j, history)
    print("memory semantics (self-inclusion, monotonicity): OK")


def main() -> None:
    codes = {j: full_information_code(2) for j in range(3)}

    outcome = run_bg_simulation(codes, n_simulators=2, seed=7)
    describe(outcome, "crash-free run: 2 simulators, 3 simulated processes")

    print()
    outcome = run_bg_simulation(
        codes, n_simulators=2, crash_simulators={1: 30}, seed=8
    )
    describe(outcome, "simulator 1 crashes after 30 steps (f = 1)")
    survivors = len(outcome.completed_simulated())
    print(f"\nBG bound: {survivors} >= n - f = 2 simulated processes done")


if __name__ == "__main__":
    main()

"""End-to-end service demo — and the CI smoke test.

Starts ``python -m repro serve`` as a real subprocess, drives a mixed
query load through :class:`repro.service.client.ServiceClient` (ping,
subdivisions, zoo classification, an ``R_A`` construction and a FACT
solvability query), checks a value against the in-process engine,
prints the server's stats, then sends SIGTERM and verifies the server
drains an in-flight request and exits 0.

Run from the repository root::

    PYTHONPATH=src python examples/service_demo.py

Exits non-zero on any failure, so CI can use it as a smoke gate.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.adversaries import Adversary, agreement_function_of  # noqa: E402
from repro.engine import JobSpec, serialize  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.tasks.set_consensus import set_consensus_task  # noqa: E402


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with tempfile.TemporaryDirectory(prefix="repro-service-demo-") as cache_dir:
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                cache_dir,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            announce = process.stdout.readline()
            print(announce.strip())
            match = re.search(r":(\d+) ", announce)
            assert match, f"no port in announce line: {announce!r}"
            port = int(match.group(1))

            with ServiceClient(port=port) as client:
                assert client.ping()
                chr1 = client.chr(3, 1)
                assert len(chr1.facets) == 13
                print(f"chr(3,1): {len(chr1.facets)} facets")

                adversary = Adversary(3, [{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}])
                fair, ssc, sym, power, _ = client.classify(adversary)
                assert fair and ssc and sym and power == 2
                print(f"classify: fair={fair} setcon={power}")

                alpha = agreement_function_of(adversary)
                affine = client.r_affine(alpha)
                print(f"R_A: {len(affine.complex.facets)} facets")

                mapping, nodes = client.solve(affine, set_consensus_task(3, 2))
                assert mapping is not None
                print(f"solve: 2-set consensus solvable, {nodes} nodes")

                # The wire value is byte-identical to a direct engine call.
                response = client.query_response("chr", (3, 1))
                direct = serialize(JobSpec("chr", (3, 1)).run())
                assert response["value"] == direct
                print("byte-identical: ok")

                stats = client.stats()
                print(
                    "stats: "
                    f"requests={stats['metrics']['counters']['requests_total']} "
                    f"memcache_hit_rate={stats['memcache']['hit_rate']}"
                )

            # Graceful drain: SIGTERM while a slow request is in flight.
            outcome = {}

            def slow_query():
                with ServiceClient(port=port) as draining_client:
                    outcome["value"] = draining_client.query(
                        "sleep", (1.0, "drained")
                    )

            worker = threading.Thread(target=slow_query)
            worker.start()
            time.sleep(0.4)
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=60)
            worker.join(timeout=30)
            assert outcome.get("value") == "drained", outcome
            assert process.returncode == 0, process.returncode
            assert "drained cleanly" in output
            print("graceful drain: ok (exit 0, in-flight request served)")
        finally:
            if process.poll() is None:
                process.kill()
    print("service demo passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

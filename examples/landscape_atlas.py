#!/usr/bin/env python3
"""Atlas of every 3-process adversary — the landscape behind Figure 2.

Enumerates all 127 adversaries over three processes, classifies each
one, and charts the structure of the fair class: 43 fair adversaries
collapsing onto 37 distinct agreement functions, each inducing its own
affine task, partially ordered by inclusion.

Run:  python examples/landscape_atlas.py
"""

from repro.analysis import banner, render_mapping, render_table
from repro.analysis.landscape import classify_all, fair_task_classes, summarize
from repro.analysis.model_order import summarize_order


def main() -> None:
    print(banner("the complete n=3 adversary landscape"))
    entries = classify_all(3)
    summary = summarize(entries)
    print(
        render_mapping(
            "census:",
            {
                "adversaries": summary.total,
                "fair": summary.fair,
                "superset-closed": summary.superset_closed,
                "symmetric": summary.symmetric,
                "setcon histogram": summary.power_histogram,
                "distinct agreement functions (fair)": summary.distinct_alphas_fair,
                "distinct affine tasks R_A": summary.distinct_affine_tasks,
            },
        )
    )

    print()
    print(banner("R_A equivalence classes (Theorem 15 partition)"))
    classes = fair_task_classes(3)
    rows = []
    for task, members in sorted(
        classes.items(), key=lambda kv: len(kv[0].complex.facets)
    )[:12]:
        representative = min(
            members, key=lambda a: (len(a), sorted(map(sorted, a.live_sets)))
        )
        rows.append(
            [
                len(task.complex.facets),
                len(members),
                sorted(map(sorted, representative.live_sets))[:3],
            ]
        )
    print(
        render_table(
            ["R_A facets", "class size", "representative live sets (truncated)"],
            rows,
        )
    )
    print(f"... {len(classes)} classes total")

    print()
    print(banner("the inclusion order on fair models"))
    order = summarize_order(3)
    print(
        render_mapping(
            "shape:",
            {
                "classes": order.classes,
                "comparable pairs": order.comparable_pairs,
                "Hasse edges": order.hasse_edges,
                "longest chain": order.longest_chain_length,
                "maximum antichain": order.maximal_antichain,
                "inclusion respects setcon": order.power_respected,
            },
        )
    )
    print(
        "\nReading: R_A ⊆ R_B means model A is at least as strong as B;\n"
        "the wait-free task (169 facets) sits at the top, R_{1-OF} (73)\n"
        "at the bottom, and 18 mutually incomparable models fit in between."
    )


if __name__ == "__main__":
    main()

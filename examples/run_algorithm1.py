#!/usr/bin/env python3
"""Executing the paper's Algorithm 1 under adversarial schedules.

Spins up the asynchronous shared-memory runtime, runs Algorithm 1 for
the 1-resilient 3-process model under randomized α-model-compliant
executions (random participation, crashes, interleavings), and checks
Theorem 7 on every run: outputs always form a simplex of ``R_A`` and
every correct process decides.

Run:  python examples/run_algorithm1.py [runs]
"""

import random
import sys

from repro import r_affine, t_resilience_alpha
from repro.analysis import banner, render_table
from repro.runtime import random_alpha_model_plan, run_algorithm1


def main(runs: int = 30) -> None:
    print(banner("Algorithm 1 in the α-model of 1-resilience (n = 3)"))
    alpha = t_resilience_alpha(3, 1)
    task = r_affine(alpha)
    rng = random.Random(2018)

    rows = []
    for index in range(runs):
        plan = random_alpha_model_plan(alpha, rng)
        outcome = run_algorithm1(alpha, plan, task)
        assert outcome.in_affine_task, "Theorem 7 safety violated!"
        rows.append(
            [
                index,
                "".join(str(p) for p in sorted(plan.participants)),
                "".join(str(p) for p in sorted(plan.faulty)) or "-",
                outcome.result.steps_taken,
                len(outcome.simplex),
                "in R_A",
            ]
        )
    print(
        render_table(
            ["run", "participants", "crashed", "steps", "deciders", "safety"],
            rows,
        )
    )
    print(f"\nall {runs} runs: outputs in R_A, all correct processes decided")
    print("Theorem 7 validated experimentally on this sample.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)

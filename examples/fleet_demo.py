"""End-to-end fleet demo — and the CI fleet smoke test.

Starts ``python -m repro fleet --shards 2 --replicas 1`` as a real
subprocess (two shard subprocesses + router + cert-verifying edge
replica), then proves the fleet's load-bearing guarantees over the
wire:

* a mixed burst through the router returns values byte-identical to a
  direct engine call, with admission accounting visible in stats;
* a certificate served by the edge replica carries ``verified: true``
  and equals the shard's bytes;
* a doctored certificate (via a tampering shard proxy in front of one
  real shard) is **rejected at the edge** with the typed
  ``verification_failed`` error;
* SIGTERM drains the whole fleet front-to-back and exits 0.

Run from the repository root::

    PYTHONPATH=src python examples/fleet_demo.py

Exits non-zero on any failure, so CI can use it as a smoke gate.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import JobSpec, serialize  # noqa: E402
from repro.adversaries import t_resilience_alpha  # noqa: E402
from repro.core import r_affine  # noqa: E402
from repro.fleet import (  # noqa: E402
    EdgeReplica,
    TamperingShardProxy,
    fixed_service_time_mix,
    run_load,
)
from repro.service import ServiceClient, ServiceError  # noqa: E402
from repro.tasks.set_consensus import set_consensus_task  # noqa: E402

ANNOUNCE = re.compile(
    r"repro fleet listening router=([\w.\-]+):(\d+) "
    r"replicas=([\w.\-]+):(\d+)\S* shards=(\S+)"
)


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "fleet",
            "--shards",
            "2",
            "--replicas",
            "1",
            "--port",
            "0",
            "--memcache-size",
            "128",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        while True:
            announce = process.stdout.readline()
            assert announce, "fleet exited before announcing"
            match = ANNOUNCE.search(announce)
            if match:
                break
        print(announce.strip())
        router_port = int(match.group(2))
        replica_host, replica_port = match.group(3), int(match.group(4))
        shard_addresses = [
            (host, int(port))
            for host, _, port in (
                address.partition(":")
                for address in match.group(5).split(",")
            )
        ]
        assert len(shard_addresses) == 2, shard_addresses

        # -- mixed burst through the router -----------------------------
        with ServiceClient(port=router_port) as client:
            assert client.ping()
            chr1 = client.chr(3, 1)
            assert len(chr1.facets) == 13
            response = client.query_response("chr", (3, 1))
            direct = serialize(JobSpec("chr", (3, 1)).run())
            assert response["value"] == direct
            print("router byte-identical: ok")

        report = run_load(
            "127.0.0.1",
            router_port,
            fixed_service_time_mix(24, 0.02, salt="fleet-demo")
            + [("chr", (2, depth)) for depth in (1, 2)],
            clients=6,
            priority="batch",
        )
        assert report.errors == 0, report.error_codes
        print(
            f"mixed burst: {report.ok} queries, "
            f"{report.rps:.0f} rps, p99 {report.p99_ms:.0f} ms"
        )
        with ServiceClient(port=router_port) as client:
            stats = client.stats()
            assert stats["server"]["role"] == "router"
            assert stats["admission"]["admitted_total"] >= report.ok
            lanes = stats["metrics"]["counters"]
            assert lanes.get("lane_batch_total", 0) >= 24
            print(
                "admission accounting: "
                f"admitted={stats['admission']['admitted_total']} "
                f"batch_lane={lanes.get('lane_batch_total', 0)}"
            )

        # -- verified certificates from the edge replica ----------------
        affine = r_affine(t_resilience_alpha(3, 1))
        task = set_consensus_task(3, 2)
        with ServiceClient(replica_host, replica_port) as client:
            response = client.query_response("certify", (affine, task, None))
            assert response["verified"] is True
            cert = client.certify(affine, task)
            assert cert["kind"] == "solvable"
            report_dict = client.check(cert)
            assert report_dict["valid"]
        with ServiceClient(*shard_addresses[0]) as shard_client:
            shard_response = shard_client.query_response(
                "certify", (affine, task, None)
            )
        assert response["value"] == shard_response["value"]
        print("edge certificate: verified, byte-identical to shard")

        # -- a doctored certificate is rejected at the edge -------------
        async def doctored_scenario() -> int:
            proxy = await TamperingShardProxy(shard_addresses[0]).start()
            try:
                replica = EdgeReplica([(proxy.host, proxy.port)])
                await replica.start()
                try:
                    done = asyncio.get_running_loop().run_in_executor(
                        None, _expect_rejection, replica.port, affine, task
                    )
                    await done
                finally:
                    await replica.drain()
            finally:
                await proxy.close()
            return proxy.tampered

        def _expect_rejection(port, affine, task):
            with ServiceClient(port=port, retries=0) as client:
                try:
                    client.certify(affine, task)
                except ServiceError as exc:
                    assert exc.code == "verification_failed", exc.code
                    return
            raise AssertionError("doctored certificate was not rejected")

        tampered = asyncio.run(doctored_scenario())
        assert tampered == 1, tampered
        print("doctored certificate: rejected at the edge")

        # -- graceful fleet drain under SIGTERM -------------------------
        outcome = {}

        def slow_query():
            with ServiceClient(port=router_port) as draining_client:
                outcome["value"] = draining_client.query(
                    "sleep", (1.0, "fleet-drained")
                )

        worker = threading.Thread(target=slow_query)
        worker.start()
        import time

        time.sleep(0.4)
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=120)
        worker.join(timeout=60)
        assert outcome.get("value") == "fleet-drained", outcome
        assert process.returncode == 0, process.returncode
        assert "drained cleanly" in output
        print("graceful fleet drain: ok (exit 0, in-flight request served)")
    finally:
        if process.poll() is None:
            process.kill()
    print("fleet demo passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

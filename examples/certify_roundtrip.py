#!/usr/bin/env python3
"""Certified solvability round-trip: engine -> files -> checker.

Runs the E11 FACT grid (5 affine tasks x k in 1..3) through the
engine's ``certify`` jobs, writes every certificate to disk, and then
re-validates the files with the *independent* checker
(:mod:`repro.certify.checker` — stdlib-only, imports nothing from the
engine or the search).  The checker's verdicts must agree with the
engine's plain ``solve`` answers on every cell; any divergence is a
hard failure.

This is also the CI checker gate: the workflow runs it under a timeout,
then re-checks the written files with ``python -m repro check`` and
uploads them as the build's certificate artifact.

Run:  python examples/certify_roundtrip.py [--jobs N] [--output-dir DIR]
"""

import argparse
import sys
from pathlib import Path

from repro.adversaries import (
    agreement_function_of,
    figure5b_adversary,
    k_concurrency_alpha,
    t_resilience_alpha,
)
from repro.analysis import banner, render_table
from repro.certify import check_bytes, write_cert
from repro.core import full_affine_task, r_affine
from repro.engine import Engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--output-dir",
        default="certs",
        help="directory the certificate files are written to",
    )
    args = parser.parse_args(argv)

    from repro.tasks.set_consensus import set_consensus_task

    cases = [
        ("wait-free", full_affine_task(3, 1)),
        ("ra-1of", r_affine(k_concurrency_alpha(3, 1))),
        ("ra-2of", r_affine(k_concurrency_alpha(3, 2))),
        ("ra-1res", r_affine(t_resilience_alpha(3, 1))),
        ("ra-fig5b", r_affine(agreement_function_of(figure5b_adversary()))),
    ]
    grid = [
        (f"{name}-k{k}", affine, set_consensus_task(3, k))
        for name, affine in cases
        for k in range(1, 4)
    ]

    engine = Engine(jobs=args.jobs)
    print(banner(f"certifying {len(grid)} FACT queries (jobs={engine.jobs})"))
    certs = engine.certify_many(
        [(affine, task, None) for _, affine, task in grid]
    )
    solved = engine.solve_many(
        [(affine, task, None) for _, affine, task in grid]
    )

    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    divergences = 0
    for (label, _, _), cert, (mapping, _nodes) in zip(grid, certs, solved):
        path = output_dir / f"{label}.json"
        write_cert(path, cert)
        # The independent checker, from the file's bytes alone.
        report = check_bytes(path.read_bytes())
        solve_verdict = "solvable" if mapping is not None else "unsolvable"
        agrees = report.valid and report.verdict == solve_verdict
        divergences += 0 if agrees else 1
        rows.append(
            (
                label,
                cert["kind"],
                "OK" if report.valid else f"INVALID:{report.reason}",
                "agree" if agrees else "DIVERGE",
            )
        )
    print(
        render_table(
            ["case", "certificate", "checker", "vs solve"], rows
        )
    )
    print(f"wrote {len(rows)} certificates to {output_dir}/")

    if divergences:
        print(
            f"FATAL: {divergences} cells diverged between the engine's "
            "solve verdict and the independent checker",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

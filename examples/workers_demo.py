"""End-to-end worker-pool demo — and the CI workers smoke test.

Drives the persistent :class:`repro.workers.WorkerPool` through its
whole lifecycle against real workloads:

* a typed batch of solve/chr jobs through two warm workers, with the
  values verified against in-process execution;
* affinity routing pinning repeat solver setups to one warm worker;
* crash recovery: a SIGKILLed worker is restarted and its in-flight
  job re-dispatched exactly once, with no other job disturbed;
* the shared-memory artifact read layer serving a second process's
  cache hit without touching the on-disk object;
* clean close — no worker process survives the pool.

Run from the repository root::

    PYTHONPATH=src python examples/workers_demo.py

Exits non-zero on any failure, so CI can use it as a smoke gate.
"""

from __future__ import annotations

import os
import signal
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.adversaries import k_concurrency_alpha  # noqa: E402
from repro.core import r_affine  # noqa: E402
from repro.engine import ArtifactCache, JobSpec, digest  # noqa: E402
from repro.solver import SolveRequest  # noqa: E402
from repro.tasks.set_consensus import set_consensus_task  # noqa: E402
from repro.workers import WorkerPool  # noqa: E402


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"[workers-demo] {status}: {label}")
    if not condition:
        raise SystemExit(1)


def main() -> int:
    affine = r_affine(k_concurrency_alpha(3, 1))
    task = set_consensus_task(3, 2)

    # ------------------------------------------------------------------
    # Typed batch through a warm pool, verified against in-process runs.
    specs = [
        JobSpec("solve", (SolveRequest(affine=affine, task=task),)),
        JobSpec("chr", (3, 1)),
        JobSpec("chr", (2, 2)),
    ]
    with WorkerPool(2) as pool:
        results = pool.run_batch(list(enumerate(specs)))
        check(
            all(result.ok for result in results)
            and [result.value for result in results]
            == [spec.run() for spec in specs],
            "pooled batch matches in-process execution",
        )

        # --------------------------------------------------------------
        # Affinity: repeat setups pin to the warm worker.
        for _ in range(3):
            pool.submit(
                JobSpec("solve", (SolveRequest(affine=affine, task=task),))
            )
            pool.drain()
        stats = pool.stats()
        check(
            stats["affinity_hits"] >= 3,
            f"repeat setups pinned warm (hits={stats['affinity_hits']})",
        )

        # --------------------------------------------------------------
        # Crash recovery: SIGKILL the worker mid-job; the pool restarts
        # it and re-dispatches the job exactly once.
        ticket = pool.submit(JobSpec("sleep", (0.5, "survivor")))
        victim = pool.pids()[ticket.worker]
        time.sleep(0.05)
        os.kill(victim, signal.SIGKILL)
        pool.drain()
        stats = pool.stats()
        check(
            ticket.result.ok
            and ticket.result.value == "survivor"
            and stats["worker_restarts"] == 1
            and stats["redispatched"] == 1,
            "SIGKILLed worker restarted, job re-dispatched exactly once",
        )
        pids = pool.pids()
    check(
        all(not _alive(pid) for pid in pids),
        "close() left no worker process behind",
    )

    # ------------------------------------------------------------------
    # Shared-memory read layer: a second attachment serves the artifact
    # out of the mmap segment after the disk object is gone.
    with tempfile.TemporaryDirectory() as cache_root:
        writer = ArtifactCache(cache_root, shared=True)
        key = digest("workers-demo-artifact")
        writer.put(key, ("served", "from", "shared", "memory"))
        writer._path(key).unlink()
        reader = ArtifactCache(cache_root, shared=True)
        check(
            reader.get(key) == ("served", "from", "shared", "memory")
            and reader.shared_hits == 1,
            "shared segment served a hit with the disk object gone",
        )

    print("workers-demo: all checks passed")
    return 0


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


if __name__ == "__main__":
    sys.exit(main())

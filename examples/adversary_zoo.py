#!/usr/bin/env python3
"""Adversary zoo: the Figure-2 classification, computed.

For every adversary in the catalogue, determine its region in the
paper's Figure 2 (superset-closed / symmetric / fair), its agreement
power, minimal hitting set, and the size of its affine task — a
machine-generated version of the classification diagram.

Run:  python examples/adversary_zoo.py
"""

from repro import agreement_function_of, build_catalogue, is_fair, r_affine, setcon
from repro.adversaries import csize, fairness_counterexample
from repro.analysis import banner, render_table


def main() -> None:
    print(banner("Figure 2 — adversary classes, computed (n = 3)"))
    rows = []
    for entry in build_catalogue(3):
        adversary = entry.adversary
        fair = is_fair(adversary)
        if fair and setcon(adversary) >= 1:
            alpha = agreement_function_of(adversary, name=entry.name)
            facets = len(r_affine(alpha).complex.facets)
        else:
            facets = "-"
        rows.append(
            [
                entry.name,
                len(adversary),
                "yes" if adversary.is_superset_closed() else "no",
                "yes" if adversary.is_symmetric() else "no",
                "yes" if fair else "NO",
                setcon(adversary),
                csize(adversary),
                facets,
            ]
        )
    print(
        render_table(
            [
                "adversary",
                "|live sets|",
                "superset-closed",
                "symmetric",
                "fair",
                "setcon",
                "csize",
                "R_A facets",
            ],
            rows,
        )
    )

    print("\nWhy the unfair example fails Definition 2:")
    from repro.adversaries import unfair_example

    violation = fairness_counterexample(unfair_example())
    print(f"  {violation}")
    print(
        "  (the coalition Q achieves strictly better agreement than the\n"
        "   whole participation allows — fairness forbids exactly this)"
    )


if __name__ == "__main__":
    main()

"""Tests for repro.sweep.driver and the sweep engine job kinds."""

import json

import pytest

from repro.adversaries.adversary import Adversary
from repro.engine.cache import ArtifactCache
from repro.engine.jobs import Engine, JobSpec
from repro.sweep.cells import cell_payload, compute_cell, compute_cell_resume
from repro.sweep.driver import (
    GRID_PRESETS,
    GridSpec,
    SweepDriver,
    load_grid,
    sample_adversaries,
)

WAIT_FREE = GridSpec(
    name="wait-free",
    n=2,
    source="explicit",
    live_sets=((((0,),), ((0,), (1,), (0, 1)))),
    ks=(1, 2),
    budget=5000,
)

SMOKE = GRID_PRESETS["n3-smoke"]


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
def test_sample_adversaries_is_deterministic():
    first = sample_adversaries(3, 7, 6)
    second = sample_adversaries(3, 7, 6)
    assert first == second
    assert len(first) == 6
    assert len(set(first)) == 6


def test_sample_adversaries_is_canonically_ordered():
    sample = sample_adversaries(3, 11, 8)
    keys = [
        (len(a.live_sets), sorted(sorted(live) for live in a.live_sets))
        for a in sample
    ]
    assert keys == sorted(keys)


def test_sample_adversaries_depends_on_seed():
    assert sample_adversaries(3, 1, 10) != sample_adversaries(3, 2, 10)


def test_sample_adversaries_rejects_bad_count():
    with pytest.raises(ValueError):
        sample_adversaries(2, 0, 0)
    with pytest.raises(ValueError):
        sample_adversaries(2, 0, 10**9)


def test_sample_adversaries_supports_n4():
    sample = sample_adversaries(4, 11, 24)
    assert len(sample) == 24
    assert all(a.n == 4 for a in sample)


# ----------------------------------------------------------------------
# Grid specs
# ----------------------------------------------------------------------
def test_grid_doc_round_trip_preserves_digest():
    for grid in (*GRID_PRESETS.values(), WAIT_FREE):
        clone = GridSpec.from_doc(grid.to_doc())
        assert clone == grid
        assert clone.digest() == grid.digest()


def test_grid_digest_distinguishes_fields():
    import dataclasses

    assert WAIT_FREE.digest() != dataclasses.replace(WAIT_FREE, budget=9999).digest()
    assert SMOKE.digest() != dataclasses.replace(SMOKE, seed=SMOKE.seed + 1).digest()


def test_grid_validation():
    with pytest.raises(ValueError):
        GridSpec(name="bad", n=3, source="nope", ks=(1,))
    with pytest.raises(ValueError):
        GridSpec(name="bad", n=4, source="exhaustive", ks=(1,))
    with pytest.raises(ValueError):
        GridSpec(name="bad", n=3, source="sample", ks=(1,), sample_count=0)
    with pytest.raises(ValueError):
        GridSpec(name="bad", n=3, source="explicit", ks=(1,))
    with pytest.raises(ValueError):
        GridSpec(name="bad", n=3, source="sample", sample_count=2, ks=(0,))


def test_cells_are_deterministically_ordered():
    cells = SMOKE.cells()
    assert [cell.index for cell in cells] == list(range(len(cells)))
    assert cells[0].k <= cells[1].k  # k-minor within one adversary
    again = SMOKE.cells()
    assert [(c.adversary, c.k) for c in cells] == [
        (c.adversary, c.k) for c in again
    ]


def test_load_grid_resolves_presets_and_files(tmp_path):
    assert load_grid("n3-smoke") == SMOKE
    path = tmp_path / "grid.json"
    path.write_text(json.dumps(WAIT_FREE.to_doc()))
    assert load_grid(str(path)) == WAIT_FREE
    with pytest.raises(ValueError):
        load_grid("no-such-grid")


# ----------------------------------------------------------------------
# Cells as engine jobs
# ----------------------------------------------------------------------
def test_compute_cell_unfair_short_circuits():
    unfair = Adversary(2, [[0]])  # not superset-closed around liveness
    record = compute_cell(cell_payload(unfair, 1, 1000, "bitset", "union", 1))
    assert record["solve"] is None or record["fair"]


def test_compute_cell_fair_records_solve():
    wait_free = Adversary(2, [[0], [1], [0, 1]])
    record = compute_cell(cell_payload(wait_free, 2, 5000, "bitset", "union", 1))
    assert record["fair"]
    assert record["ra"]["facets"] > 0
    assert record["solve"]["verdict"] in {"solvable", "unsolvable", "budget"}
    assert record["solve"]["nodes"] >= 0
    json.dumps(record)  # JSON-safe end to end


def test_compute_cell_budget_verdict_is_honest():
    wait_free = Adversary(3, [[0], [1], [2], [0, 1], [0, 2], [1, 2], [0, 1, 2]])
    record = compute_cell(cell_payload(wait_free, 1, 1, "bitset", "union", 0))
    assert record["solve"]["verdict"] == "budget"
    assert record["solve"]["budget"] == 1


def test_compute_cell_resume_escalates_budget():
    wait_free = Adversary(2, [[0], [1], [0, 1]])
    base = cell_payload(wait_free, 2, 1, "bitset", "union", 0)
    assert compute_cell(base)["solve"]["verdict"] == "budget"
    escalated = compute_cell_resume(base + (4,))
    assert escalated["solve"]["verdict"] == "solvable"
    assert escalated["solve"]["escalated_from"] == 1
    assert escalated["solve"]["escalation"] == 4
    with pytest.raises(ValueError):
        compute_cell_resume(base + (0,))


def test_sweep_job_kind_is_cacheable(tmp_path):
    engine = Engine(cache=ArtifactCache(tmp_path))
    payload = cell_payload(Adversary(2, [[0], [1], [0, 1]]), 2, 5000, "bitset", "union", 1)
    (cold,) = engine.run_jobs([JobSpec("sweep", payload)])
    (warm,) = engine.run_jobs([JobSpec("sweep", payload)])
    assert not cold.cache_hit and warm.cache_hit
    assert cold.value == warm.value


# ----------------------------------------------------------------------
# Driver: checkpointing, resume, limits, artifact
# ----------------------------------------------------------------------
def test_fresh_run_completes_and_checkpoints(tmp_path):
    driver = SweepDriver(WAIT_FREE, tmp_path / "ckpt")
    status = driver.run()
    assert status["complete"]
    assert status["computed"] == len(WAIT_FREE.cells())
    stubs = sorted((tmp_path / "ckpt" / "cells").glob("*.json"))
    assert len(stubs) == status["cells"]
    grid_doc = json.loads((tmp_path / "ckpt" / "grid.json").read_text())
    assert grid_doc["digest"] == WAIT_FREE.digest()


def test_limit_bounds_new_computation(tmp_path):
    driver = SweepDriver(SMOKE, tmp_path / "ckpt")
    partial = driver.run(limit=3)
    assert not partial["complete"]
    assert partial["computed"] == 3
    assert len(list((tmp_path / "ckpt" / "cells").glob("*.json"))) == 3


def test_resume_skips_checkpointed_cells(tmp_path):
    SweepDriver(SMOKE, tmp_path / "ckpt").run(limit=3)
    resumed = SweepDriver(SMOKE, tmp_path / "ckpt").run(resume=True)
    assert resumed["complete"]
    assert resumed["resumed"] == 3
    assert resumed["computed"] == len(SMOKE.cells()) - 3


def test_resumed_artifact_is_byte_identical(tmp_path):
    straight = SweepDriver(SMOKE, tmp_path / "a")
    straight.run()
    interrupted = SweepDriver(SMOKE, tmp_path / "b")
    interrupted.run(limit=2)
    SweepDriver(SMOKE, tmp_path / "b").run(resume=True)
    a = straight.write_artifact(tmp_path / "a.json")
    b = SweepDriver(SMOKE, tmp_path / "b").write_artifact(tmp_path / "b.json")
    assert a == b


def test_unresumed_rerun_on_populated_dir_is_refused(tmp_path):
    SweepDriver(SMOKE, tmp_path / "ckpt").run(limit=1)
    with pytest.raises(ValueError, match="resume"):
        SweepDriver(SMOKE, tmp_path / "ckpt").run()


def test_checkpoint_dir_is_bound_to_its_grid(tmp_path):
    SweepDriver(SMOKE, tmp_path / "ckpt").run(limit=1)
    with pytest.raises(ValueError, match="different grid"):
        SweepDriver(WAIT_FREE, tmp_path / "ckpt").run(resume=True)


def test_torn_stub_is_recomputed_not_fatal(tmp_path):
    SweepDriver(SMOKE, tmp_path / "ckpt").run(limit=2)
    stub = sorted((tmp_path / "ckpt" / "cells").glob("*.json"))[0]
    stub.write_text("{ torn")
    driver = SweepDriver(SMOKE, tmp_path / "ckpt")
    assert driver.checkpointed_cells() == 1
    status = driver.run(resume=True)
    assert status["complete"]


def test_artifact_requires_completion(tmp_path):
    driver = SweepDriver(SMOKE, tmp_path / "ckpt")
    driver.run(limit=1)
    with pytest.raises(ValueError, match="incomplete"):
        SweepDriver(SMOKE, tmp_path / "ckpt").assemble_artifact()


def test_artifact_shape_and_summary(tmp_path):
    driver = SweepDriver(WAIT_FREE, tmp_path / "ckpt")
    status = driver.run()
    artifact = status["artifact"]
    assert artifact["format"] == "repro.sweep/landscape"
    assert artifact["grid_digest"] == WAIT_FREE.digest()
    assert len(artifact["cells"]) == len(WAIT_FREE.cells())
    summary = artifact["summary"]
    assert summary["cells"] == len(WAIT_FREE.cells())
    assert summary["adversaries"] == 2
    assert sum(summary["verdicts"].values()) == summary["cells"]


def test_driver_restores_engine_progress_hook(tmp_path):
    seen = []

    def hook(result):
        seen.append(result)

    engine = Engine(progress=hook)
    SweepDriver(WAIT_FREE, tmp_path / "ckpt", engine=engine).run()
    assert engine.progress is hook
    assert not seen  # the driver's own hook was in place during the run


def test_driver_rides_the_artifact_cache(tmp_path):
    engine = Engine(cache=ArtifactCache(tmp_path / "cache"))
    SweepDriver(WAIT_FREE, tmp_path / "one", engine=engine).run()
    second = SweepDriver(WAIT_FREE, tmp_path / "two", engine=engine)
    status = second.run()
    assert status["complete"]
    # fresh checkpoint dir, but the cells came from the shared cache
    assert status["computed"] == len(WAIT_FREE.cells())


def test_escalate_reruns_budget_cells(tmp_path):
    tight = GridSpec(
        name="tight",
        n=2,
        source="explicit",
        live_sets=(((0,), (1,), (0, 1)),),
        ks=(2,),
        budget=1,
        split_retries=0,
    )
    driver = SweepDriver(tight, tmp_path / "ckpt")
    status = driver.run()
    assert status["artifact"]["summary"]["verdicts"]["budget"] == 1
    escalated = SweepDriver(tight, tmp_path / "ckpt").escalate(escalation=4)
    assert escalated == 1
    final = SweepDriver(tight, tmp_path / "ckpt").assemble_artifact()
    assert final["summary"]["verdicts"]["budget"] == 0
    assert final["cells"][0]["solve"]["escalated_from"] == 1

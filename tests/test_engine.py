"""The compute engine: cache, executor, split-retry, and equivalence.

The load-bearing guarantee is at the bottom: the Figure-2 zoo
classification and a FACT solvability query produce *equal* outputs
through the engine (``jobs=2``, warm cache) and through the legacy
sequential code path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.adversaries import (
    agreement_function_of,
    build_catalogue,
    is_fair,
    setcon,
)
from repro.analysis.landscape import (
    LandscapeEntry,
    alpha_signature,
    classify_all,
    summarize,
)
from repro.engine import (
    MISS,
    ArtifactCache,
    Engine,
    JobSpec,
    NullCache,
    digest,
)
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import (
    MapSearch,
    SearchBudgetExceeded,
    split_search_domains,
)
from repro.topology import chr_complex


@pytest.fixture
def task23():
    return set_consensus_task(3, 2)


# ----------------------------------------------------------------------
# Artifact cache
# ----------------------------------------------------------------------
def test_cache_round_trip_and_hit(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = digest(("test-key", 1))
    assert cache.get(key) is MISS
    cache.put(key, chr_complex(3, 1))
    value = cache.get(key)
    assert value == chr_complex(3, 1)
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1


def test_cache_survives_corrupt_entries(tmp_path):
    cache = ArtifactCache(tmp_path)
    key = digest("corruptible")
    cache.put(key, (1, 2, 3))
    cache._path(key).write_text("{not json", encoding="utf-8")
    assert cache.get(key) is MISS
    cache.put(key, (1, 2, 3))
    assert cache.get(key) == (1, 2, 3)


def test_engine_second_call_hits_cache(tmp_path, ra_1res, task23):
    first = Engine(cache=ArtifactCache(tmp_path))
    mapping, nodes = first.solve_many([(ra_1res, task23, None)])[0]
    assert first.stats() == {"hits": 0, "misses": 1, "deduped": 0}

    second = Engine(cache=ArtifactCache(tmp_path))
    mapping_again, nodes_again = second.solve_many([(ra_1res, task23, None)])[0]
    assert second.stats() == {"hits": 1, "misses": 0, "deduped": 0}
    assert mapping_again == mapping
    assert nodes_again == nodes


def test_null_cache_never_stores(ra_1of, task23):
    engine = Engine(cache=NullCache())
    engine.solve_many([(ra_1of, task23, None)])
    engine.solve_many([(ra_1of, task23, None)])
    assert engine.stats()["hits"] == 0
    assert len(engine.cache) == 0


# ----------------------------------------------------------------------
# Determinism and the sequential default path
# ----------------------------------------------------------------------
def test_map_search_node_count_is_reproducible(ra_1res, task23):
    counts = set()
    mappings = []
    for _ in range(3):
        search = MapSearch(ra_1res, task23)
        mappings.append(search.search())
        counts.add(search.nodes_explored)
    assert len(counts) == 1
    assert mappings[0] == mappings[1] == mappings[2]


def test_engine_sequential_matches_direct_search(ra_1res, task23):
    reference = MapSearch(ra_1res, task23)
    expected = reference.search()
    mapping, nodes = Engine(jobs=1).solve_many([(ra_1res, task23, None)])[0]
    assert mapping == expected
    assert nodes == reference.nodes_explored


def test_engine_pool_matches_sequential(ra_1of, ra_1res, task23):
    queries = [(ra_1of, task23, None), (ra_1res, task23, None)]
    sequential = Engine(jobs=1).solve_many(queries)
    pooled = Engine(jobs=2).solve_many(queries)
    assert pooled == sequential


# ----------------------------------------------------------------------
# Budget handling and split-retry
# ----------------------------------------------------------------------
def test_budget_exception_carries_state(ra_1res, task23):
    with pytest.raises(SearchBudgetExceeded) as info:
        MapSearch(ra_1res, task23).search(budget=20)
    assert info.value.nodes_explored == 21
    assert 0 < len(info.value.partial_assignment) <= 21


def test_split_domains_cover_the_space(ra_1res, task23):
    splits = split_search_domains(ra_1res, task23, parts=2)
    assert len(splits) == 2
    (vertex,) = set(splits[0]) & set(splits[1])
    full_domain = MapSearch(ra_1res, task23).domains[vertex]
    assert list(splits[0][vertex]) + list(splits[1][vertex]) == full_domain


def test_split_retry_recovers_the_exact_mapping(ra_1res, task23):
    reference = MapSearch(ra_1res, task23)
    expected = reference.search()
    # A budget below the full search's node count forces the retry.
    budget = reference.nodes_explored // 2
    engine = Engine(jobs=1, split_retries=6)
    mapping, nodes = engine.solve_many([(ra_1res, task23, budget)])[0]
    assert mapping == expected
    assert nodes > budget


def test_split_retry_decides_unsolvable_instances(ra_1res):
    consensus = set_consensus_task(3, 1)
    reference = MapSearch(ra_1res, consensus)
    assert reference.search() is None
    engine = Engine(jobs=1, split_retries=8)
    budget = reference.nodes_explored // 3
    mapping, _ = engine.solve_many([(ra_1res, consensus, budget)])[0]
    assert mapping is None


def test_exhausted_retries_surface_the_budget_error(ra_1res, task23):
    engine = Engine(jobs=1, split_retries=1)
    with pytest.raises(SearchBudgetExceeded) as info:
        engine.solve_many([(ra_1res, task23, 3)])
    assert info.value.nodes_explored > 3


# ----------------------------------------------------------------------
# Typed batches
# ----------------------------------------------------------------------
def test_chr_many_matches_direct_construction():
    (built,) = Engine().chr_many([(3, 1)])
    assert built == chr_complex(3, 1)


def test_minimal_set_consensus_table(ra_1of, ra_2of, ra_1res):
    engine = Engine(jobs=1)
    assert engine.minimal_set_consensus_many([ra_1of, ra_2of, ra_1res]) == [
        1,
        2,
        2,
    ]


def test_fuzz_many_is_worker_count_independent(alpha_1res, ra_1res):
    sequential = Engine(jobs=1).fuzz_many(alpha_1res, ra_1res, 4, seed=11)
    pooled = Engine(jobs=2).fuzz_many(alpha_1res, ra_1res, 4, seed=11)
    assert pooled == sequential
    assert all(in_task for in_task, _ in sequential)


def test_progress_callback_sees_every_job(ra_1of, ra_1res, task23):
    seen = []
    engine = Engine(jobs=1, progress=seen.append)
    engine.solve_many([(ra_1of, task23, None), (ra_1res, task23, None)])
    assert sorted(result.index for result in seen) == [0, 1]


def test_bad_job_surfaces_as_runtime_error():
    engine = Engine(jobs=1)
    (result,) = engine.run_jobs([JobSpec("chr", (3, "not-a-depth"))])
    assert not result.ok
    with pytest.raises(RuntimeError):
        engine._value(result)


# ----------------------------------------------------------------------
# Engine vs legacy equivalence (the acceptance test)
# ----------------------------------------------------------------------
def test_zoo_and_fact_equal_via_engine_and_legacy(tmp_path, ra_1res, task23):
    """Figure-2 classification + one FACT query: engine == legacy.

    The engine runs with ``jobs=2`` against a warm cache; the legacy
    path is plain in-process calls.  Both must produce equal outputs.
    """
    zoo = [entry.adversary for entry in build_catalogue(3)]

    legacy_entries = [
        LandscapeEntry(
            adversary=adversary,
            fair=is_fair(adversary),
            superset_closed=adversary.is_superset_closed(),
            symmetric=adversary.is_symmetric(),
            power=setcon(adversary),
            alpha_key=alpha_signature(agreement_function_of(adversary)),
        )
        for adversary in zoo
    ]
    legacy_mapping = MapSearch(ra_1res, task23).search()

    cache = ArtifactCache(tmp_path)
    Engine(jobs=2, cache=cache).classify_many(zoo)  # cold fill
    warm = Engine(jobs=2, cache=ArtifactCache(tmp_path))
    engine_entries = warm.classify_many(zoo)
    engine_mapping = warm.solve(ra_1res, task23)
    warm.solve(ra_1res, task23)

    assert engine_entries == legacy_entries
    assert engine_mapping == legacy_mapping
    stats = warm.stats()
    assert stats["hits"] >= len(zoo) + 1


def test_landscape_classify_all_engine_equals_legacy():
    legacy = classify_all(3)
    via_engine = classify_all(3, engine=Engine(jobs=1))
    assert via_engine == legacy
    assert summarize(via_engine, engine=Engine(jobs=1)) == summarize(legacy)


# ----------------------------------------------------------------------
# Failure paths surfaced by serving: timeouts, corruption, propagation
# ----------------------------------------------------------------------
def test_pool_per_job_timeout_surfaces_timeout_results():
    """Slow jobs on the pool path become ``error="timeout"`` results."""
    engine = Engine(jobs=2, timeout=0.2)
    results = engine.run_jobs(
        [JobSpec("sleep", (10.0, "a")), JobSpec("sleep", (10.0, "b"))]
    )
    assert [result.error for result in results] == ["timeout", "timeout"]
    assert [result.index for result in results] == [0, 1]
    with pytest.raises(RuntimeError, match="timeout"):
        engine._value(results[0])


def test_truncated_cache_entry_recomputes_and_repairs(tmp_path):
    spec = JobSpec("chr", (3, 1))
    cache = ArtifactCache(tmp_path)
    (first,) = Engine(cache=cache).run_jobs([spec])
    path = cache._path(digest(spec.cache_key()))
    text = path.read_text(encoding="utf-8")
    path.write_text(text[: len(text) // 2], encoding="utf-8")  # torn write

    (recovered,) = Engine(cache=ArtifactCache(tmp_path)).run_jobs([spec])
    assert recovered.ok and not recovered.cache_hit
    assert recovered.value == first.value
    # The recomputation repaired the stored artifact in place.
    (warm,) = Engine(cache=ArtifactCache(tmp_path)).run_jobs([spec])
    assert warm.cache_hit and warm.value == first.value


def test_empty_cache_entry_is_a_miss(tmp_path):
    spec = JobSpec("chr", (2, 1))
    cache = ArtifactCache(tmp_path)
    Engine(cache=cache).run_jobs([spec])
    cache._path(digest(spec.cache_key())).write_text("", encoding="utf-8")
    (result,) = Engine(cache=ArtifactCache(tmp_path)).run_jobs([spec])
    assert result.ok and not result.cache_hit


def test_error_results_propagate_in_order_and_are_not_cached(tmp_path):
    cache = ArtifactCache(tmp_path)
    engine = Engine(cache=cache)
    results = engine.run_jobs(
        [JobSpec("chr", (3, 1)), JobSpec("chr", (3, "not-a-depth"))]
    )
    assert results[0].ok and results[0].index == 0
    assert not results[1].ok and results[1].index == 1
    assert "Traceback" in results[1].error
    assert len(cache) == 1  # only the good artifact was stored


# ----------------------------------------------------------------------
# Batch-level dedup
# ----------------------------------------------------------------------
def test_run_jobs_computes_identical_specs_once(tmp_path):
    spec = JobSpec("chr", (3, 1))
    cache = ArtifactCache(tmp_path)
    seen = []
    engine = Engine(cache=cache, progress=seen.append)
    results = engine.run_jobs([spec, JobSpec("chr", (2, 1)), spec, spec])
    assert [result.index for result in results] == [0, 1, 2, 3]
    assert results[0].value == results[2].value == results[3].value
    assert [result.coalesced for result in results] == [
        False,
        False,
        True,
        True,
    ]
    assert engine.stats()["deduped"] == 2
    assert len(cache) == 2  # one artifact per distinct spec
    assert sorted(result.index for result in seen) == [0, 1, 2, 3]


def test_dedup_fans_out_error_results_too():
    bad = JobSpec("chr", (3, "not-a-depth"))
    results = Engine().run_jobs([bad, bad])
    assert not results[0].ok and not results[1].ok
    assert results[1].coalesced
    assert results[0].error == results[1].error


def test_dedup_matches_no_dedup_values(ra_1res, task23):
    queries = [(ra_1res, task23, None)] * 3
    deduped = Engine().solve_many(queries)
    assert deduped[0] == deduped[1] == deduped[2]
    assert deduped[0] == Engine().solve_many(queries[:1])[0]


# ----------------------------------------------------------------------
# Cache directory configuration
# ----------------------------------------------------------------------
def test_repro_cache_dir_env_var_controls_the_default(monkeypatch, tmp_path):
    from repro.engine import default_cache_dir

    target = tmp_path / "deploy-cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    assert default_cache_dir() == target
    cache = ArtifactCache()
    assert cache.root == target
    cache.put(digest("env-dir-artifact"), (1, 2))
    assert (target / "objects").is_dir()

    monkeypatch.delenv("REPRO_CACHE_DIR")
    assert default_cache_dir() == Path.home() / ".cache" / "repro-engine"

"""Unit tests for the k-set consensus task family."""

import pytest

from repro.tasks.set_consensus import (
    consensus_task,
    distinct_decisions,
    set_consensus_outputs,
    set_consensus_task,
)
from repro.tasks.task import OutputVertex


def test_bounds():
    with pytest.raises(ValueError):
        set_consensus_task(3, 0)
    with pytest.raises(ValueError):
        set_consensus_task(3, 4)


def test_consensus_is_one_set_consensus():
    assert consensus_task(3).name == "1-set-consensus"


def test_outputs_respect_k():
    outputs = set_consensus_outputs(frozenset({0, 1, 2}), 2)
    for sigma in outputs:
        assert distinct_decisions(sigma) <= 2


def test_outputs_values_are_participants():
    outputs = set_consensus_outputs(frozenset({0, 2}), 1)
    for sigma in outputs:
        for vertex in sigma:
            assert vertex.value in {0, 2}
            assert vertex.process in {0, 2}


def test_full_agreement_simplex_allowed():
    outputs = set_consensus_outputs(frozenset({0, 1, 2}), 1)
    unanimous = frozenset({OutputVertex(p, 0) for p in range(3)})
    assert unanimous in outputs


def test_disagreement_rejected_for_consensus():
    outputs = set_consensus_outputs(frozenset({0, 1, 2}), 1)
    split = frozenset(
        {OutputVertex(0, 0), OutputVertex(1, 1), OutputVertex(2, 0)}
    )
    assert split not in outputs


def test_n_set_consensus_allows_identity():
    outputs = set_consensus_outputs(frozenset({0, 1, 2}), 3)
    identity = frozenset({OutputVertex(p, p) for p in range(3)})
    assert identity in outputs


def test_outputs_downward_closed():
    outputs = set_consensus_outputs(frozenset({0, 1, 2}), 2)
    for sigma in outputs:
        if len(sigma) > 1:
            for vertex in sigma:
                assert (sigma - {vertex}) in outputs


def test_monotone_in_k():
    small = set_consensus_outputs(frozenset({0, 1, 2}), 1)
    large = set_consensus_outputs(frozenset({0, 1, 2}), 2)
    assert small <= large


def test_monotone_in_participation():
    small = set_consensus_outputs(frozenset({0, 1}), 2)
    large = set_consensus_outputs(frozenset({0, 1, 2}), 2)
    assert small <= large


def test_distinct_decisions_counts_values():
    sigma = {OutputVertex(0, "a"), OutputVertex(1, "a"), OutputVertex(2, "b")}
    assert distinct_decisions(sigma) == 2

"""Tests for ``repro.certify`` — certificates, the independent checker,
and the engine / service / CLI wiring.

The important invariants:

* every verdict the library can produce round-trips through a
  certificate the *independent* checker validates (fuzzed over random
  task mutations);
* forged certificates are rejected with the right machine-readable
  reason;
* the negative verdict agrees with the Sperner counting obstruction;
* budget stubs resume to the same map a fresh search finds;
* the checker is genuinely independent (stdlib-only, AST-enforced) yet
  stays in sync with the engine's digest scheme (test-enforced).
"""

from __future__ import annotations

import ast
import copy
import json
import random
from itertools import combinations
from pathlib import Path

import pytest

from repro.analysis.sperner import fuzz_sperner
from repro.certify import (
    CERT_FORMAT,
    CERT_VERSION,
    cert_to_bytes,
    certified_search,
    check,
    check_bytes,
    mapping_of,
    read_cert,
    resume_from_stub,
    unsolvable_cert,
    write_cert,
)
from repro.certify import checker as checker_module
from repro.cli import main
from repro.core import full_affine_task
from importlib import import_module

from repro.engine import ArtifactCache, Engine

# ``repro.engine.serialize`` the *module* — the package re-exports a
# function under the same name, shadowing the attribute.
serialize_module = import_module("repro.engine.serialize")
from repro.tasks.set_consensus import set_consensus_task
from repro.tasks.solvability import MapSearch, SearchBudgetExceeded
from repro.tasks.task import Task


@pytest.fixture(scope="session")
def wf_affine():
    """The wait-free one-round task ``Chr s`` (3 processes)."""
    return full_affine_task(3, 1)


@pytest.fixture(scope="session")
def solvable_pair(ra_1res):
    """A known-solvable instance and its certificate."""
    task = set_consensus_task(3, 2)
    mapping, cert = certified_search(ra_1res, task)
    assert mapping is not None and cert["kind"] == "solvable"
    return mapping, cert


@pytest.fixture(scope="session")
def unsolvable_cert_wf(wf_affine):
    """A known-unsolvable instance's certificate (wait-free 2-set)."""
    mapping, cert = certified_search(wf_affine, set_consensus_task(3, 2))
    assert mapping is None and cert["kind"] == "unsolvable"
    return cert


# ---------------------------------------------------------------- round-trip
def test_positive_roundtrip(solvable_pair):
    mapping, cert = solvable_pair
    report = check(cert)
    assert report.valid and report.verdict == "solvable"
    assert report.reason == "ok"
    assert report.vertices_checked == len(mapping)
    assert report.simplices_checked > 0
    assert mapping_of(cert) == mapping


def test_negative_roundtrip(unsolvable_cert_wf):
    report = check(unsolvable_cert_wf)
    assert report.valid and report.verdict == "unsolvable"
    # The replay visits exactly the traced node count — no more, no less.
    assert report.nodes_replayed == (
        unsolvable_cert_wf["trace"]["nodes_explored"]
    )


def _thinned_task(base: Task, seed: int) -> Task:
    """A random sub-task: ``Delta`` with some output simplices dropped."""
    rng = random.Random(seed)
    table = {}
    for size in range(1, base.n + 1):
        for combo in combinations(range(base.n), size):
            participants = frozenset(combo)
            outputs = sorted(
                base.allowed_outputs(participants),
                key=lambda sigma: sorted(
                    (v.process, repr(v.value)) for v in sigma
                ),
            )
            kept = [sigma for sigma in outputs if rng.random() < 0.8]
            table[participants] = frozenset(kept or outputs)
    return Task(
        base.n,
        base.input_complex,
        base.output_complex,
        lambda participants: table[frozenset(participants)],
        name=f"{base.name}-thinned-{seed}",
    )


def test_fuzz_random_tasks_roundtrip(wf_affine):
    """Seeded random sub-tasks: every verdict's certificate validates."""
    base = set_consensus_task(3, 3)
    verdicts = set()
    for seed in range(6):
        task = _thinned_task(base, seed)
        mapping, cert = certified_search(wf_affine, task)
        report = check(cert)
        assert report.valid, (seed, report.reason, report.detail)
        expected = "solvable" if mapping is not None else "unsolvable"
        assert report.verdict == expected, (seed, report.verdict)
        verdicts.add(expected)
    # The seeds are chosen to exercise both branches of the format.
    assert verdicts == {"solvable", "unsolvable"}


# ---------------------------------------------------------------- forgeries
def test_mutation_recolored_vertex_rejected(solvable_pair):
    _, cert = solvable_pair
    mutated = copy.deepcopy(cert)
    vertex_enc, out_enc = mutated["map"][0]
    mutated["map"][0] = [
        vertex_enc,
        ["outv", (out_enc[1] + 1) % 3, out_enc[2]],
    ]
    report = check(mutated)
    assert not report.valid and report.reason == "chromatic_violation"


def test_mutation_swapped_image_rejected(solvable_pair):
    _, cert = solvable_pair
    mutated = copy.deepcopy(cert)
    by_color: dict = {}
    for index, (_, out_enc) in enumerate(mutated["map"]):
        by_color.setdefault(out_enc[1], []).append(index)
    swap = next(
        (a, b)
        for indices in by_color.values()
        for a in indices
        for b in indices
        if mutated["map"][a][1] != mutated["map"][b][1]
    )
    a, b = swap
    (va, oa), (vb, ob) = mutated["map"][a], mutated["map"][b]
    mutated["map"][a], mutated["map"][b] = [va, ob], [vb, oa]
    report = check(mutated)
    # The per-simplex image entries no longer match the mutated map.
    assert not report.valid and report.reason == "image_mismatch"


def test_mutation_widened_carrier_rejected(solvable_pair):
    _, cert = solvable_pair
    mutated = copy.deepcopy(cert)
    entry = next(e for e in mutated["simplices"] if len(e["carrier"]) < 3)
    entry["carrier"] = [0, 1, 2]
    report = check(mutated)
    assert not report.valid and report.reason == "carrier_mismatch"


def test_mutation_tampered_statement_rejected(solvable_pair):
    _, cert = solvable_pair
    mutated = copy.deepcopy(cert)
    mutated["statement"]["delta"] = mutated["statement"]["delta"][:-1]
    report = check(mutated)
    assert not report.valid and report.reason == "statement_digest_mismatch"


def test_mutation_truncated_trace_rejected(unsolvable_cert_wf):
    mutated = copy.deepcopy(unsolvable_cert_wf)
    mutated["trace"]["nodes_explored"] += 1
    report = check(mutated)
    assert not report.valid and report.reason == "trace_mismatch"

    truncated = copy.deepcopy(unsolvable_cert_wf)
    truncated["domains"][0] = truncated["domains"][0][:-1]
    report = check(truncated)
    assert not report.valid and report.reason == "domain_mismatch"


def test_format_and_version_gates(solvable_pair):
    _, cert = solvable_pair
    other = dict(cert, version=99)
    assert check(other).reason == "unsupported_version"
    assert check(dict(cert, format="else")).reason == "bad_format"
    assert check(["not", "an", "object"]).reason == "bad_format"
    assert check(dict(cert, kind="mystery")).reason == "unknown_kind"
    assert not check_bytes(b"{ not json").valid


# ------------------------------------------------------- verdict consistency
def test_unsolvable_agrees_with_sperner(unsolvable_cert_wf, chr1):
    """The FACT refutation and the Sperner obstruction must agree.

    Wait-free 2-set consensus over ``Chr s`` is the instance where the
    counting argument applies: an admissible labeling with zero
    panchromatic facets would contradict the parity, and a carried map
    would be exactly such a labeling.  If this assertion ever fires the
    two independent proofs of the same fact diverged — that is a bug in
    one of them, not in this test.
    """
    report = check(unsolvable_cert_wf)
    sperner_holds = fuzz_sperner(chr1, trials=50, seed=3)
    assert report.valid and report.verdict == "unsolvable" and sperner_holds, (
        "DIVERGENCE between independent obstructions: certificate replay "
        f"says {report.verdict!r} (valid={report.valid}) but the Sperner "
        f"parity fuzz says {'holds' if sperner_holds else 'FAILS'}"
    )


# ---------------------------------------------------------------- resume
def test_budget_stub_resumes_to_same_map(ra_1res):
    task = set_consensus_task(3, 2)
    fresh = MapSearch(ra_1res, task)
    expected = fresh.search()
    assert expected is not None

    mapping, stub = certified_search(ra_1res, task, budget=20)
    assert mapping is None and stub["kind"] == "budget"
    report = check(stub)
    assert report.valid and report.verdict == "undecided"

    resumed, nodes = resume_from_stub(stub, ra_1res, task)
    assert resumed == expected
    # The resume skips the already-explored prefix.
    assert nodes < fresh.nodes_explored


def test_resume_rejects_foreign_stub(ra_1res):
    _, stub = certified_search(
        ra_1res, set_consensus_task(3, 2), budget=20
    )
    with pytest.raises(ValueError):
        resume_from_stub(stub, ra_1res, set_consensus_task(3, 1))


def test_unsolvable_cert_refuses_restricted_domains(wf_affine):
    task = set_consensus_task(3, 2)
    search = MapSearch(wf_affine, task)
    vertex = search.vertices[0]
    restricted = MapSearch(
        wf_affine, task, domain_overrides={vertex: frozenset()}
    )
    assert restricted.search() is None
    with pytest.raises(ValueError):
        unsolvable_cert(wf_affine, task, restricted)


# ---------------------------------------------------------------- determinism
def test_certificates_are_byte_deterministic(ra_1res, wf_affine):
    for affine, k in ((ra_1res, 2), (wf_affine, 2)):
        task = set_consensus_task(3, k)
        _, first = certified_search(affine, task)
        _, second = certified_search(affine, task)
        assert cert_to_bytes(first) == cert_to_bytes(second)


def test_cert_file_roundtrip(tmp_path, solvable_pair):
    _, cert = solvable_pair
    path = tmp_path / "cert.json"
    write_cert(path, cert)
    assert read_cert(path) == cert
    assert check_bytes(path.read_bytes()).valid


# ---------------------------------------------------------------- trusted base
def test_checker_is_stdlib_only():
    """The checker must not import the library it is checking."""
    source = Path(checker_module.__file__).read_text()
    allowed = {"__future__", "hashlib", "json", "dataclasses", "typing"}
    for node in ast.walk(ast.parse(source)):
        if isinstance(node, ast.Import):
            for alias in node.names:
                assert alias.name in allowed, alias.name
        elif isinstance(node, ast.ImportFrom):
            assert node.level == 0, "relative import in the trusted base"
            assert node.module in allowed, node.module


def test_checker_constants_match_engine():
    """The literal constants in the trusted base stay in sync."""
    from repro.certify import witness

    assert checker_module.DIGEST_SALT == serialize_module._DIGEST_SALT
    assert checker_module.CERT_FORMAT == witness.CERT_FORMAT == CERT_FORMAT
    assert witness.CERT_VERSION == CERT_VERSION
    assert CERT_VERSION in checker_module.SUPPORTED_VERSIONS


# ---------------------------------------------------------------- engine
def test_engine_certify_and_check_jobs(tmp_path, ra_1res):
    task = set_consensus_task(3, 2)
    engine = Engine(cache=ArtifactCache(tmp_path))
    cert = engine.certify(ra_1res, task)
    assert cert["kind"] == "solvable"
    report = engine.check_cert(cert)
    assert report["valid"] and report["verdict"] == "solvable"

    warm = Engine(cache=ArtifactCache(tmp_path))
    again = warm.certify(ra_1res, task)
    assert again == cert
    assert warm.stats()["hits"] >= 1


def test_engine_certify_budget_returns_stub(ra_1res):
    """Budget overruns are stub values, never split-retried errors."""
    engine = Engine(split_retries=3)
    stub = engine.certify(ra_1res, set_consensus_task(3, 2), 20)
    assert stub["kind"] == "budget"
    assert stub["trace"]["node_budget"] == 20


def test_engine_parallel_certify(ra_1res, wf_affine):
    certs = Engine(jobs=2).certify_many(
        [
            (ra_1res, set_consensus_task(3, 2), None),
            (wf_affine, set_consensus_task(3, 2), None),
        ]
    )
    assert [cert["kind"] for cert in certs] == ["solvable", "unsolvable"]


def test_engine_resume_solve(ra_1res):
    task = set_consensus_task(3, 2)
    engine = Engine()
    stub = engine.certify(ra_1res, task, 20)
    assert stub["kind"] == "budget"
    mapping, nodes = engine.resume_solve(ra_1res, task, stub)
    assert mapping == engine.solve(ra_1res, task)
    assert nodes > 0
    with pytest.raises(ValueError):
        engine.resume_solve(ra_1res, set_consensus_task(3, 1), stub)
    with pytest.raises(ValueError):
        engine.resume_solve(ra_1res, task, {"kind": "solvable"})


def test_engine_solve_budget_still_raises(wf_affine):
    """The solve path's split-retry semantics are unchanged."""
    engine = Engine(split_retries=0)
    with pytest.raises(SearchBudgetExceeded):
        engine.solve_many([(wf_affine, set_consensus_task(3, 2), 5)])


# ---------------------------------------------------------------- service
def test_service_certify_and_check(ra_1res):
    from repro.service import BackgroundServer, ServiceClient

    task = set_consensus_task(3, 2)
    with BackgroundServer(Engine()) as background:
        with ServiceClient(port=background.server.port) as client:
            cert = client.certify(ra_1res, task)
            assert cert["kind"] == "solvable"
            report = client.check(cert)
            assert report["valid"] and report["verdict"] == "solvable"
            stub = client.certify(ra_1res, task, 20)
            assert stub["kind"] == "budget"
    # The wire cert validates locally too — the format is portable.
    assert check(cert).valid


# ---------------------------------------------------------------- CLI
LIVE_SETS_1RES = "[[0,1],[0,2],[1,2],[0,1,2]]"


def test_cli_certify_check_roundtrip(tmp_path, capsys):
    path = tmp_path / "cert.json"
    assert (
        main(
            [
                "certify",
                LIVE_SETS_1RES,
                "--k",
                "2",
                "--output",
                str(path),
            ]
        )
        == 0
    )
    assert "kind=solvable" in capsys.readouterr().out
    assert main(["check", str(path)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "verdict=solvable" in out

    assert main(["check", str(path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["valid"] and report["path"] == str(path)

    # A tampered file must flip the exit code.
    cert = read_cert(path)
    cert["statement"]["delta"] = cert["statement"]["delta"][:-1]
    write_cert(path, cert)
    assert main(["check", str(path)]) == 1
    assert "statement_digest_mismatch" in capsys.readouterr().out


def test_cli_certify_budget_exit_code(tmp_path, capsys):
    path = tmp_path / "stub.json"
    code = main(
        [
            "certify",
            LIVE_SETS_1RES,
            "--k",
            "2",
            "--budget",
            "10",
            "--output",
            str(path),
        ]
    )
    assert code == 2
    assert read_cert(path)["kind"] == "budget"
    capsys.readouterr()


def test_cli_certify_stdout(capsys):
    assert main(["certify", "--wait-free", "--k", "3"]) == 0
    cert = json.loads(capsys.readouterr().out)
    assert cert["kind"] == "solvable"
    assert check(cert).valid
